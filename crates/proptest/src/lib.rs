//! Offline in-tree shim for the subset of `proptest` the fastmon test
//! suites use: value-producing [`Strategy`] objects, the [`proptest!`]
//! test macro and the `prop_assert*` macros.
//!
//! Compared to the real proptest there is no shrinking and no persisted
//! failure corpus: each property runs a fixed number of deterministic
//! cases (seeded from the test name), and a failing case panics with its
//! case number so it can be replayed by editing the seed. That trades
//! minimal counterexamples for a zero-dependency offline build.

use std::ops::Range;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Cases generated per property.
pub const NUM_CASES: u32 = 128;

/// The deterministic case generator handed to strategies.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded from the property name, so every property gets a
    /// stable but distinct stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(h),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The canonical strategy of an [`Arbitrary`] type: `any::<bool>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is uniform in `len` and
    /// whose elements come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each function binds its arguments from
/// strategies and runs [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "property {} failed at case {case}/{}",
                            stringify!($name),
                            $crate::NUM_CASES
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, bool)> {
        (0.0..10.0f64, any::<bool>())
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 1.0..2.0f64, n in 0..5u32) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!(n < 5);
        }

        #[test]
        fn mapped_strategy_applies(v in arb_pair().prop_map(|(f, b)| if b { f } else { -f })) {
            prop_assert!(v.abs() < 10.0);
        }

        #[test]
        fn vec_strategy_len_in_range(v in crate::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_rng_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
