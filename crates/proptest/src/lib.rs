//! Offline in-tree shim for the subset of `proptest` the fastmon test
//! suites use: value-producing [`Strategy`] objects, the [`proptest!`]
//! test macro and the `prop_assert*` macros.
//!
//! Compared to the real proptest there is no persisted failure corpus:
//! each property runs a fixed number of deterministic cases (seeded from
//! the test name). A failing case is greedily shrunk via
//! [`Strategy::shrink`] (bounded by [`MAX_SHRINK_EVALS`] re-executions)
//! and both the original and the minimized failing input are printed with
//! `Debug` before the original panic is re-raised. Strategies built with
//! [`Strategy::prop_map`] cannot shrink through the mapping (the closure
//! is not invertible), so their minimized input equals the original.

use std::ops::Range;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Cases generated per property.
pub const NUM_CASES: u32 = 128;

/// The deterministic case generator handed to strategies.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded from the property name, so every property gets a
    /// stable but distinct stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(h),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Cap on property re-executions spent minimizing one failing input.
pub const MAX_SHRINK_EVALS: usize = 256;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The default
    /// is no candidates (the value is already minimal or the strategy
    /// cannot shrink, e.g. through a `prop_map` closure).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Greedily minimizes a failing input: repeatedly replaces `value` with
/// the first [`Strategy::shrink`] candidate on which `fails` still
/// returns `true`, until no candidate fails or [`MAX_SHRINK_EVALS`]
/// re-executions are spent.
///
/// The process-global panic hook is silenced while candidates run, so the
/// (expected) panics of still-failing candidates do not spam the test
/// output; the hook is restored before returning.
pub fn minimize<S: Strategy>(
    strat: &S,
    mut value: S::Value,
    fails: impl Fn(&S::Value) -> bool,
) -> S::Value {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut evals = 0usize;
    'outer: while evals < MAX_SHRINK_EVALS {
        for cand in strat.shrink(&value) {
            evals += 1;
            if fails(&cand) {
                value = cand;
                continue 'outer;
            }
            if evals >= MAX_SHRINK_EVALS {
                break;
            }
        }
        break;
    }
    std::panic::set_hook(hook);
    value
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // toward the range start: the start itself, then halfway
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid > self.start && mid < *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // toward the range start: start, halfway, predecessor
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid > self.start && mid < *value {
                        out.push(mid);
                    }
                    if *value - 1 > mid {
                        out.push(*value - 1);
                    }
                }
                out
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // shrink one component at a time, keeping the rest fixed
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications, simplest first (default: none).
    fn simplify(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }

    fn simplify(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }

            fn simplify(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self > 0 {
                    out.push(0);
                    if *self / 2 > 0 {
                        out.push(*self / 2);
                    }
                    out.push(*self - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The canonical strategy of an [`Arbitrary`] type: `any::<bool>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.simplify()
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is uniform in `len` and
    /// whose elements come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // shorter first: halve toward the minimum length, then drop
            // the last element
            if value.len() > self.len.start {
                let half = self.len.start.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // then element-wise shrinks at each position
            for i in 0..value.len() {
                for cand in self.element.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each function binds its arguments from
/// strategies and runs [`NUM_CASES`] deterministic cases. A failing case
/// is minimized with [`minimize`] and both the original and the minimized
/// input are printed (`Debug`) before the panic is re-raised — argument
/// values must therefore be `Clone + Debug`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strat = ($($strat,)+);
                // pins the closure's parameter to the strategy's value type
                fn annotate<S: $crate::Strategy, F: Fn(&S::Value)>(_: &S, f: F) -> F {
                    f
                }
                let check = annotate(&strat, |vals| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(vals);
                    $body
                });
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    let vals = $crate::Strategy::generate(&strat, &mut rng);
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| check(&vals)),
                    );
                    if let Err(panic) = result {
                        let minimized = $crate::minimize(
                            &strat,
                            ::std::clone::Clone::clone(&vals),
                            |cand| {
                                ::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(|| check(cand)),
                                )
                                .is_err()
                            },
                        );
                        eprintln!(
                            "property {} failed at case {case}/{}\n  \
                             failing input: {:?}\n  \
                             minimized input: {:?}",
                            stringify!($name),
                            $crate::NUM_CASES,
                            vals,
                            minimized,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, bool)> {
        (0.0..10.0f64, any::<bool>())
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 1.0..2.0f64, n in 0..5u32) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!(n < 5);
        }

        #[test]
        fn mapped_strategy_applies(v in arb_pair().prop_map(|(f, b)| if b { f } else { -f })) {
            prop_assert!(v.abs() < 10.0);
        }

        #[test]
        fn vec_strategy_len_in_range(v in crate::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn minimize_descends_toward_the_failure_boundary() {
        // property "value < 100" fails for 700; the minimizer must walk
        // down close to the boundary without crossing it
        let strat = (0..1000u32,);
        let min = crate::minimize(&strat, (700,), |v| v.0 >= 100);
        assert!(min.0 >= 100, "minimized input must still fail");
        assert!(min.0 < 700, "minimized input must be simpler");
    }

    #[test]
    fn minimize_restores_the_panic_hook() {
        let strat = 0..10u32;
        let _ = crate::minimize(&strat, 5, |_| {
            std::panic::catch_unwind(|| panic!("candidate panics silently")).is_err()
        });
        // the default hook is back: a captured panic still unwinds normally
        assert!(std::panic::catch_unwind(|| panic!("after")).is_err());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0..10u32, 0.0..1.0f64);
        let cands = crate::Strategy::shrink(&strat, &(4, 0.5));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            let int_changed = *a != 4;
            let float_changed = (*b - 0.5).abs() > f64::EPSILON;
            assert!(int_changed ^ float_changed, "candidate ({a}, {b})");
        }
    }

    #[test]
    fn vec_shrink_offers_shorter_vectors_first() {
        let strat = crate::collection::vec(0..100u32, 1..8);
        let cands = crate::Strategy::shrink(&strat, &vec![9, 9, 9, 9]);
        assert!(cands[0].len() < 4, "first candidate should be shorter");
        assert!(cands.iter().all(|c| !c.is_empty()), "min length respected");
    }

    #[test]
    fn already_minimal_values_do_not_shrink() {
        assert!(crate::Strategy::shrink(&(3..10u32), &3).is_empty());
        assert!(crate::Strategy::shrink(&(0.0..1.0f64), &0.0).is_empty());
        assert!(crate::Strategy::shrink(&crate::any::<bool>(), &false).is_empty());
    }

    #[test]
    fn deterministic_rng_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
