use fastmon_netlist::{Circuit, NodeId};

use crate::{DelayAnnotation, Time};

/// Static timing analysis of the combinational core.
///
/// Computes, for every node:
///
/// * the earliest/latest possible output transition time (`min`/`max`
///   arrival), launching from sources and flip-flops at t = 0, and
/// * the shortest/longest remaining path from the node's output to any
///   observation point (primary output or flip-flop D pin).
///
/// Together these give the earliest/latest arrival of a transition *through*
/// a node at an observation point — the quantity that classifies small delay
/// faults: a fault of size δ at node g is **at-speed detectable** if
/// `max_arrival_through(g) + δ > t_nom` (it violates the nominal clock) and
/// **timing redundant** for FAST if even `max_arrival_through(g) + δ ≤
/// t_min` (the effect always dies before the earliest legal capture).
///
/// # Example
///
/// ```
/// use fastmon_netlist::library;
/// use fastmon_timing::{DelayAnnotation, DelayModel, Sta};
///
/// let circuit = library::c17();
/// let sta = Sta::analyze(
///     &circuit,
///     &DelayAnnotation::nominal(&circuit, &DelayModel::unit()),
/// );
/// // c17 is three levels of unit-delay NAND gates
/// assert_eq!(sta.critical_path_length(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sta {
    arrival_min: Vec<Time>,
    arrival_max: Vec<Time>,
    downstream_min: Vec<Time>,
    downstream_max: Vec<Time>,
    critical_path: Time,
}

impl Sta {
    /// Runs the analysis.
    #[must_use]
    pub fn analyze(circuit: &Circuit, annot: &DelayAnnotation) -> Self {
        Self::analyze_with_metrics(circuit, annot, None)
    }

    /// Runs the analysis, counting levelization work into a scoped
    /// registry section.
    #[must_use]
    pub fn analyze_with_metrics(
        circuit: &Circuit,
        annot: &DelayAnnotation,
        metrics: Option<&fastmon_obs::StaMetrics>,
    ) -> Self {
        let _span = fastmon_obs::span!("sta");
        if let Some(m) = metrics {
            m.analyses.incr();
            m.nodes_levelized.add(circuit.len() as u64);
        }
        let n = circuit.len();
        let mut arrival_min = vec![0.0; n];
        let mut arrival_max = vec![0.0; n];

        // Forward pass in topological order.
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            if !node.kind().is_combinational() {
                continue; // sources and flip-flops launch at t = 0
            }
            let idx = id.index();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &fi in node.fanins() {
                lo = lo.min(arrival_min[fi.index()]);
                hi = hi.max(arrival_max[fi.index()]);
            }
            arrival_min[idx] = lo + annot.min_delay(id);
            arrival_max[idx] = hi + annot.max_delay(id);
        }

        // Backward pass: remaining path length from a node's output to an
        // observation point. NEG_INFINITY/INFINITY mean "reaches none".
        let mut downstream_min = vec![f64::INFINITY; n];
        let mut downstream_max = vec![f64::NEG_INFINITY; n];
        for op in circuit.observe_points() {
            downstream_min[op.driver.index()] = 0.0;
            downstream_max[op.driver.index()] = 0.0;
        }
        for &id in circuit.topo_order().iter().rev() {
            let idx = id.index();
            for &fo in circuit.fanouts(id) {
                if !circuit.node(fo).kind().is_combinational() {
                    continue; // capture at the flip-flop itself, no extra delay
                }
                let fo_idx = fo.index();
                if downstream_max[fo_idx] > f64::NEG_INFINITY {
                    downstream_max[idx] =
                        downstream_max[idx].max(downstream_max[fo_idx] + annot.max_delay(fo));
                    downstream_min[idx] =
                        downstream_min[idx].min(downstream_min[fo_idx] + annot.min_delay(fo));
                }
            }
        }

        let critical_path = circuit
            .observe_points()
            .iter()
            .map(|op| arrival_max[op.driver.index()])
            .fold(0.0, f64::max);

        Sta {
            arrival_min,
            arrival_max,
            downstream_min,
            downstream_max,
            critical_path,
        }
    }

    /// Latest output transition arrival of node `id` (longest path from any
    /// source to the node's output).
    #[must_use]
    pub fn max_arrival(&self, id: NodeId) -> Time {
        self.arrival_max[id.index()]
    }

    /// Earliest output transition arrival of node `id`.
    #[must_use]
    pub fn min_arrival(&self, id: NodeId) -> Time {
        self.arrival_min[id.index()]
    }

    /// Returns `true` if the output of `id` reaches at least one
    /// observation point through combinational logic.
    #[must_use]
    pub fn is_observable(&self, id: NodeId) -> bool {
        self.downstream_max[id.index()] > f64::NEG_INFINITY
    }

    /// Longest path from any source *through* node `id` to any observation
    /// point, or `None` if the node reaches no observation point.
    #[must_use]
    pub fn max_arrival_through(&self, id: NodeId) -> Option<Time> {
        self.is_observable(id)
            .then(|| self.arrival_max[id.index()] + self.downstream_max[id.index()])
    }

    /// Shortest path from any source through node `id` to any observation
    /// point, or `None` if the node reaches no observation point.
    #[must_use]
    pub fn min_arrival_through(&self, id: NodeId) -> Option<Time> {
        self.is_observable(id)
            .then(|| self.arrival_min[id.index()] + self.downstream_min[id.index()])
    }

    /// The slack of node `id` against clock period `t_nom`:
    /// `t_nom − max_arrival_through(id)`. `None` if unobservable.
    #[must_use]
    pub fn slack(&self, id: NodeId, t_nom: Time) -> Option<Time> {
        self.max_arrival_through(id).map(|a| t_nom - a)
    }

    /// Length of the critical path (latest arrival over all observation
    /// points).
    #[must_use]
    pub fn critical_path_length(&self) -> Time {
        self.critical_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayModel;
    use fastmon_netlist::{library, CircuitBuilder, GateKind};

    fn chain() -> (Circuit, DelayAnnotation) {
        // a -> n1 -> n2 -> n3 (PO); side branch n1 -> po2
        let mut b = CircuitBuilder::new("chain");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Not, &["a"]);
        b.add("n2", GateKind::Not, &["n1"]);
        b.add("n3", GateKind::Not, &["n2"]);
        b.add("po2", GateKind::Buf, &["n1"]);
        b.mark_output("n3");
        b.mark_output("po2");
        let c = b.finish().unwrap();
        let a = DelayAnnotation::nominal(&c, &DelayModel::unit());
        (c, a)
    }

    #[test]
    fn arrivals_on_chain() {
        let (c, a) = chain();
        let sta = Sta::analyze(&c, &a);
        assert_eq!(sta.max_arrival(c.find("n1").unwrap()), 1.0);
        assert_eq!(sta.max_arrival(c.find("n3").unwrap()), 3.0);
        assert_eq!(sta.critical_path_length(), 3.0);
    }

    #[test]
    fn through_paths_take_both_branches() {
        let (c, a) = chain();
        let sta = Sta::analyze(&c, &a);
        let n1 = c.find("n1").unwrap();
        // longest through n1: a->n1->n2->n3 = 3; shortest: a->n1->po2 = 2
        assert_eq!(sta.max_arrival_through(n1), Some(3.0));
        assert_eq!(sta.min_arrival_through(n1), Some(2.0));
        assert_eq!(sta.slack(n1, 5.0), Some(2.0));
    }

    #[test]
    fn dff_is_capture_not_launchthrough() {
        let mut b = CircuitBuilder::new("ff");
        b.add("a", GateKind::Input, &[]);
        b.add("x", GateKind::Not, &["a"]);
        b.add("q", GateKind::Dff, &["x"]);
        b.add("y", GateKind::Not, &["q"]);
        b.mark_output("y");
        let c = b.finish().unwrap();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::unit());
        let sta = Sta::analyze(&c, &annot);
        // x arrives at 1 and is captured at the DFF D pin (a PPO);
        // q launches fresh at 0, y arrives at 1.
        assert_eq!(sta.max_arrival(c.find("x").unwrap()), 1.0);
        assert_eq!(sta.max_arrival(c.find("y").unwrap()), 1.0);
        assert_eq!(sta.critical_path_length(), 1.0);
        // x's downstream ends at the D pin: through-path = 1
        assert_eq!(sta.max_arrival_through(c.find("x").unwrap()), Some(1.0));
    }

    #[test]
    fn s27_sta_sane() {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let sta = Sta::analyze(&c, &annot);
        assert!(sta.critical_path_length() > 0.0);
        for id in c.combinational_nodes() {
            assert!(sta.is_observable(id), "{} unobservable", c.node(id).name());
            let lo = sta.min_arrival_through(id).unwrap();
            let hi = sta.max_arrival_through(id).unwrap();
            assert!(lo <= hi + 1e-12);
            assert!(hi <= sta.critical_path_length() + 1e-12);
        }
    }
}
