//! Timing substrate for the `fastmon` toolkit.
//!
//! Provides everything the FAST/HDF flow needs to know about *time*:
//!
//! * [`DelayModel`] — NanGate-45nm-like nominal pin-to-pin delays per gate
//!   kind, with fanout-load and arity terms,
//! * [`DelayAnnotation`] — per-instance rise/fall delays, optionally
//!   perturbed by Gaussian process variation (σ = 20 % of nominal by
//!   default, as assumed by the paper),
//! * [`sdf`] — a writer/reader for the SDF subset (`IOPATH` delays) used to
//!   exchange annotations,
//! * [`Sta`] — static timing analysis: arrival times, longest/shortest paths
//!   *through* a node to any observation point (the quantity that decides
//!   whether a small delay fault is at-speed detectable or timing
//!   redundant),
//! * [`ClockSpec`] — nominal/maximum FAST clock derived from the critical
//!   path (`t_nom = 1.05·cpl`, `t_min = t_nom / fmax_factor`).
//!
//! All times are in picoseconds ([`Time`]).
//!
//! # Example
//!
//! ```
//! use fastmon_netlist::library;
//! use fastmon_timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};
//!
//! let circuit = library::s27();
//! let model = DelayModel::nangate45_like();
//! let annot = DelayAnnotation::with_variation(&circuit, &model, 0.2, 42);
//! let sta = Sta::analyze(&circuit, &annot);
//! let clock = ClockSpec::from_sta(&sta, 3.0);
//! assert!(clock.t_nom > clock.t_min);
//! assert!((clock.t_nom / 1.05 - sta.critical_path_length()).abs() < 1e-9);
//! ```

// Robustness gate: library code must surface failures as typed errors
// (`TimingError`), never via `unwrap`/`expect` (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod annotate;
mod clock;
mod delay;
mod error;
mod sta;
mod variation;

pub mod sdf;

pub use annotate::DelayAnnotation;
pub use clock::ClockSpec;
pub use delay::DelayModel;
pub use error::TimingError;
pub use sta::Sta;
pub use variation::VariationSampler;

/// Time in picoseconds.
pub type Time = f64;
