use crate::{Sta, Time};

/// Nominal and fastest FAST clock periods of a design.
///
/// Following the paper's evaluation setup, the nominal clock period is the
/// critical path length plus a 5 % margin (`t_nom = 1.05 · cpl`) and the
/// fastest FAST capture time is `t_min = t_nom / fmax_factor` with
/// `fmax_factor = 3` (the usual `f_max ≤ 3 · f_nom` bound).
///
/// # Example
///
/// ```
/// use fastmon_timing::ClockSpec;
///
/// let clock = ClockSpec::new(300.0, 3.0);
/// assert_eq!(clock.t_nom, 300.0);
/// assert_eq!(clock.t_min, 100.0);
/// assert!(clock.contains(150.0));
/// assert!(!clock.contains(99.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSpec {
    /// Nominal clock period (ps).
    pub t_nom: Time,
    /// Earliest legal FAST capture time (ps), `t_nom / fmax_factor`.
    pub t_min: Time,
}

impl ClockSpec {
    /// Creates a spec from an explicit nominal period and an `f_max/f_nom`
    /// ratio.
    ///
    /// # Panics
    ///
    /// Panics if `t_nom` is not positive or `fmax_factor < 1`.
    #[must_use]
    pub fn new(t_nom: Time, fmax_factor: f64) -> Self {
        assert!(t_nom > 0.0, "nominal period must be positive");
        assert!(fmax_factor >= 1.0, "f_max must be at least f_nom");
        ClockSpec {
            t_nom,
            t_min: t_nom / fmax_factor,
        }
    }

    /// Derives the spec from static timing analysis:
    /// `t_nom = 1.05 · critical path length`.
    ///
    /// # Panics
    ///
    /// Panics if the critical path length is zero (empty circuit) or
    /// `fmax_factor < 1`.
    #[must_use]
    pub fn from_sta(sta: &Sta, fmax_factor: f64) -> Self {
        Self::new(1.05 * sta.critical_path_length(), fmax_factor)
    }

    /// Nominal frequency in 1/ps.
    #[must_use]
    pub fn f_nom(&self) -> f64 {
        1.0 / self.t_nom
    }

    /// Maximum FAST frequency in 1/ps.
    #[must_use]
    pub fn f_max(&self) -> f64 {
        1.0 / self.t_min
    }

    /// The `f_max / f_nom` ratio.
    #[must_use]
    pub fn fmax_factor(&self) -> f64 {
        self.t_nom / self.t_min
    }

    /// Whether observation time `t` lies in the legal FAST window
    /// `[t_min, t_nom]`.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        (self.t_min..=self.t_nom).contains(&t)
    }

    /// Returns a spec with the same `t_nom` but a different maximum
    /// frequency ratio (used by the Fig. 3 sweep over `f_max`).
    ///
    /// # Panics
    ///
    /// Panics if `fmax_factor < 1`.
    #[must_use]
    pub fn with_fmax_factor(&self, fmax_factor: f64) -> Self {
        Self::new(self.t_nom, fmax_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayAnnotation, DelayModel};
    use fastmon_netlist::library;

    #[test]
    fn from_sta_applies_margin() {
        let c = library::c17();
        let sta = Sta::analyze(&c, &DelayAnnotation::nominal(&c, &DelayModel::unit()));
        let clock = ClockSpec::from_sta(&sta, 3.0);
        assert!((clock.t_nom - 3.15).abs() < 1e-12);
        assert!((clock.t_min - 1.05).abs() < 1e-12);
        assert!((clock.fmax_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_invert_periods() {
        let clock = ClockSpec::new(200.0, 2.5);
        assert!((clock.f_nom() - 0.005).abs() < 1e-12);
        assert!((clock.f_max() - 1.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn with_fmax_factor_keeps_nominal() {
        let clock = ClockSpec::new(300.0, 3.0).with_fmax_factor(1.5);
        assert_eq!(clock.t_nom, 300.0);
        assert_eq!(clock.t_min, 200.0);
    }

    #[test]
    #[should_panic(expected = "at least f_nom")]
    fn sub_unity_factor_panics() {
        let _ = ClockSpec::new(100.0, 0.5);
    }
}
