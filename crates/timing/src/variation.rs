use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministic Gaussian process-variation sampler.
///
/// Each gate instance receives a multiplicative delay factor drawn from
/// `N(1, σ_rel)`, truncated to `[1 − 3σ_rel, 1 + 3σ_rel]` and floored at
/// 0.05 so delays stay positive. Sampling is *keyed* by instance index, so
/// the factor of a given instance is independent of how many other
/// instances were sampled — annotations are reproducible per node.
///
/// # Example
///
/// ```
/// use fastmon_timing::VariationSampler;
///
/// let sampler = VariationSampler::new(0.2, 7);
/// let a = sampler.factor(3);
/// assert_eq!(a, sampler.factor(3), "keyed sampling is stable");
/// assert!(a > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSampler {
    sigma_rel: f64,
    seed: u64,
}

impl VariationSampler {
    /// Creates a sampler with relative standard deviation `sigma_rel`
    /// (the paper assumes 0.2) and a master `seed`.
    #[must_use]
    pub fn new(sigma_rel: f64, seed: u64) -> Self {
        VariationSampler { sigma_rel, seed }
    }

    /// The relative standard deviation.
    #[must_use]
    pub fn sigma_rel(&self) -> f64 {
        self.sigma_rel
    }

    /// The multiplicative delay factor of instance `key`.
    #[must_use]
    pub fn factor(&self, key: usize) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key as u64)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9),
        );
        let z = standard_normal(&mut rng).clamp(-3.0, 3.0);
        (1.0 + self.sigma_rel * z).max(0.05)
    }
}

/// One draw from the standard normal distribution via Box–Muller.
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0)
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_and_deterministic() {
        let s = VariationSampler::new(0.2, 99);
        let v: Vec<f64> = (0..16).map(|k| s.factor(k)).collect();
        let w: Vec<f64> = (0..16).map(|k| s.factor(k)).collect();
        assert_eq!(v, w);
        // different seeds change the draw
        let t = VariationSampler::new(0.2, 100);
        assert_ne!(s.factor(0), t.factor(0));
    }

    #[test]
    fn zero_sigma_is_identity() {
        let s = VariationSampler::new(0.0, 1);
        for k in 0..32 {
            assert_eq!(s.factor(k), 1.0);
        }
    }

    #[test]
    fn sample_statistics_are_plausible() {
        let s = VariationSampler::new(0.2, 5);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|k| s.factor(k)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.2).abs() < 0.02, "std {}", var.sqrt());
        assert!(samples.iter().all(|&x| x > 0.0));
        assert!(
            samples
                .iter()
                .all(|&x| (0.4 - 1e-9..=1.6 + 1e-9).contains(&x)),
            "3σ truncation"
        );
    }
}
