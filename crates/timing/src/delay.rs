use fastmon_netlist::GateKind;

use crate::Time;

/// Nominal pin-to-pin delay model.
///
/// Delays are loosely calibrated to a 45 nm standard-cell library: an
/// inverter is ~12 ps, a 2-input NAND ~16 ps, XOR-class gates are slowest.
/// The effective delay of a gate instance additionally grows with its arity
/// (wider stacks) and its fanout count (output load):
///
/// ```text
/// delay = base(kind) · (1 + arity_factor·(arity − 2)⁺) + load_per_fanout · fanouts
/// ```
///
/// # Example
///
/// ```
/// use fastmon_netlist::GateKind;
/// use fastmon_timing::DelayModel;
///
/// let model = DelayModel::nangate45_like();
/// let (rise2, _) = model.nominal(GateKind::Nand, 2, 1);
/// let (rise3, _) = model.nominal(GateKind::Nand, 3, 1);
/// assert!(rise3 > rise2, "wider gates are slower");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    base_rise: [Time; 12],
    base_fall: [Time; 12],
    arity_factor: f64,
    load_per_fanout: Time,
}

impl DelayModel {
    /// A delay model loosely calibrated to the NanGate 45 nm open cell
    /// library (the library the paper synthesizes to).
    #[must_use]
    pub fn nangate45_like() -> Self {
        let mut base_rise = [0.0; 12];
        let mut base_fall = [0.0; 12];
        let mut set = |kind: GateKind, rise: Time, fall: Time| {
            base_rise[kind_index(kind)] = rise;
            base_fall[kind_index(kind)] = fall;
        };
        // Sources and flip-flops launch at t = 0 in the two-vector test
        // model, so they carry no propagation delay of their own.
        set(GateKind::Input, 0.0, 0.0);
        set(GateKind::Dff, 0.0, 0.0);
        set(GateKind::Const0, 0.0, 0.0);
        set(GateKind::Const1, 0.0, 0.0);
        set(GateKind::Buf, 22.0, 20.0);
        set(GateKind::Not, 12.0, 10.0);
        set(GateKind::And, 26.0, 24.0);
        set(GateKind::Nand, 16.0, 14.0);
        set(GateKind::Or, 30.0, 26.0);
        set(GateKind::Nor, 22.0, 18.0);
        set(GateKind::Xor, 42.0, 40.0);
        set(GateKind::Xnor, 44.0, 42.0);
        DelayModel {
            base_rise,
            base_fall,
            arity_factor: 0.18,
            load_per_fanout: 2.5,
        }
    }

    /// A unit delay model: every combinational gate has delay 1 ps,
    /// independent of arity and load. Useful for tests whose expected
    /// waveforms are computed by hand.
    #[must_use]
    pub fn unit() -> Self {
        let mut base_rise = [1.0; 12];
        let mut base_fall = [1.0; 12];
        for kind in [
            GateKind::Input,
            GateKind::Dff,
            GateKind::Const0,
            GateKind::Const1,
        ] {
            base_rise[kind_index(kind)] = 0.0;
            base_fall[kind_index(kind)] = 0.0;
        }
        DelayModel {
            base_rise,
            base_fall,
            arity_factor: 0.0,
            load_per_fanout: 0.0,
        }
    }

    /// Overrides the load added per fanout (ps).
    #[must_use]
    pub fn with_load_per_fanout(mut self, load: Time) -> Self {
        self.load_per_fanout = load;
        self
    }

    /// Overrides the relative slowdown per extra input beyond two.
    #[must_use]
    pub fn with_arity_factor(mut self, factor: f64) -> Self {
        self.arity_factor = factor;
        self
    }

    /// Nominal `(rise, fall)` delay of a gate of `kind` with `arity` inputs
    /// driving `fanouts` loads.
    #[must_use]
    pub fn nominal(&self, kind: GateKind, arity: usize, fanouts: usize) -> (Time, Time) {
        let i = kind_index(kind);
        if self.base_rise[i] == 0.0 && self.base_fall[i] == 0.0 {
            return (0.0, 0.0);
        }
        let widen = 1.0 + self.arity_factor * arity.saturating_sub(2) as f64;
        let load = self.load_per_fanout * fanouts as f64;
        (
            self.base_rise[i] * widen + load,
            self.base_fall[i] * widen + load,
        )
    }
}

fn kind_index(kind: GateKind) -> usize {
    GateKind::ALL
        .iter()
        .position(|&k| k == kind)
        .unwrap_or_else(|| unreachable!("GateKind::ALL enumerates every kind"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_have_zero_delay() {
        let m = DelayModel::nangate45_like();
        for kind in [
            GateKind::Input,
            GateKind::Dff,
            GateKind::Const0,
            GateKind::Const1,
        ] {
            assert_eq!(m.nominal(kind, 0, 5), (0.0, 0.0));
        }
    }

    #[test]
    fn load_increases_delay() {
        let m = DelayModel::nangate45_like();
        let (r1, f1) = m.nominal(GateKind::Nand, 2, 1);
        let (r4, f4) = m.nominal(GateKind::Nand, 2, 4);
        assert!(r4 > r1 && f4 > f1);
        assert!((r4 - r1 - 3.0 * 2.5).abs() < 1e-12);
    }

    #[test]
    fn xor_is_slowest_two_input() {
        let m = DelayModel::nangate45_like();
        let (xor, _) = m.nominal(GateKind::Xor, 2, 1);
        for kind in [
            GateKind::Nand,
            GateKind::Nor,
            GateKind::And,
            GateKind::Or,
            GateKind::Not,
        ] {
            assert!(xor > m.nominal(kind, 2, 1).0);
        }
    }

    #[test]
    fn unit_model_is_uniform() {
        let m = DelayModel::unit();
        assert_eq!(m.nominal(GateKind::Nand, 2, 3), (1.0, 1.0));
        assert_eq!(m.nominal(GateKind::Xor, 2, 1), (1.0, 1.0));
        assert_eq!(m.nominal(GateKind::Input, 0, 9), (0.0, 0.0));
    }
}
