use std::fmt;

use crate::sdf::SdfError;

/// Errors produced while building or validating timing annotations.
///
/// The FAST flow sizes faults as δ = 6σ and feeds every annotated delay
/// straight into waveform arithmetic, so garbage values (NaN, negative
/// delays, zero σ on a gate) silently corrupt every downstream result.
/// Validation turns them into typed errors at annotation time instead.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimingError {
    /// A delay value is NaN or infinite.
    NonFiniteDelay {
        /// Name of the annotated node (or its index when no circuit is
        /// available).
        node: String,
        /// Which edge carries the bad value (`"rise"` or `"fall"`).
        edge: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A delay value is negative.
    NegativeDelay {
        /// Name of the annotated node.
        node: String,
        /// Which edge carries the bad value (`"rise"` or `"fall"`).
        edge: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A process-variation σ is NaN, negative, or zero on a combinational
    /// gate (δ = 6σ would size every fault of the gate at zero).
    InvalidSigma {
        /// Name of the annotated node.
        node: String,
        /// The offending value.
        value: f64,
    },
    /// The annotation vectors disagree in length (with each other or with
    /// the circuit they describe).
    LengthMismatch {
        /// Which vector is mis-sized.
        field: &'static str,
        /// Supplied length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// The SDF text itself was malformed.
    Sdf(SdfError),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::NonFiniteDelay { node, edge, value } => {
                write!(f, "node `{node}` has a non-finite {edge} delay ({value})")
            }
            TimingError::NegativeDelay { node, edge, value } => {
                write!(f, "node `{node}` has a negative {edge} delay ({value})")
            }
            TimingError::InvalidSigma { node, value } => {
                write!(
                    f,
                    "node `{node}` has an invalid process-variation sigma ({value}); \
                     combinational gates need a finite, strictly positive sigma"
                )
            }
            TimingError::LengthMismatch {
                field,
                got,
                expected,
            } => {
                write!(
                    f,
                    "annotation {field} vector has length {got}, expected {expected}"
                )
            }
            TimingError::Sdf(e) => write!(f, "sdf: {e}"),
        }
    }
}

impl std::error::Error for TimingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimingError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for TimingError {
    fn from(e: SdfError) -> Self {
        TimingError::Sdf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_node() {
        let e = TimingError::NonFiniteDelay {
            node: "N22".into(),
            edge: "rise",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("N22"));
        let e = TimingError::InvalidSigma {
            node: "G3".into(),
            value: 0.0,
        };
        assert!(e.to_string().contains("sigma"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimingError>();
    }

    #[test]
    fn sdf_error_converts_and_chains() {
        use std::error::Error;
        let e = TimingError::from(SdfError::BadNumber { token: "x".into() });
        assert!(matches!(e, TimingError::Sdf(_)));
        assert!(e.source().is_some());
    }
}
