//! Writer and reader for a small SDF (Standard Delay Format) subset.
//!
//! The paper's flow consumes timing from SDF files produced by synthesis.
//! This module serializes a [`DelayAnnotation`] as SDF 3.0 `IOPATH` entries
//! and parses the same subset back, so annotated designs can be exchanged
//! with external tools or stored on disk.
//!
//! Supported subset:
//!
//! ```text
//! (DELAYFILE
//!   (SDFVERSION "3.0") (DESIGN "c17") (TIMESCALE 1ps)
//!   (CELL (CELLTYPE "NAND") (INSTANCE N10)
//!     (DELAY (ABSOLUTE (IOPATH A Z (16.2) (14.7))))))
//! ```
//!
//! The first parenthesized value of an `IOPATH` is the rise delay, the
//! second the fall delay. σ is re-derived as `sigma_rel` × mean when
//! parsing.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fastmon_timing::TimingError> {
//! use fastmon_netlist::library;
//! use fastmon_timing::{sdf, DelayAnnotation, DelayModel};
//!
//! let circuit = library::c17();
//! let annot = DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, 1);
//! let text = sdf::to_string(&circuit, &annot);
//! let parsed = sdf::parse(&text, &circuit, 0.2)?;
//! let n10 = circuit.find("N10").unwrap();
//! assert!((parsed.rise(n10) - annot.rise(n10)).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use fastmon_netlist::Circuit;

use crate::{DelayAnnotation, TimingError};

/// Errors produced while parsing SDF text.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdfError {
    /// General syntax problem.
    Syntax {
        /// Byte offset near the problem.
        near: usize,
        /// Description of the problem.
        message: String,
    },
    /// An `INSTANCE` names a node the circuit does not contain.
    UnknownInstance {
        /// The instance name from the SDF file.
        instance: String,
    },
    /// A delay value could not be parsed as a number.
    BadNumber {
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Syntax { near, message } => {
                write!(f, "sdf syntax error near byte {near}: {message}")
            }
            SdfError::UnknownInstance { instance } => {
                write!(f, "sdf instance `{instance}` not found in circuit")
            }
            SdfError::BadNumber { token } => write!(f, "invalid sdf delay value `{token}`"),
        }
    }
}

impl std::error::Error for SdfError {}

/// Serializes the annotation of `circuit` as SDF text.
///
/// Only nodes with a positive delay (combinational gates) are emitted;
/// sources and flip-flops launch at t = 0 in the two-vector test model.
#[must_use]
pub fn to_string(circuit: &Circuit, annot: &DelayAnnotation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", circuit.name());
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    for (id, node) in circuit.iter() {
        if !node.kind().is_combinational() {
            continue;
        }
        let _ = writeln!(
            out,
            "  (CELL (CELLTYPE \"{}\") (INSTANCE {})\n    (DELAY (ABSOLUTE (IOPATH A Z ({:.4}) ({:.4})))))",
            node.kind(),
            node.name(),
            annot.rise(id),
            annot.fall(id),
        );
    }
    let _ = writeln!(out, ")");
    out
}

/// Parses SDF text against `circuit`, returning a [`DelayAnnotation`].
///
/// Nodes not mentioned in the file keep zero delay. σ is reconstructed as
/// `sigma_rel · (rise + fall) / 2`.
///
/// # Errors
///
/// Returns a [`TimingError`]: [`TimingError::Sdf`] for malformed text,
/// unknown instances or unparsable delay values, and the delay-validation
/// variants when a parsed delay is NaN, infinite or negative (such values
/// would silently corrupt STA and fault sizing downstream).
pub fn parse(
    text: &str,
    circuit: &Circuit,
    sigma_rel: f64,
) -> Result<DelayAnnotation, TimingError> {
    let by_name: HashMap<&str, usize> = circuit
        .iter()
        .map(|(id, node)| (node.name(), id.index()))
        .collect();

    let n = circuit.len();
    let mut rise = vec![0.0; n];
    let mut fall = vec![0.0; n];

    let tokens = tokenize(text);
    let mut i = 0usize;
    let mut current_instance: Option<usize> = None;
    while i < tokens.len() {
        match tokens[i].1 {
            "INSTANCE" => {
                let (pos, name) = tokens.get(i + 1).copied().ok_or(SdfError::Syntax {
                    near: tokens[i].0,
                    message: "INSTANCE without a name".into(),
                })?;
                if name == ")" || name == "(" {
                    return Err(TimingError::Sdf(SdfError::Syntax {
                        near: pos,
                        message: "INSTANCE without a name".into(),
                    }));
                }
                let idx = *by_name.get(name).ok_or_else(|| SdfError::UnknownInstance {
                    instance: name.to_owned(),
                })?;
                current_instance = Some(idx);
                i += 2;
            }
            "IOPATH" => {
                let idx = current_instance.ok_or(SdfError::Syntax {
                    near: tokens[i].0,
                    message: "IOPATH outside of a CELL/INSTANCE".into(),
                })?;
                // IOPATH A Z ( rise ) ( fall )
                let mut values = Vec::with_capacity(2);
                let mut j = i + 1;
                while j < tokens.len() && values.len() < 2 {
                    let tok = tokens[j].1;
                    if tok == "(" {
                        let num = tokens.get(j + 1).map(|t| t.1).ok_or(SdfError::Syntax {
                            near: tokens[j].0,
                            message: "unterminated delay triple".into(),
                        })?;
                        let v: f64 = num.parse().map_err(|_| SdfError::BadNumber {
                            token: num.to_owned(),
                        })?;
                        values.push(v);
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                if values.len() != 2 {
                    return Err(TimingError::Sdf(SdfError::Syntax {
                        near: tokens[i].0,
                        message: "IOPATH needs rise and fall values".into(),
                    }));
                }
                for (edge, v) in [("rise", values[0]), ("fall", values[1])] {
                    if !v.is_finite() {
                        return Err(TimingError::NonFiniteDelay {
                            node: node_name(circuit, idx),
                            edge,
                            value: v,
                        });
                    }
                    if v < 0.0 {
                        return Err(TimingError::NegativeDelay {
                            node: node_name(circuit, idx),
                            edge,
                            value: v,
                        });
                    }
                }
                rise[idx] = values[0];
                fall[idx] = values[1];
                i = j;
            }
            _ => i += 1,
        }
    }

    let sigma: Vec<f64> = rise
        .iter()
        .zip(&fall)
        .map(|(r, f)| sigma_rel * 0.5 * (r + f))
        .collect();
    DelayAnnotation::try_from_raw(rise, fall, sigma)
}

/// Human-readable node name for error messages.
fn node_name(circuit: &Circuit, idx: usize) -> String {
    circuit
        .iter()
        .nth(idx)
        .map_or_else(|| format!("#{idx}"), |(_, n)| n.name().to_owned())
}

/// Splits SDF text into `(offset, token)` pairs; parentheses are their own
/// tokens, quotes are stripped.
fn tokenize(text: &str) -> Vec<(usize, &str)> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '(' || c == ')' {
            tokens.push((i, &text[i..=i]));
            i += 1;
        } else if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] as char != '"' {
                j += 1;
            }
            tokens.push((start, &text[start..j]));
            i = j + 1;
        } else {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_whitespace() || c == '(' || c == ')' {
                    break;
                }
                i += 1;
            }
            tokens.push((start, &text[start..i]));
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayModel;
    use fastmon_netlist::library;

    #[test]
    fn round_trip_preserves_delays() {
        let c = library::s27();
        let annot = DelayAnnotation::with_variation(&c, &DelayModel::nangate45_like(), 0.2, 9);
        let text = to_string(&c, &annot);
        let parsed = parse(&text, &c, 0.2).unwrap();
        for id in c.node_ids() {
            assert!((parsed.rise(id) - annot.rise(id)).abs() < 1e-3);
            assert!((parsed.fall(id) - annot.fall(id)).abs() < 1e-3);
        }
    }

    #[test]
    fn unknown_instance_rejected() {
        let c = library::c17();
        let text =
            "(DELAYFILE (CELL (INSTANCE ghost) (DELAY (ABSOLUTE (IOPATH A Z (1.0) (2.0))))))";
        assert!(matches!(
            parse(text, &c, 0.2),
            Err(TimingError::Sdf(SdfError::UnknownInstance { .. }))
        ));
    }

    #[test]
    fn bad_number_rejected() {
        let c = library::c17();
        let text = "(DELAYFILE (CELL (INSTANCE N10) (DELAY (ABSOLUTE (IOPATH A Z (oops) (2.0))))))";
        assert!(matches!(
            parse(text, &c, 0.2),
            Err(TimingError::Sdf(SdfError::BadNumber { .. }))
        ));
    }

    #[test]
    fn iopath_outside_cell_rejected() {
        let c = library::c17();
        let text = "(DELAYFILE (DELAY (ABSOLUTE (IOPATH A Z (1.0) (2.0)))))";
        assert!(matches!(
            parse(text, &c, 0.2),
            Err(TimingError::Sdf(SdfError::Syntax { .. }))
        ));
    }

    #[test]
    fn nan_and_negative_delays_rejected() {
        let c = library::c17();
        let nan = "(DELAYFILE (CELL (INSTANCE N10) (DELAY (ABSOLUTE (IOPATH A Z (NaN) (2.0))))))";
        assert!(matches!(
            parse(nan, &c, 0.2),
            Err(TimingError::NonFiniteDelay { edge: "rise", .. })
        ));
        let neg = "(DELAYFILE (CELL (INSTANCE N10) (DELAY (ABSOLUTE (IOPATH A Z (1.0) (-2.0))))))";
        assert!(matches!(
            parse(neg, &c, 0.2),
            Err(TimingError::NegativeDelay { edge: "fall", .. })
        ));
        let inf = "(DELAYFILE (CELL (INSTANCE N10) (DELAY (ABSOLUTE (IOPATH A Z (inf) (2.0))))))";
        assert!(matches!(
            parse(inf, &c, 0.2),
            Err(TimingError::NonFiniteDelay { .. })
        ));
    }

    #[test]
    fn unmentioned_nodes_have_zero_delay() {
        let c = library::c17();
        let text = "(DELAYFILE (CELL (INSTANCE N10) (DELAY (ABSOLUTE (IOPATH A Z (5.0) (6.0))))))";
        let parsed = parse(text, &c, 0.2).unwrap();
        assert_eq!(parsed.rise(c.find("N10").unwrap()), 5.0);
        assert_eq!(parsed.fall(c.find("N10").unwrap()), 6.0);
        assert_eq!(parsed.rise(c.find("N16").unwrap()), 0.0);
    }
}
