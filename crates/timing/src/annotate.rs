use fastmon_netlist::{Circuit, NodeId};

use crate::{DelayModel, Time, TimingError, VariationSampler};

/// Per-instance pin-to-pin delay annotation of a circuit.
///
/// For every node the annotation stores one rise and one fall delay (the
/// delay from any input pin to the output) plus the node's process-variation
/// standard deviation σ, which the fault model uses to size small delay
/// faults (δ = 6σ in the paper).
///
/// # Example
///
/// ```
/// use fastmon_netlist::library;
/// use fastmon_timing::{DelayAnnotation, DelayModel};
///
/// let circuit = library::c17();
/// let annot = DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, 1);
/// let gate = circuit.find("N10").unwrap();
/// assert!(annot.rise(gate) > 0.0);
/// assert!(annot.sigma(gate) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAnnotation {
    rise: Vec<Time>,
    fall: Vec<Time>,
    sigma: Vec<Time>,
}

impl DelayAnnotation {
    /// Annotates `circuit` with the nominal delays of `model` (no
    /// variation). σ is still recorded as `sigma_rel = 0.2` times the
    /// nominal mean delay so fault sizing works on nominal annotations too.
    #[must_use]
    pub fn nominal(circuit: &Circuit, model: &DelayModel) -> Self {
        Self::build(circuit, model, 0.2, None)
    }

    /// Annotates `circuit` with delays perturbed by Gaussian process
    /// variation of relative standard deviation `sigma_rel`, sampled
    /// deterministically from `seed`.
    #[must_use]
    pub fn with_variation(
        circuit: &Circuit,
        model: &DelayModel,
        sigma_rel: f64,
        seed: u64,
    ) -> Self {
        Self::build(
            circuit,
            model,
            sigma_rel,
            Some(VariationSampler::new(sigma_rel, seed)),
        )
    }

    fn build(
        circuit: &Circuit,
        model: &DelayModel,
        sigma_rel: f64,
        sampler: Option<VariationSampler>,
    ) -> Self {
        let n = circuit.len();
        let mut rise = Vec::with_capacity(n);
        let mut fall = Vec::with_capacity(n);
        let mut sigma = Vec::with_capacity(n);
        for (id, node) in circuit.iter() {
            let (r, f) = model.nominal(
                node.kind(),
                node.fanins().len(),
                circuit.fanouts(id).len().max(1),
            );
            let factor = sampler.map_or(1.0, |s| s.factor(id.index()));
            rise.push(r * factor);
            fall.push(f * factor);
            sigma.push(sigma_rel * 0.5 * (r + f));
        }
        DelayAnnotation { rise, fall, sigma }
    }

    /// Builds an annotation from explicit per-node `(rise, fall, sigma)`
    /// triples, e.g. parsed from an SDF file.
    ///
    /// # Panics
    ///
    /// Panics if the three vectors have different lengths or carry NaN or
    /// negative values. Use [`DelayAnnotation::try_from_raw`] to handle
    /// untrusted input without panicking.
    #[must_use]
    pub fn from_raw(rise: Vec<Time>, fall: Vec<Time>, sigma: Vec<Time>) -> Self {
        match Self::try_from_raw(rise, fall, sigma) {
            Ok(annot) => annot,
            Err(e) => panic!("invalid raw delay annotation: {e}"),
        }
    }

    /// Fallible variant of [`DelayAnnotation::from_raw`]: rejects length
    /// mismatches, NaN/infinite delays, negative delays and NaN/negative
    /// sigmas with a typed [`TimingError`] instead of propagating garbage
    /// into STA and fault sizing.
    ///
    /// Zero sigmas are accepted here because sources (inputs, flip-flops)
    /// legitimately carry none; use
    /// [`DelayAnnotation::validate_for`] to additionally require strictly
    /// positive sigma on combinational gates.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingError`] naming the first offending node index.
    pub fn try_from_raw(
        rise: Vec<Time>,
        fall: Vec<Time>,
        sigma: Vec<Time>,
    ) -> Result<Self, TimingError> {
        if fall.len() != rise.len() {
            return Err(TimingError::LengthMismatch {
                field: "fall",
                got: fall.len(),
                expected: rise.len(),
            });
        }
        if sigma.len() != rise.len() {
            return Err(TimingError::LengthMismatch {
                field: "sigma",
                got: sigma.len(),
                expected: rise.len(),
            });
        }
        for (i, (&r, &f)) in rise.iter().zip(&fall).enumerate() {
            for (edge, v) in [("rise", r), ("fall", f)] {
                if !v.is_finite() {
                    return Err(TimingError::NonFiniteDelay {
                        node: format!("#{i}"),
                        edge,
                        value: v,
                    });
                }
                if v < 0.0 {
                    return Err(TimingError::NegativeDelay {
                        node: format!("#{i}"),
                        edge,
                        value: v,
                    });
                }
            }
        }
        if let Some((i, &s)) = sigma
            .iter()
            .enumerate()
            .find(|(_, &s)| s.is_nan() || s < 0.0)
        {
            return Err(TimingError::InvalidSigma {
                node: format!("#{i}"),
                value: s,
            });
        }
        Ok(DelayAnnotation { rise, fall, sigma })
    }

    /// Validates this annotation against the circuit it describes: the
    /// lengths must match, every delay must be finite and non-negative, and
    /// every combinational gate must carry a finite, strictly positive
    /// sigma (δ = 6σ sizes the fault population — a zero sigma silently
    /// erases a gate's faults).
    ///
    /// Errors name the offending node by its circuit name.
    ///
    /// # Errors
    ///
    /// Returns the first [`TimingError`] found.
    pub fn validate_for(&self, circuit: &Circuit) -> Result<(), TimingError> {
        if self.len() != circuit.len() {
            return Err(TimingError::LengthMismatch {
                field: "annotation",
                got: self.len(),
                expected: circuit.len(),
            });
        }
        for (id, node) in circuit.iter() {
            let i = id.index();
            for (edge, v) in [("rise", self.rise[i]), ("fall", self.fall[i])] {
                if !v.is_finite() {
                    return Err(TimingError::NonFiniteDelay {
                        node: node.name().to_owned(),
                        edge,
                        value: v,
                    });
                }
                if v < 0.0 {
                    return Err(TimingError::NegativeDelay {
                        node: node.name().to_owned(),
                        edge,
                        value: v,
                    });
                }
            }
            let s = self.sigma[i];
            let sigma_ok = if node.kind().is_combinational() {
                s.is_finite() && s > 0.0
            } else {
                s.is_finite() && s >= 0.0
            };
            if !sigma_ok {
                return Err(TimingError::InvalidSigma {
                    node: node.name().to_owned(),
                    value: s,
                });
            }
        }
        Ok(())
    }

    /// Number of annotated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rise.len()
    }

    /// Returns `true` if no nodes are annotated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rise.is_empty()
    }

    /// Rise delay (output transition 0→1) of node `id` in ps.
    #[must_use]
    pub fn rise(&self, id: NodeId) -> Time {
        self.rise[id.index()]
    }

    /// Fall delay (output transition 1→0) of node `id` in ps.
    #[must_use]
    pub fn fall(&self, id: NodeId) -> Time {
        self.fall[id.index()]
    }

    /// Delay of node `id` for an output transition in the given direction.
    #[must_use]
    pub fn delay(&self, id: NodeId, rising_output: bool) -> Time {
        if rising_output {
            self.rise(id)
        } else {
            self.fall(id)
        }
    }

    /// The slower of the two delays of node `id` (used for longest-path
    /// analysis).
    #[must_use]
    pub fn max_delay(&self, id: NodeId) -> Time {
        self.rise(id).max(self.fall(id))
    }

    /// The faster of the two delays of node `id` (used for shortest-path
    /// analysis).
    #[must_use]
    pub fn min_delay(&self, id: NodeId) -> Time {
        self.rise(id).min(self.fall(id))
    }

    /// Process-variation standard deviation σ of node `id` in ps.
    ///
    /// The paper sizes hidden delay faults as δ = 6σ.
    #[must_use]
    pub fn sigma(&self, id: NodeId) -> Time {
        self.sigma[id.index()]
    }

    /// The smallest strictly positive delay in the annotation, commonly
    /// used as a pulse-filtering (glitch) threshold.
    #[must_use]
    pub fn min_positive_delay(&self) -> Time {
        self.rise
            .iter()
            .chain(self.fall.iter())
            .copied()
            .filter(|&d| d > 0.0)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;

    #[test]
    fn nominal_matches_model() {
        let c = library::c17();
        let m = DelayModel::nangate45_like();
        let a = DelayAnnotation::nominal(&c, &m);
        let n10 = c.find("N10").unwrap();
        let fanouts = c.fanouts(n10).len();
        let (r, f) = m.nominal(fastmon_netlist::GateKind::Nand, 2, fanouts);
        assert_eq!(a.rise(n10), r);
        assert_eq!(a.fall(n10), f);
        assert!((a.sigma(n10) - 0.1 * (r + f)).abs() < 1e-12);
    }

    #[test]
    fn variation_perturbs_but_keeps_sources_zero() {
        let c = library::s27();
        let m = DelayModel::nangate45_like();
        let nom = DelayAnnotation::nominal(&c, &m);
        let var = DelayAnnotation::with_variation(&c, &m, 0.2, 3);
        let mut changed = 0;
        for id in c.node_ids() {
            if c.node(id).kind().is_combinational() {
                if (nom.rise(id) - var.rise(id)).abs() > 1e-9 {
                    changed += 1;
                }
                assert!(var.rise(id) > 0.0);
            } else {
                assert_eq!(var.rise(id), 0.0);
                assert_eq!(var.fall(id), 0.0);
            }
        }
        assert!(changed >= 8, "variation changed only {changed} gates");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = library::s27();
        let m = DelayModel::nangate45_like();
        let a = DelayAnnotation::with_variation(&c, &m, 0.2, 11);
        let b = DelayAnnotation::with_variation(&c, &m, 0.2, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn min_positive_delay_skips_sources() {
        let c = library::s27();
        let a = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let d = a.min_positive_delay();
        assert!(d > 0.0 && d.is_finite());
    }

    #[test]
    fn try_from_raw_rejects_garbage() {
        use crate::TimingError;
        let ok = DelayAnnotation::try_from_raw(vec![1.0], vec![2.0], vec![0.1]);
        assert!(ok.is_ok());
        assert!(matches!(
            DelayAnnotation::try_from_raw(vec![1.0], vec![2.0, 3.0], vec![0.1]),
            Err(TimingError::LengthMismatch { field: "fall", .. })
        ));
        assert!(matches!(
            DelayAnnotation::try_from_raw(vec![f64::NAN], vec![2.0], vec![0.1]),
            Err(TimingError::NonFiniteDelay { edge: "rise", .. })
        ));
        assert!(matches!(
            DelayAnnotation::try_from_raw(vec![1.0], vec![-2.0], vec![0.1]),
            Err(TimingError::NegativeDelay { edge: "fall", .. })
        ));
        assert!(matches!(
            DelayAnnotation::try_from_raw(vec![1.0], vec![2.0], vec![f64::NAN]),
            Err(TimingError::InvalidSigma { .. })
        ));
        assert!(matches!(
            DelayAnnotation::try_from_raw(vec![1.0], vec![2.0], vec![-0.1]),
            Err(TimingError::InvalidSigma { .. })
        ));
    }

    #[test]
    fn validate_for_requires_positive_gate_sigma() {
        use crate::TimingError;
        let c = library::s27();
        let good = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        assert!(good.validate_for(&c).is_ok());

        // zero sigma on a combinational gate is rejected...
        let zeroed = DelayAnnotation::from_raw(
            (0..c.len())
                .map(|i| good.rise(NodeId::from_index(i)))
                .collect(),
            (0..c.len())
                .map(|i| good.fall(NodeId::from_index(i)))
                .collect(),
            vec![0.0; c.len()],
        );
        assert!(matches!(
            zeroed.validate_for(&c),
            Err(TimingError::InvalidSigma { .. })
        ));

        // ...and so is a length mismatch
        let short = DelayAnnotation::from_raw(vec![1.0], vec![1.0], vec![0.1]);
        assert!(matches!(
            short.validate_for(&c),
            Err(TimingError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid raw delay annotation")]
    fn from_raw_panics_on_nan() {
        let _ = DelayAnnotation::from_raw(vec![f64::NAN], vec![1.0], vec![0.1]);
    }

    #[test]
    fn min_max_delay_consistent() {
        let c = library::s27();
        let a = DelayAnnotation::with_variation(&c, &DelayModel::nangate45_like(), 0.2, 5);
        for id in c.node_ids() {
            assert!(a.min_delay(id) <= a.max_delay(id));
            assert_eq!(a.delay(id, true), a.rise(id));
            assert_eq!(a.delay(id, false), a.fall(id));
        }
    }
}
