//! Byte-equality regression net for the cached/parallel grading engine.
//!
//! The fingerprints below were recorded from the pre-cache implementation
//! (per-call `fanout_cone` + from-scratch matrix rebuilds) at fixed seeds.
//! The cached-cone, fault-parallel engine must reproduce every pattern bit,
//! in order — any drift in the test set, fault tallies or compaction
//! choices changes the FNV fingerprint and fails here.

use fastmon_atpg::{generate, AtpgConfig, AtpgResult};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::library;
use fastmon_netlist::Circuit;

/// FNV-1a over the full result: pattern count, every launch/capture bit in
/// order, then the fault tallies.
fn fingerprint(result: &AtpgResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        for i in 0..8 {
            h ^= (b >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(result.test_set.len() as u64);
    for p in 0..result.test_set.len() {
        let pat = result.test_set.pattern(p);
        for &b in pat.launch.iter().chain(pat.capture.iter()) {
            eat(u64::from(b));
        }
    }
    eat(result.detected as u64);
    eat(result.untestable as u64);
    eat(result.aborted as u64);
    eat(result.total_faults as u64);
    h
}

fn syn400() -> Circuit {
    GeneratorConfig::new("syn")
        .gates(400)
        .flip_flops(24)
        .inputs(12)
        .outputs(6)
        .depth(12)
        .generate(3)
        .expect("valid generator config")
}

fn configs() -> Vec<(&'static str, AtpgConfig)> {
    vec![
        ("default", AtpgConfig::default()),
        (
            "seed9",
            AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        ),
        (
            "nocompact",
            AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        ),
        (
            "cap5",
            AtpgConfig {
                max_patterns: Some(5),
                ..AtpgConfig::default()
            },
        ),
    ]
}

#[test]
fn enhanced_scan_matches_seed_fingerprints() {
    let golden = [
        ("s27", "default", 0xff45_eb3b_ba03_1f0cu64),
        ("s27", "seed9", 0x217f_632f_6309_b3ae),
        ("s27", "nocompact", 0x2cf0_47e8_5e2d_e7cb),
        ("s27", "cap5", 0x0a28_3a2b_1cd6_2ee1),
        ("syn400", "default", 0xd174_1757_f8fd_886e),
        ("syn400", "seed9", 0x8b4d_0c58_db18_8829),
        ("syn400", "nocompact", 0x65e7_548b_4573_a51d),
        ("syn400", "cap5", 0x79c0_3720_6310_f6bd),
    ];
    let s27 = library::s27();
    let syn = syn400();
    for (circuit_name, tag, expected) in golden {
        let circuit = if circuit_name == "s27" { &s27 } else { &syn };
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = generate(circuit, &cfg);
        assert_eq!(
            fingerprint(&r),
            expected,
            "{circuit_name}/{tag}: output drifted from the seed implementation"
        );
    }
}

#[test]
fn broadside_matches_seed_fingerprints() {
    let golden = [
        ("s27", "default", 0x242a_0a60_dc29_7156u64),
        ("s27", "seed9", 0x9328_7dad_697b_5dd6),
        ("s27", "nocompact", 0x8987_51fb_a96c_285d),
        ("s27", "cap5", 0x242a_0a60_dc29_7156),
        ("syn400", "default", 0x4362_ee1c_f727_a510),
        ("syn400", "seed9", 0xe542_2764_fa24_1078),
        ("syn400", "nocompact", 0xda13_c580_95e9_8693),
        ("syn400", "cap5", 0x99d4_f979_672e_649e),
    ];
    let s27 = library::s27();
    let syn = syn400();
    for (circuit_name, tag, expected) in golden {
        let circuit = if circuit_name == "s27" { &s27 } else { &syn };
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = fastmon_atpg::broadside::generate_broadside(circuit, &cfg);
        assert_eq!(
            fingerprint(&r),
            expected,
            "{circuit_name}/{tag}/broadside: output drifted from the seed implementation"
        );
    }
}

#[test]
fn thread_count_never_changes_the_fingerprint() {
    let syn = syn400();
    let reference = generate(
        &syn,
        &AtpgConfig {
            threads: 1,
            ..AtpgConfig::default()
        },
    );
    let expected = fingerprint(&reference);
    for threads in [2usize, 8] {
        let r = generate(
            &syn,
            &AtpgConfig {
                threads,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(fingerprint(&r), expected, "threads={threads}");
    }
}
