//! Byte-equality regression net for the deterministic ATPG pipeline.
//!
//! The s27 fingerprints still match the original pre-cache implementation
//! (per-call `fanout_cone` + from-scratch matrix rebuilds): neither the
//! cached-cone grading engine nor the testability-guided PODEM changed a
//! single decision on the small benchmark. The syn400 fingerprints were
//! re-recorded when SCOAP guidance, static learning and the dynamic
//! X-path D-frontier filter were added to PODEM — those intentionally
//! change the *order* decisions are tried in, so the emitted cubes (and
//! hence the fingerprints) differ from the unguided engine. The re-record
//! is justified in-test: [`guidance_never_loses_coverage`] pins the
//! unguided baseline tallies and asserts the guided engine detects at
//! least as many faults and proves at least as many untestable on every
//! full (uncapped) configuration. Any further drift in the test set,
//! fault tallies or compaction choices changes the FNV fingerprint and
//! fails here.

use fastmon_atpg::{generate, AtpgConfig, AtpgResult};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::library;
use fastmon_netlist::Circuit;

/// FNV-1a over the full result: pattern count, every launch/capture bit in
/// order, then the fault tallies.
fn fingerprint(result: &AtpgResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        for i in 0..8 {
            h ^= (b >> (8 * i)) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(result.test_set.len() as u64);
    for p in 0..result.test_set.len() {
        let pat = result.test_set.pattern(p);
        for &b in pat.launch.iter().chain(pat.capture.iter()) {
            eat(u64::from(b));
        }
    }
    eat(result.detected as u64);
    eat(result.untestable as u64);
    eat(result.aborted as u64);
    eat(result.total_faults as u64);
    h
}

fn syn400() -> Circuit {
    GeneratorConfig::new("syn")
        .gates(400)
        .flip_flops(24)
        .inputs(12)
        .outputs(6)
        .depth(12)
        .generate(3)
        .expect("valid generator config")
}

fn configs() -> Vec<(&'static str, AtpgConfig)> {
    vec![
        ("default", AtpgConfig::default()),
        (
            "seed9",
            AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        ),
        (
            "nocompact",
            AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        ),
        (
            "cap5",
            AtpgConfig {
                max_patterns: Some(5),
                ..AtpgConfig::default()
            },
        ),
    ]
}

#[test]
fn enhanced_scan_matches_seed_fingerprints() {
    let golden = [
        ("s27", "default", 0xff45_eb3b_ba03_1f0cu64),
        ("s27", "seed9", 0x217f_632f_6309_b3ae),
        ("s27", "nocompact", 0x2cf0_47e8_5e2d_e7cb),
        ("s27", "cap5", 0x0a28_3a2b_1cd6_2ee1),
        ("syn400", "default", 0x34ac_d2fb_489e_77f9),
        ("syn400", "seed9", 0xb2f2_2fb4_a49c_f32f),
        ("syn400", "nocompact", 0xf936_cb30_bdf4_82ae),
        ("syn400", "cap5", 0xd25b_607f_f296_8e6a),
    ];
    let s27 = library::s27();
    let syn = syn400();
    for (circuit_name, tag, expected) in golden {
        let circuit = if circuit_name == "s27" { &s27 } else { &syn };
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = generate(circuit, &cfg);
        assert_eq!(
            fingerprint(&r),
            expected,
            "{circuit_name}/{tag}: output drifted from the seed implementation"
        );
    }
}

#[test]
fn broadside_matches_seed_fingerprints() {
    let golden = [
        ("s27", "default", 0x242a_0a60_dc29_7156u64),
        ("s27", "seed9", 0x9328_7dad_697b_5dd6),
        ("s27", "nocompact", 0x8987_51fb_a96c_285d),
        ("s27", "cap5", 0x242a_0a60_dc29_7156),
        ("syn400", "default", 0x0293_0072_39c1_b504),
        ("syn400", "seed9", 0xa081_7d06_a9c1_7322),
        ("syn400", "nocompact", 0x7eea_e023_33ca_f769),
        ("syn400", "cap5", 0x8741_10c4_dc6e_752a),
    ];
    let s27 = library::s27();
    let syn = syn400();
    for (circuit_name, tag, expected) in golden {
        let circuit = if circuit_name == "s27" { &s27 } else { &syn };
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = fastmon_atpg::broadside::generate_broadside(circuit, &cfg);
        assert_eq!(
            fingerprint(&r),
            expected,
            "{circuit_name}/{tag}/broadside: output drifted from the seed implementation"
        );
    }
}

/// The justification for re-recording the syn400 goldens above: the
/// testability-guided PODEM must never *lose* coverage relative to the
/// unguided engine whose fingerprints it replaced. The baseline tallies
/// below were measured on the unguided implementation (this commit's
/// parent) at the same seeds.
///
/// Only the full (uncapped) configurations are asserted. Under `cap5`'s
/// hard 5-pattern budget the guided cubes carry more care bits (necessity
/// pre-assignments), which leaves less random fill per pattern and hence
/// less fortuitous coverage per pattern — raw `detected` under a tiny
/// budget measures fill luck, not ATPG quality. Total fault efficiency
/// (`detected + untestable`) still did not regress there: enhanced-scan
/// 427 vs 415, broadside 357 vs 357.
#[test]
fn guidance_never_loses_coverage() {
    // (tag, unguided detected, unguided untestable)
    let es_baseline = [
        ("default", 586, 84),
        ("seed9", 588, 84),
        ("nocompact", 586, 84),
    ];
    let bs_baseline = [
        ("default", 446, 82),
        ("seed9", 441, 82),
        ("nocompact", 446, 82),
    ];
    let syn = syn400();
    for (tag, base_detected, base_untestable) in es_baseline {
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = generate(&syn, &cfg);
        assert!(
            r.detected >= base_detected,
            "ES syn400/{tag}: guided engine detected {} < unguided baseline {base_detected}",
            r.detected
        );
        assert!(
            r.detected + r.untestable >= base_detected + base_untestable,
            "ES syn400/{tag}: guided fault efficiency {} < unguided baseline {}",
            r.detected + r.untestable,
            base_detected + base_untestable
        );
    }
    for (tag, base_detected, base_untestable) in bs_baseline {
        let cfg = configs()
            .into_iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, c)| c)
            .expect("known tag");
        let r = fastmon_atpg::broadside::generate_broadside(&syn, &cfg);
        assert!(
            r.detected >= base_detected,
            "BS syn400/{tag}: guided engine detected {} < unguided baseline {base_detected}",
            r.detected
        );
        assert!(
            r.detected + r.untestable >= base_detected + base_untestable,
            "BS syn400/{tag}: guided fault efficiency {} < unguided baseline {}",
            r.detected + r.untestable,
            base_detected + base_untestable
        );
    }
}

#[test]
fn thread_count_never_changes_the_fingerprint() {
    let syn = syn400();
    let reference = generate(
        &syn,
        &AtpgConfig {
            threads: 1,
            ..AtpgConfig::default()
        },
    );
    let expected = fingerprint(&reference);
    for threads in [2usize, 8] {
        let r = generate(
            &syn,
            &AtpgConfig {
                threads,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(fingerprint(&r), expected, "threads={threads}");
    }
}
