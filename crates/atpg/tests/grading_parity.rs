//! Property-style parity tests of the cached-cone grading engine over
//! random synthetic circuits: fault-parallel matrix builds must be
//! bit-identical at every thread count, and pattern-subset selection must
//! equal a from-scratch rebuild for arbitrary subsets.

use fastmon_atpg::{
    transition_faults, AtpgConfig, DetectionMatrix, FaultCones, GradeScratch, TestPattern, TestSet,
    WordSim,
};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::Circuit;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_circuit(seed: u64) -> Circuit {
    GeneratorConfig::new("parity")
        .gates(120 + (seed as usize % 5) * 40)
        .flip_flops(8 + (seed as usize % 3) * 4)
        .inputs(8)
        .outputs(4)
        .depth(6 + (seed % 4) as u32)
        .generate(seed)
        .expect("valid generator config")
}

fn random_set(circuit: &Circuit, n: usize, seed: u64) -> TestSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut set = TestSet::new(circuit);
    let w = set.sources().len();
    for _ in 0..n {
        set.push(TestPattern::new(
            (0..w).map(|_| rng.gen()).collect(),
            (0..w).map(|_| rng.gen()).collect(),
        ));
    }
    set
}

#[test]
fn parallel_matrix_build_bit_identical_at_1_2_8_threads() {
    for seed in 1..=4u64 {
        let circuit = random_circuit(seed);
        let faults = transition_faults(&circuit);
        let set = random_set(&circuit, 100 + seed as usize * 17, seed);
        let cones = FaultCones::build(&circuit, &faults);
        let t1 = DetectionMatrix::build_with(&circuit, &set, &faults, &cones, 1, None);
        for threads in [2usize, 8] {
            let tn = DetectionMatrix::build_with(&circuit, &set, &faults, &cones, threads, None);
            assert_eq!(tn.num_patterns(), t1.num_patterns());
            for f in 0..faults.len() {
                assert_eq!(
                    tn.detecting_patterns(f),
                    t1.detecting_patterns(f),
                    "seed={seed} threads={threads} fault={f}"
                );
            }
        }
    }
}

#[test]
fn select_patterns_equals_from_scratch_rebuild_on_random_subsets() {
    for seed in 1..=4u64 {
        let circuit = random_circuit(seed);
        let faults = transition_faults(&circuit);
        let n = 90 + seed as usize * 13;
        let set = random_set(&circuit, n, seed ^ 0x5a5a);
        let matrix = DetectionMatrix::build(&circuit, &set, &faults);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc0de);
        for trial in 0..5 {
            let keep: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
            let selected = matrix.select_patterns(&keep);
            let mut subset = set.clone();
            subset.retain_indices(&keep);
            let rebuilt = DetectionMatrix::build(&circuit, &subset, &faults);
            assert_eq!(selected.num_patterns(), rebuilt.num_patterns());
            for f in 0..faults.len() {
                assert_eq!(
                    selected.detecting_patterns(f),
                    rebuilt.detecting_patterns(f),
                    "seed={seed} trial={trial} fault={f}"
                );
            }
        }
    }
}

#[test]
fn cached_grading_matches_uncached_on_random_circuits() {
    for seed in 5..=7u64 {
        let circuit = random_circuit(seed);
        let faults = transition_faults(&circuit);
        let set = random_set(&circuit, 70, seed);
        let ws = WordSim::new(&circuit, &set);
        let cones = FaultCones::build(&circuit, &faults);
        let mut scratch = GradeScratch::for_cones(&cones);
        for fault in &faults {
            for b in 0..ws.num_blocks() {
                assert_eq!(
                    ws.detect_word_cached(fault, b, &cones, &mut scratch),
                    ws.detect_word(fault, b),
                    "seed={seed} {fault} block={b}"
                );
            }
        }
        assert_eq!(scratch.allocs, 1, "steady-state grading allocated");
    }
}

#[test]
fn generate_identical_across_threads_with_budget_and_compaction() {
    let circuit = random_circuit(9);
    let reference = fastmon_atpg::generate(
        &circuit,
        &AtpgConfig {
            threads: 1,
            max_patterns: Some(25),
            ..AtpgConfig::default()
        },
    );
    for threads in [2usize, 8] {
        let r = fastmon_atpg::generate(
            &circuit,
            &AtpgConfig {
                threads,
                max_patterns: Some(25),
                ..AtpgConfig::default()
            },
        );
        assert_eq!(r.test_set, reference.test_set, "threads={threads}");
        assert_eq!(
            (r.detected, r.untestable, r.aborted, r.total_faults),
            (
                reference.detected,
                reference.untestable,
                reference.aborted,
                reference.total_faults
            )
        );
    }
}
