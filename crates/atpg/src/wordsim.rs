use fastmon_netlist::{Circuit, GateKind, NodeId};

use crate::{FaultCones, GradeScratch, TestPattern, TestSet, TransitionFault};

/// Bit-parallel (64 patterns per machine word) zero-delay simulation of the
/// combinational core.
///
/// Used to grade transition-fault detection: for each fault and 64-pattern
/// word it computes the *activation* mask (launch value then capture value
/// at the gate) and the *propagation* mask (capture vector detects a
/// stuck-at-initial-value at the gate, simulated only on the gate's fanout
/// cone) — detection is their conjunction.
///
/// The hot path is [`WordSim::detect_word_cached`], which propagates over a
/// precomputed [`FaultCones`] arena with a reusable [`GradeScratch`] and
/// performs zero heap allocations in steady state. [`WordSim::detect_word`]
/// is the self-contained variant that recomputes the cone per call.
#[derive(Debug)]
pub struct WordSim<'c> {
    circuit: &'c Circuit,
    /// steady-state words per node for the launch vectors, one word per
    /// 64-pattern block
    launch: Vec<Vec<u64>>,
    /// steady-state words per node for the capture vectors
    capture: Vec<Vec<u64>>,
    /// number of patterns graded
    num_patterns: usize,
}

impl<'c> WordSim<'c> {
    /// Simulates all patterns of `set` (launch and capture vectors
    /// separately).
    #[must_use]
    pub fn new(circuit: &'c Circuit, set: &TestSet) -> Self {
        let blocks = set.len().div_ceil(64).max(1);
        let mut launch = vec![vec![0u64; circuit.len()]; blocks];
        let mut capture = vec![vec![0u64; circuit.len()]; blocks];

        for block in 0..blocks {
            let lo = block * 64;
            let hi = (lo + 64).min(set.len());
            // load source words
            let mut lw = vec![0u64; circuit.len()];
            let mut cw = vec![0u64; circuit.len()];
            for (bit, p) in (lo..hi).enumerate() {
                let pattern: &TestPattern = set.pattern(p);
                for (k, &src) in set.sources().iter().enumerate() {
                    if pattern.launch[k] {
                        lw[src.index()] |= 1 << bit;
                    }
                    if pattern.capture[k] {
                        cw[src.index()] |= 1 << bit;
                    }
                }
            }
            for id in circuit.node_ids() {
                if circuit.node(id).kind() == GateKind::Const1 {
                    lw[id.index()] = !0;
                    cw[id.index()] = !0;
                }
            }
            eval_words(circuit, &mut lw);
            eval_words(circuit, &mut cw);
            launch[block] = lw;
            capture[block] = cw;
        }

        WordSim {
            circuit,
            launch,
            capture,
            num_patterns: set.len(),
        }
    }

    /// Number of graded patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The steady capture-vector value of `node` under pattern `p`.
    #[must_use]
    pub fn capture_value(&self, node: NodeId, p: usize) -> bool {
        self.capture[p / 64][node.index()] >> (p % 64) & 1 == 1
    }

    /// The steady launch-vector value of `node` under pattern `p`.
    #[must_use]
    pub fn launch_value(&self, node: NodeId, p: usize) -> bool {
        self.launch[p / 64][node.index()] >> (p % 64) & 1 == 1
    }

    /// Per-pattern detection mask of `fault` for one 64-pattern block:
    /// bit `i` is set iff pattern `block*64 + i` detects the fault.
    ///
    /// Self-contained but slow: every call recomputes the fault's fanout
    /// cone (a fresh traversal plus a circuit-sized position array). Use
    /// [`WordSim::detect_word_cached`] in loops.
    #[must_use]
    pub fn detect_word(&self, fault: &TransitionFault, block: usize) -> u64 {
        let g = fault.gate.index();
        let lw = &self.launch[block];
        let cw = &self.capture[block];
        // activation: gate holds the initial value under v1 and the final
        // value under v2
        let activated = if fault.rising {
            !lw[g] & cw[g]
        } else {
            lw[g] & !cw[g]
        };
        let activated = activated & self.block_mask(block);
        if activated == 0 {
            return 0;
        }
        // propagation: stuck-at-initial-value on the capture vectors,
        // simulated on the fanout cone only
        let forced = if fault.initial_value() { !0u64 } else { 0u64 };
        let cone = self.circuit.fanout_cone(fault.gate);
        let mut faulty: Vec<(usize, u64)> = Vec::with_capacity(cone.len());
        let mut pos = vec![usize::MAX; self.circuit.len()];
        for (i, &id) in cone.iter().enumerate() {
            pos[id.index()] = i;
            let word = if i == 0 {
                forced
            } else {
                let node = self.circuit.node(id);
                eval_word(
                    node.kind(),
                    node.fanins().iter().map(|&fi| {
                        let p = pos[fi.index()];
                        if p == usize::MAX {
                            cw[fi.index()]
                        } else {
                            faulty[p].1
                        }
                    }),
                )
            };
            faulty.push((id.index(), word));
        }
        let mut detected = 0u64;
        for op in self.circuit.observe_points() {
            let p = pos[op.driver.index()];
            if p != usize::MAX {
                detected |= cw[op.driver.index()] ^ faulty[p].1;
            }
        }
        detected & activated
    }

    /// Like [`WordSim::detect_word`], but propagates over the precomputed
    /// [`FaultCones`] arena with a reusable [`GradeScratch`] — the hot
    /// grading path. Allocation-free in steady state (`scratch` only grows
    /// on a cone longer than any it has seen) and bit-identical to the
    /// uncached variant.
    ///
    /// Falls back to [`WordSim::detect_word`] when the fault's site is not
    /// in `cones` (it was built from a different fault list).
    #[must_use]
    pub fn detect_word_cached(
        &self,
        fault: &TransitionFault,
        block: usize,
        cones: &FaultCones,
        scratch: &mut GradeScratch,
    ) -> u64 {
        let g = fault.gate.index();
        let lw = &self.launch[block];
        let cw = &self.capture[block];
        let activated = if fault.rising {
            !lw[g] & cw[g]
        } else {
            lw[g] & !cw[g]
        };
        let activated = activated & self.block_mask(block);
        if activated == 0 {
            return 0;
        }
        let Some(id) = cones.cone_id(g) else {
            return self.detect_word(fault, block);
        };
        let forced = if fault.initial_value() { !0u64 } else { 0u64 };
        cones.propagate(id, forced, cw, scratch) & activated
    }

    /// Number of 64-pattern blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.launch.len()
    }

    fn block_mask(&self, block: usize) -> u64 {
        let lo = block * 64;
        let n = self.num_patterns.saturating_sub(lo).min(64);
        if n == 64 {
            !0
        } else {
            (1u64 << n) - 1
        }
    }
}

/// Evaluates all nodes in place over 64-bit words.
fn eval_words(circuit: &Circuit, words: &mut [u64]) {
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if !node.kind().is_combinational() {
            continue; // sources already loaded
        }
        words[id.index()] = eval_word(
            node.kind(),
            node.fanins().iter().map(|&fi| words[fi.index()]),
        );
    }
}

/// Word-parallel gate evaluation.
#[inline]
pub(crate) fn eval_word<I: Iterator<Item = u64>>(kind: GateKind, mut inputs: I) -> u64 {
    match kind {
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
        GateKind::Buf | GateKind::Input | GateKind::Dff => inputs.next().unwrap_or(0),
        GateKind::Not => !inputs.next().unwrap_or(0),
        GateKind::And => inputs.fold(!0u64, |a, b| a & b),
        GateKind::Nand => !inputs.fold(!0u64, |a, b| a & b),
        GateKind::Or => inputs.fold(0u64, |a, b| a | b),
        GateKind::Nor => !inputs.fold(0u64, |a, b| a | b),
        GateKind::Xor => inputs.fold(0u64, |a, b| a ^ b),
        GateKind::Xnor => !inputs.fold(0u64, |a, b| a ^ b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestPattern;
    use fastmon_netlist::library;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_set(circuit: &Circuit, n: usize, seed: u64) -> TestSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut set = TestSet::new(circuit);
        let w = set.sources().len();
        for _ in 0..n {
            set.push(TestPattern::new(
                (0..w).map(|_| rng.gen()).collect(),
                (0..w).map(|_| rng.gen()).collect(),
            ));
        }
        set
    }

    #[test]
    fn word_values_match_scalar_eval() {
        let c = library::s27();
        let set = random_set(&c, 100, 3);
        let ws = WordSim::new(&c, &set);
        for p in [0usize, 17, 63, 64, 99] {
            let pattern = set.pattern(p);
            let srcs = set.sources();
            let cap = c.eval_steady(|id| {
                srcs.iter()
                    .position(|&s| s == id)
                    .map(|k| pattern.capture[k])
                    .unwrap_or(false)
            });
            let lau = c.eval_steady(|id| {
                srcs.iter()
                    .position(|&s| s == id)
                    .map(|k| pattern.launch[k])
                    .unwrap_or(false)
            });
            for id in c.node_ids() {
                assert_eq!(ws.capture_value(id, p), cap[id.index()], "capture {id} {p}");
                assert_eq!(ws.launch_value(id, p), lau[id.index()], "launch {id} {p}");
            }
        }
    }

    #[test]
    fn detection_requires_activation() {
        let c = library::c17();
        // identical launch/capture vectors → no transitions → nothing
        // detected
        let mut set = TestSet::new(&c);
        let w = set.sources().len();
        set.push(TestPattern::new(vec![true; w], vec![true; w]));
        let ws = WordSim::new(&c, &set);
        for f in crate::transition_faults(&c) {
            assert_eq!(ws.detect_word(&f, 0), 0, "{f}");
        }
    }

    #[test]
    fn known_detection_on_c17() {
        let c = library::c17();
        // N10 = NAND(N1, N3). Launch N1=0 (N10=1), capture all-ones
        // (N10=0): N10 falls. Slow-to-fall at N10 should be detectable:
        // faulty N10 stuck at 1; N22 = NAND(N10, N16).
        let mut set = TestSet::new(&c);
        let srcs = set.sources().to_vec();
        let n1 = c.find("N1").unwrap();
        let launch: Vec<bool> = srcs.iter().map(|&s| s != n1).collect();
        let capture = vec![true; srcs.len()];
        set.push(TestPattern::new(launch, capture));
        let ws = WordSim::new(&c, &set);
        let stf_n10 = TransitionFault {
            gate: c.find("N10").unwrap(),
            rising: false,
        };
        assert_eq!(ws.detect_word(&stf_n10, 0), 1, "slow-to-fall N10 detected");
        let str_n10 = TransitionFault {
            gate: c.find("N10").unwrap(),
            rising: true,
        };
        assert_eq!(
            ws.detect_word(&str_n10, 0),
            0,
            "no rising transition at N10"
        );
    }

    #[test]
    fn cached_grading_matches_uncached() {
        for circuit in [library::c17(), library::s27()] {
            let set = random_set(&circuit, 150, 7);
            let ws = WordSim::new(&circuit, &set);
            let faults = crate::transition_faults(&circuit);
            let cones = FaultCones::build(&circuit, &faults);
            let mut scratch = GradeScratch::for_cones(&cones);
            for f in &faults {
                for b in 0..ws.num_blocks() {
                    assert_eq!(
                        ws.detect_word_cached(f, b, &cones, &mut scratch),
                        ws.detect_word(f, b),
                        "{f} block {b}"
                    );
                }
            }
            assert_eq!(scratch.allocs, 1, "pre-sized scratch never reallocates");
        }
    }

    #[test]
    fn cached_grading_falls_back_on_foreign_cones() {
        let c = library::s27();
        let set = random_set(&c, 64, 11);
        let ws = WordSim::new(&c, &set);
        let faults = crate::transition_faults(&c);
        // arena built from a single fault: every other site falls back
        let cones = FaultCones::build(&c, &faults[..1]);
        let mut scratch = GradeScratch::for_cones(&cones);
        for f in &faults {
            assert_eq!(
                ws.detect_word_cached(f, 0, &cones, &mut scratch),
                ws.detect_word(f, 0),
                "{f}"
            );
        }
    }

    #[test]
    fn block_mask_limits_partial_blocks() {
        let c = library::c17();
        let set = random_set(&c, 10, 5);
        let ws = WordSim::new(&c, &set);
        for f in crate::transition_faults(&c) {
            assert_eq!(ws.detect_word(&f, 0) & !((1u64 << 10) - 1), 0);
        }
    }
}
