use fastmon_netlist::{Circuit, ConeMarks, GateKind, NodeId};

use crate::logic5::{eval5, V5};
use crate::TestSet;

/// A single stuck-at fault for PODEM: the output of `node` is stuck at
/// `stuck_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// The faulted gate output.
    pub node: NodeId,
    /// The stuck value.
    pub stuck_at: bool,
}

/// The result of a PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found: per-source care bits in
    /// [`TestSet::source_order`] order (`None` = don't care).
    Test(Vec<Option<bool>>),
    /// The fault is proven untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a decision.
    Aborted,
}

impl PodemOutcome {
    /// Returns the assignment if a test was found.
    #[must_use]
    pub fn test(self) -> Option<Vec<Option<bool>>> {
        match self {
            PodemOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// Generates a vector that detects the stuck-at fault at an observation
/// point of the full-scan combinational core (classic PODEM with X-path
/// pruning).
///
/// # Example
///
/// ```
/// use fastmon_atpg::{podem, PodemOutcome, StuckAtFault};
/// use fastmon_netlist::library;
///
/// let circuit = library::c17();
/// let fault = StuckAtFault { node: circuit.find("N10").unwrap(), stuck_at: false };
/// let outcome = podem(&circuit, &fault, 1000);
/// assert!(matches!(outcome, PodemOutcome::Test(_)));
/// ```
#[must_use]
pub fn podem(circuit: &Circuit, fault: &StuckAtFault, max_backtracks: u32) -> PodemOutcome {
    PodemEngine::new(circuit).podem(fault, max_backtracks)
}

/// Like [`podem`], but records calls, decision backtracks and aborts into
/// a scoped [`fastmon_obs::AtpgMetrics`] section.
#[must_use]
pub fn podem_with_metrics(
    circuit: &Circuit,
    fault: &StuckAtFault,
    max_backtracks: u32,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> PodemOutcome {
    PodemEngine::new(circuit).podem_with_metrics(fault, max_backtracks, metrics)
}

/// PODEM with an additional *side objective*: the returned vector detects
/// `fault` **and** justifies `side_value` at `side_node`.
///
/// Used by the broadside (launch-on-capture) generator, where the frame-2
/// stuck-at detection must coexist with the frame-1 launch value.
#[must_use]
pub fn podem_with_side_objective(
    circuit: &Circuit,
    fault: &StuckAtFault,
    side_node: NodeId,
    side_value: bool,
    max_backtracks: u32,
) -> PodemOutcome {
    PodemEngine::new(circuit).podem_with_side_objective(
        fault,
        side_node,
        side_value,
        max_backtracks,
    )
}

/// Generates a vector that justifies `value` at `node` (no fault
/// propagation) — used to build the launch vector of a transition test.
#[must_use]
pub fn justify(circuit: &Circuit, node: NodeId, value: bool, max_backtracks: u32) -> PodemOutcome {
    PodemEngine::new(circuit).justify(node, value, max_backtracks)
}

/// Like [`justify`], but records calls, decision backtracks and aborts
/// into a scoped [`fastmon_obs::AtpgMetrics`] section.
#[must_use]
pub fn justify_with_metrics(
    circuit: &Circuit,
    node: NodeId,
    value: bool,
    max_backtracks: u32,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> PodemOutcome {
    PodemEngine::new(circuit).justify_with_metrics(node, value, max_backtracks, metrics)
}

#[derive(Debug, Clone, Copy)]
enum Goal {
    /// Detect the fault; optionally also justify `(node, value)`.
    Detect(StuckAtFault, Option<(NodeId, bool)>),
    Justify(NodeId, bool),
}

impl Goal {
    fn fault(self) -> Option<StuckAtFault> {
        match self {
            Goal::Detect(f, _) => Some(f),
            Goal::Justify(..) => None,
        }
    }

    /// `(node, value)` pairs that must hold in the good machine for the
    /// goal to succeed: the justify target, or fault activation plus the
    /// optional side objective. Used by the static-learning preamble.
    fn requirements(self) -> [Option<(NodeId, bool)>; 2] {
        match self {
            Goal::Justify(node, value) => [Some((node, value)), None],
            Goal::Detect(fault, side) => [Some((fault.node, !fault.stuck_at)), side],
        }
    }
}

enum Tri {
    Success,
    Fail,
    Abort,
}

/// Evaluates one node of the 5-valued model from the current `values` /
/// `assignment` state, applying the fault injection when `id` is the
/// fault site. Free function so callers can hold disjoint field borrows.
fn eval_node(
    circuit: &Circuit,
    id: NodeId,
    values: &[V5],
    ins: &mut Vec<V5>,
    assignment: &[Option<bool>],
    source_pos: &[usize],
    fault: Option<StuckAtFault>,
) -> V5 {
    let node = circuit.node(id);
    let mut v = match node.kind() {
        GateKind::Input | GateKind::Dff => match assignment[source_pos[id.index()]] {
            Some(b) => V5::from_bool(b),
            None => V5::X,
        },
        GateKind::Const0 => V5::Zero,
        GateKind::Const1 => V5::One,
        kind => {
            ins.clear();
            ins.extend(node.fanins().iter().map(|&fi| values[fi.index()]));
            eval5(kind, ins)
        }
    };
    if let Some(f) = fault {
        if f.node == id {
            v = match v.good() {
                Some(g) => V5::from_pair(g, f.stuck_at),
                None => V5::X,
            };
        }
    }
    v
}

/// Single-pass fanin closure of `seed` over the topological order,
/// through **every** node kind — exactly the set of nodes the original
/// whole-circuit X-path scan could ever mark reachable (that scan reads
/// structural fanins of flip-flops too, so [`Circuit::fanout_cone`],
/// which stops at non-combinational nodes, would under-approximate it).
fn x_path_cone(circuit: &Circuit, seed: NodeId, marks: &mut ConeMarks) -> Box<[NodeId]> {
    marks.begin(circuit.len());
    marks.set(seed);
    let mut cone = Vec::new();
    for &id in circuit.topo_order() {
        if !marks.get(id) && circuit.node(id).fanins().iter().any(|&fi| marks.get(fi)) {
            marks.set(id);
        }
        if marks.get(id) {
            cone.push(id);
        }
    }
    cone.into_boxed_slice()
}

/// Cost ceiling for the SCOAP estimates: saturating "unreachable /
/// unjustifiable". Far below `u32::MAX` so sums of several INF terms
/// cannot wrap.
const INF_COST: u32 = u32::MAX / 4;

fn sat(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(INF_COST)
}

/// SCOAP-style testability estimates, computed once per circuit.
///
/// `cc0[n]` / `cc1[n]` approximate the number of source assignments needed
/// to justify 0 / 1 at node `n`; `co[n]` approximates the effort to
/// propagate a fault effect from `n` to an observation point. The search
/// uses them as *ordering heuristics only* — every choice remains exact and
/// deterministic, the costs just decide which branch is tried first.
struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Testability {
    fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut cc0 = vec![INF_COST; n];
        let mut cc1 = vec![INF_COST; n];
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            let kind = node.kind();
            let fanins = node.fanins();
            let (c0, c1) = match kind {
                GateKind::Input | GateKind::Dff => (1, 1),
                GateKind::Const0 => (0, INF_COST),
                GateKind::Const1 => (INF_COST, 0),
                GateKind::Buf | GateKind::Not => {
                    let f = fanins[0].index();
                    (sat(cc0[f], 1), sat(cc1[f], 1))
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = kind
                        .controlling_value()
                        .unwrap_or_else(|| unreachable!("and/or class controlling value"));
                    // output == c: one controlling input suffices;
                    // output == !c: every input non-controlling
                    let easiest = fanins
                        .iter()
                        .map(|&f| if c { cc1[f.index()] } else { cc0[f.index()] })
                        .min()
                        .unwrap_or(INF_COST);
                    let all_non = fanins
                        .iter()
                        .map(|&f| if c { cc0[f.index()] } else { cc1[f.index()] })
                        .fold(0, sat);
                    if c {
                        (sat(all_non, 1), sat(easiest, 1))
                    } else {
                        (sat(easiest, 1), sat(all_non, 1))
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let first = fanins[0].index();
                    let (mut a0, mut a1) = (cc0[first], cc1[first]);
                    for &f in &fanins[1..] {
                        let (b0, b1) = (cc0[f.index()], cc1[f.index()]);
                        let n0 = sat(a0, b0).min(sat(a1, b1));
                        let n1 = sat(a0, b1).min(sat(a1, b0));
                        (a0, a1) = (n0, n1);
                    }
                    (sat(a0, 1), sat(a1, 1))
                }
            };
            let i = id.index();
            (cc0[i], cc1[i]) = if kind.is_inverting() {
                (c1, c0)
            } else {
                (c0, c1)
            };
        }

        let mut co = vec![INF_COST; n];
        for op in circuit.observe_points() {
            co[op.driver.index()] = 0;
        }
        for &id in circuit.topo_order().iter().rev() {
            let node = circuit.node(id);
            let kind = node.kind();
            if !kind.is_combinational() {
                continue;
            }
            let my = co[id.index()];
            if my >= INF_COST {
                continue;
            }
            let fanins = node.fanins();
            for (i, &fi) in fanins.iter().enumerate() {
                // side inputs must be held non-controlling (and/or class)
                // or at any binary value (xor class) to pass the effect
                let side: u32 = fanins
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &fj)| {
                        let j = fj.index();
                        match kind.controlling_value() {
                            Some(true) => cc0[j],
                            Some(false) => cc1[j],
                            None => cc0[j].min(cc1[j]),
                        }
                    })
                    .fold(0, sat);
                let cost = sat(sat(my, side), 1);
                let f = fi.index();
                co[f] = co[f].min(cost);
            }
        }
        Testability { cc0, cc1, co }
    }

    /// Controllability of `value` at node index `i`.
    fn cc(&self, i: usize, value: bool) -> u32 {
        if value {
            self.cc1[i]
        } else {
            self.cc0[i]
        }
    }
}

/// Upper bound on stored implications; beyond it the pass keeps the
/// (cheap, O(nodes)) constants but stops growing the reverse index.
const LEARN_CAP: usize = 4_000_000;

/// Static learned implications, computed once per circuit by ternary
/// forward simulation.
///
/// For every source `s` and value `v`, one cone-bounded 3-valued sweep with
/// only `s = v` assigned records each node that settles to a binary value
/// `b` as the implication `(s = v) ⇒ (n = b)`. Nodes forced to the *same*
/// value by both polarities of some source (or binary under the all-X
/// baseline) are constants. The implications are consulted before a search
/// starts: a target value contradicting a constant (or forbidden by both
/// values of one source) is `Untestable` with zero backtracks, and a source
/// value that would force the target to the wrong value yields a necessary
/// pre-assignment of the opposite value.
///
/// Soundness: ternary simulation is monotone — a node binary under a
/// partial assignment keeps that value under every completion — so every
/// recorded implication (and hence every constant, contradiction and
/// necessity) holds for all full assignments.
struct Learned {
    constant: Vec<Option<bool>>,
    /// node index → `(source position, source value, implied node value)`.
    implications: Vec<Vec<(u32, bool, bool)>>,
}

impl Learned {
    fn build(
        circuit: &Circuit,
        sources: &[NodeId],
        source_pos: &[usize],
        cones: &mut [Option<Box<[NodeId]>>],
        marks: &mut ConeMarks,
    ) -> Self {
        let n = circuit.len();
        let mut values = vec![V5::X; n];
        let mut ins = Vec::new();
        let mut assignment: Vec<Option<bool>> = vec![None; sources.len()];
        for &id in circuit.topo_order() {
            values[id.index()] = eval_node(
                circuit,
                id,
                &values,
                &mut ins,
                &assignment,
                source_pos,
                None,
            );
        }
        let as_binary = |v: V5| if v.is_binary() { v.good() } else { None };
        let mut constant: Vec<Option<bool>> = values.iter().map(|&v| as_binary(v)).collect();
        let baseline = values.clone();

        let mut implications: Vec<Vec<(u32, bool, bool)>> = vec![Vec::new(); n];
        let mut total = 0usize;
        // node → value implied by `s = false`, valid for the current source
        let mut low_pass: Vec<Option<bool>> = vec![None; n];
        let mut cone_buf: Vec<NodeId> = Vec::new();
        for (k, &s) in sources.iter().enumerate() {
            let cone = cones[s.index()].get_or_insert_with(|| {
                circuit.fanout_cone_into(s, marks, &mut cone_buf);
                cone_buf.as_slice().into()
            });
            for v in [false, true] {
                assignment[k] = Some(v);
                for &id in cone.iter() {
                    values[id.index()] = eval_node(
                        circuit,
                        id,
                        &values,
                        &mut ins,
                        &assignment,
                        source_pos,
                        None,
                    );
                }
                for &id in cone.iter() {
                    let i = id.index();
                    if constant[i].is_some() {
                        continue;
                    }
                    let b = as_binary(values[i]);
                    if !v {
                        low_pass[i] = b;
                    } else if let (Some(b1), Some(b0)) = (b, low_pass[i]) {
                        if b0 == b1 {
                            // forced either way: the node is constant
                            constant[i] = Some(b1);
                        }
                    }
                    if let Some(b) = b {
                        if total < LEARN_CAP {
                            let k = u32::try_from(k)
                                .unwrap_or_else(|_| unreachable!("source count fits u32"));
                            implications[i].push((k, v, b));
                            total += 1;
                        }
                    }
                }
                assignment[k] = None;
                for &id in cone.iter() {
                    values[id.index()] = baseline[id.index()];
                }
            }
            for &id in cone.iter() {
                low_pass[id.index()] = None;
            }
        }
        Learned {
            constant,
            implications,
        }
    }
}

/// Reusable PODEM search engine.
///
/// All per-circuit state — source ordering, the 5-valued value array, the
/// X-path scratch and lazily cached fanout cones — lives in the engine and
/// is shared across faults, so a generation loop that targets thousands of
/// faults allocates once instead of per call. More importantly, the three
/// inner loops of the search are **cone-bounded**:
///
/// * forward implication after a decision re-simulates only the fanout
///   cone of the source that changed (values outside it cannot move);
/// * the D-frontier scan walks the fault site's fanout cone instead of
///   every combinational node (fault effects cannot exist elsewhere);
/// * the X-path check walks a cached fanin closure of the fault site.
///
/// Every bound is exact — the restricted walks visit the same candidates
/// in the same (topological) order as the original whole-circuit walks.
///
/// The *order* in which candidates are tried is testability-guided:
/// [SCOAP-style](Testability) controllability/observability costs pick the
/// easiest D-frontier gate and order backtrace decisions
/// (easiest-controlling / hardest-non-controlling first), and a
/// [static-learning](Learned) preamble turns provably contradictory
/// targets into instant `Untestable` answers and seeds the search with
/// necessary source assignments. All of it is deterministic — identical
/// circuits produce identical cubes on every run and thread count — but
/// the cubes differ from the unguided first-X-input engine, trading
/// bit-compatibility for an order-of-magnitude backtrack reduction.
pub struct PodemEngine<'c> {
    circuit: &'c Circuit,
    sources: Vec<NodeId>,
    source_pos: Vec<usize>,
    values: Vec<V5>,
    assignment: Vec<Option<bool>>,
    ins: Vec<V5>,
    reach: Vec<bool>,
    /// Combinational fanout cones (forward implication + D-frontier),
    /// lazily built per node and reused across runs.
    cones: Vec<Option<Box<[NodeId]>>>,
    /// Through-anything fanin closures for the X-path check.
    xcones: Vec<Option<Box<[NodeId]>>>,
    testability: Testability,
    learned: Learned,
    /// Observation-point drivers, for the dynamic D-frontier filter.
    op_driver: Vec<bool>,
    /// Scratch for the reverse can-reach-an-OP-through-X sweep; false
    /// outside an `objective` call.
    xreach: Vec<bool>,
    /// Shared mark scratch for the lazy cone builds.
    cone_marks: ConeMarks,
    /// Shared cone buffer for the lazy cone builds.
    cone_buf: Vec<NodeId>,
    backtracks_left: u32,
}

impl<'c> PodemEngine<'c> {
    /// Builds an engine for `circuit`; reuse it across as many
    /// [`podem`](Self::podem) / [`justify`](Self::justify) calls as you
    /// like.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        let sources = TestSet::source_order(circuit);
        let mut source_pos = vec![usize::MAX; circuit.len()];
        for (k, &s) in sources.iter().enumerate() {
            source_pos[s.index()] = k;
        }
        let n = sources.len();
        let mut cones: Vec<Option<Box<[NodeId]>>> = vec![None; circuit.len()];
        let mut cone_marks = ConeMarks::new();
        // the learning pass also pre-warms every source's forward cone,
        // which the search's incremental implication reuses
        let learned = Learned::build(circuit, &sources, &source_pos, &mut cones, &mut cone_marks);
        let mut op_driver = vec![false; circuit.len()];
        for op in circuit.observe_points() {
            op_driver[op.driver.index()] = true;
        }
        PodemEngine {
            circuit,
            sources,
            source_pos,
            values: vec![V5::X; circuit.len()],
            assignment: vec![None; n],
            ins: Vec::new(),
            reach: vec![false; circuit.len()],
            cones,
            xcones: vec![None; circuit.len()],
            testability: Testability::build(circuit),
            learned,
            op_driver,
            xreach: vec![false; circuit.len()],
            cone_marks,
            cone_buf: Vec::new(),
            backtracks_left: 0,
        }
    }

    /// [`podem`] on this engine's circuit, reusing cached cones/buffers.
    pub fn podem(&mut self, fault: &StuckAtFault, max_backtracks: u32) -> PodemOutcome {
        self.run(Goal::Detect(*fault, None), max_backtracks, None)
    }

    /// [`podem_with_metrics`] on this engine.
    pub fn podem_with_metrics(
        &mut self,
        fault: &StuckAtFault,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.run(Goal::Detect(*fault, None), max_backtracks, metrics)
    }

    /// [`podem_with_side_objective`] on this engine.
    pub fn podem_with_side_objective(
        &mut self,
        fault: &StuckAtFault,
        side_node: NodeId,
        side_value: bool,
        max_backtracks: u32,
    ) -> PodemOutcome {
        self.run(
            Goal::Detect(*fault, Some((side_node, side_value))),
            max_backtracks,
            None,
        )
    }

    /// [`justify`] on this engine.
    pub fn justify(&mut self, node: NodeId, value: bool, max_backtracks: u32) -> PodemOutcome {
        self.run(Goal::Justify(node, value), max_backtracks, None)
    }

    /// [`justify_with_metrics`] on this engine.
    pub fn justify_with_metrics(
        &mut self,
        node: NodeId,
        value: bool,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.run(Goal::Justify(node, value), max_backtracks, metrics)
    }

    fn run(
        &mut self,
        goal: Goal,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.assignment.fill(None);
        self.backtracks_left = max_backtracks;
        if let Some(f) = goal.fault() {
            self.ensure_cones(f.node);
        }
        let (contradiction, necessities) = self.apply_learned(goal);
        let outcome = if contradiction {
            PodemOutcome::Untestable
        } else {
            self.forward_full(goal);
            match self.search(goal) {
                Tri::Success => PodemOutcome::Test(self.assignment.clone()),
                Tri::Fail => PodemOutcome::Untestable,
                Tri::Abort => PodemOutcome::Aborted,
            }
        };
        if let Some(m) = metrics {
            m.podem_calls.incr();
            m.podem_backtracks
                .add(u64::from(max_backtracks - self.backtracks_left));
            m.podem_necessity_assignments.add(necessities);
            if contradiction {
                m.podem_learned_untestable.incr();
            }
            if matches!(outcome, PodemOutcome::Aborted) {
                m.podem_aborts.incr();
            }
        }
        outcome
    }

    /// The static-learning preamble: checks every goal requirement against
    /// learned constants and implications. Returns `(true, _)` when some
    /// requirement is provably unsatisfiable (the goal is `Untestable`
    /// without any search); otherwise pre-assigns each source whose value
    /// would force a requirement to the wrong constant — those assignments
    /// are *necessary*, so exhausting the remaining space still proves
    /// untestability.
    fn apply_learned(&mut self, goal: Goal) -> (bool, u64) {
        let mut necessities = 0u64;
        for (node, value) in goal.requirements().into_iter().flatten() {
            let i = node.index();
            if let Some(c) = self.learned.constant[i] {
                if c != value {
                    return (true, necessities);
                }
                continue;
            }
            for &(k, source_value, implied) in &self.learned.implications[i] {
                if implied == value {
                    continue;
                }
                // `source = source_value` forces the wrong value here, so
                // the opposite source value is necessary
                let need = !source_value;
                match self.assignment[k as usize] {
                    Some(prev) if prev != need => return (true, necessities),
                    Some(_) => {}
                    None => {
                        self.assignment[k as usize] = Some(need);
                        necessities += 1;
                    }
                }
            }
        }
        (false, necessities)
    }

    /// Caches both cone flavours for a fault site.
    fn ensure_cones(&mut self, node: NodeId) {
        let idx = node.index();
        if self.cones[idx].is_none() {
            self.circuit
                .fanout_cone_into(node, &mut self.cone_marks, &mut self.cone_buf);
            self.cones[idx] = Some(self.cone_buf.as_slice().into());
        }
        if self.xcones[idx].is_none() {
            self.xcones[idx] = Some(x_path_cone(self.circuit, node, &mut self.cone_marks));
        }
    }

    /// Caches the forward-implication cone of a source.
    fn ensure_source_cone(&mut self, node: NodeId) {
        let idx = node.index();
        if self.cones[idx].is_none() {
            self.circuit
                .fanout_cone_into(node, &mut self.cone_marks, &mut self.cone_buf);
            self.cones[idx] = Some(self.cone_buf.as_slice().into());
        }
    }

    /// Full forward 5-valued implication — every node, used once per run
    /// to (re)initialise `values` from the empty assignment.
    fn forward_full(&mut self, goal: Goal) {
        let fault = goal.fault();
        for &id in self.circuit.topo_order() {
            let v = eval_node(
                self.circuit,
                id,
                &self.values,
                &mut self.ins,
                &self.assignment,
                &self.source_pos,
                fault,
            );
            self.values[id.index()] = v;
        }
    }

    /// Incremental forward implication after flipping one source: only the
    /// nodes in that source's fanout cone can change, and the cone list is
    /// topologically ordered, so one bounded sweep reaches the same fixed
    /// point as a whole-circuit pass.
    fn forward_cone(&mut self, seed: NodeId, goal: Goal) {
        let fault = goal.fault();
        let Some(cone) = self.cones[seed.index()].as_deref() else {
            // unreachable: callers cache the cone first; fall back safely
            return self.forward_full(goal);
        };
        for &id in cone {
            let v = eval_node(
                self.circuit,
                id,
                &self.values,
                &mut self.ins,
                &self.assignment,
                &self.source_pos,
                fault,
            );
            self.values[id.index()] = v;
        }
    }

    fn success(&self, goal: Goal) -> bool {
        match goal {
            Goal::Justify(node, value) => self.values[node.index()] == V5::from_bool(value),
            Goal::Detect(_, side) => {
                let side_ok = side
                    .is_none_or(|(node, value)| self.values[node.index()].good() == Some(value));
                side_ok
                    && self
                        .circuit
                        .observe_points()
                        .iter()
                        .any(|op| self.values[op.driver.index()].is_fault_effect())
            }
        }
    }

    /// Returns `true` when the current partial assignment can no longer
    /// lead to success.
    fn hopeless(&mut self, goal: Goal) -> bool {
        match goal {
            Goal::Justify(node, value) => {
                let v = self.values[node.index()];
                v.is_binary() && v != V5::from_bool(value)
            }
            Goal::Detect(fault, side) => {
                if let Some((node, value)) = side {
                    // launch value fixed to the wrong polarity: dead branch
                    let v = self.values[node.index()];
                    if v.good().is_some_and(|g| g != value) {
                        return true;
                    }
                }
                let at_site = self.values[fault.node.index()];
                if at_site.is_binary() {
                    return true; // good == stuck: can never activate
                }
                if at_site.is_fault_effect() {
                    // activated: need an X-path from the frontier
                    !self.x_path_exists(fault)
                } else {
                    false // site still X: activation pending
                }
            }
        }
    }

    /// Whether some fault effect can still reach an observation point
    /// through X-valued logic. Walks the fault site's cached fanin closure
    /// instead of the whole circuit — nodes outside it can never be marked
    /// — using (and then clearing) the persistent `reach` scratch.
    fn x_path_exists(&mut self, fault: StuckAtFault) -> bool {
        let cone = self.xcones[fault.node.index()].as_deref().unwrap_or(&[]);
        for &id in cone {
            let v = self.values[id.index()];
            let mark = if v.is_fault_effect() {
                true
            } else if v == V5::X {
                self.circuit
                    .node(id)
                    .fanins()
                    .iter()
                    .any(|&fi| self.reach[fi.index()])
            } else {
                false
            };
            self.reach[id.index()] = mark;
        }
        let hit = self
            .circuit
            .observe_points()
            .iter()
            .any(|op| self.reach[op.driver.index()]);
        for &id in cone {
            self.reach[id.index()] = false;
        }
        hit
    }

    /// The next objective `(node, value)` to pursue, or `None` when stuck.
    fn objective(&mut self, goal: Goal) -> Option<(NodeId, bool)> {
        match goal {
            Goal::Justify(node, value) => {
                (self.values[node.index()] == V5::X).then_some((node, value))
            }
            Goal::Detect(fault, side) => {
                if let Some((node, value)) = side {
                    if self.values[node.index()] == V5::X {
                        return Some((node, value));
                    }
                }
                let at_site = self.values[fault.node.index()];
                if at_site == V5::X {
                    return Some((fault.node, !fault.stuck_at));
                }
                if !at_site.is_fault_effect() {
                    return None;
                }
                // D-frontier: gates with an X output and a fault-effect
                // input. Effect-carrying nodes live inside the fault
                // site's combinational fanout cone, and so do their fanout
                // gates. Frontier gates whose output cannot reach an
                // observation point through X-valued logic any more are
                // dead ends — a reverse sweep over the cone filters them
                // out before they burn decisions. Among the live gates,
                // pursue the one whose output is *easiest to observe*
                // (minimum SCOAP CO, ties broken toward the first in
                // topological order) — the fault effect takes the cheapest
                // path out.
                let cone = self.cones[fault.node.index()].as_deref().unwrap_or(&[]);
                for &id in cone.iter().rev() {
                    let i = id.index();
                    // before: `xreach[i]` = some already-processed fanout
                    // reaches an OP through X; after: this node does
                    let ok = self.values[i] == V5::X && (self.op_driver[i] || self.xreach[i]);
                    self.xreach[i] = ok;
                    if ok {
                        for &fi in self.circuit.node(id).fanins() {
                            self.xreach[fi.index()] = true;
                        }
                    }
                }
                let mut best: Option<(u32, NodeId)> = None;
                for &id in cone {
                    if self.values[id.index()] != V5::X || !self.xreach[id.index()] {
                        continue;
                    }
                    let node = self.circuit.node(id);
                    if !node.kind().is_combinational() {
                        continue;
                    }
                    let has_effect = node
                        .fanins()
                        .iter()
                        .any(|&fi| self.values[fi.index()].is_fault_effect());
                    let has_x = node
                        .fanins()
                        .iter()
                        .any(|&fi| self.values[fi.index()] == V5::X);
                    if !has_effect || !has_x {
                        continue;
                    }
                    let cost = self.testability.co[id.index()];
                    if best.is_none_or(|(c, _)| cost < c) {
                        best = Some((cost, id));
                    }
                }
                // the sweep marks side fanins outside the cone too: clear
                // everything it could have touched before returning
                for &id in cone {
                    self.xreach[id.index()] = false;
                    for &fi in self.circuit.node(id).fanins() {
                        self.xreach[fi.index()] = false;
                    }
                }
                let (_, id) = best?;
                let node = self.circuit.node(id);
                // Side inputs: to pass the effect, *every* X side input
                // must eventually go non-controlling, so surface conflicts
                // early by driving the hardest one first. XOR-class gates
                // propagate through any binary value — still take the
                // hardest input, but aim for its cheaper value.
                let mut pick: Option<(u32, NodeId, bool)> = None;
                for &fi in node.fanins() {
                    let f = fi.index();
                    if self.values[f] != V5::X {
                        continue;
                    }
                    let (cost, v) = match node.kind().controlling_value() {
                        Some(c) => (self.testability.cc(f, !c), !c),
                        None => {
                            let (c0, c1) = (self.testability.cc0[f], self.testability.cc1[f]);
                            (c0.min(c1), c1 < c0)
                        }
                    };
                    if pick.is_none_or(|(c, _, _)| cost > c) {
                        pick = Some((cost, fi, v));
                    }
                }
                pick.map(|(_, fi, v)| (fi, v))
            }
        }
    }

    /// Maps an objective to a source assignment by walking X inputs
    /// backwards, ordered by the SCOAP controllability costs: where one
    /// controlling input suffices the *easiest* X input is taken, where
    /// every input must go non-controlling the *hardest* is taken first so
    /// infeasible branches die at the top of the decision stack instead of
    /// after a pile of cheap assignments.
    fn backtrace(&self, mut node: NodeId, mut value: bool) -> (usize, bool) {
        loop {
            let pos = self.source_pos[node.index()];
            if pos != usize::MAX {
                return (pos, value);
            }
            let n = self.circuit.node(node);
            let kind = n.kind();
            let pre = value ^ kind.is_inverting();
            // choose an X-valued input and the value to aim for there
            let (next, next_value) = match kind {
                GateKind::Buf | GateKind::Not => (n.fanins()[0], pre),
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let ctrl = kind
                        .controlling_value()
                        .unwrap_or_else(|| unreachable!("and/or class controlling value"));
                    // needing the non-controlled output means every input
                    // is necessary (pick the hardest); a controlled output
                    // is a free choice (pick the easiest)
                    let all_necessary = pre != ctrl;
                    let needed = if all_necessary { !ctrl } else { ctrl };
                    let mut pick: Option<(u32, NodeId)> = None;
                    for &fi in n.fanins() {
                        let f = fi.index();
                        if self.values[f] != V5::X {
                            continue;
                        }
                        let cost = self.testability.cc(f, needed);
                        let better =
                            pick.is_none_or(
                                |(c, _)| {
                                    if all_necessary {
                                        cost > c
                                    } else {
                                        cost < c
                                    }
                                },
                            );
                        if better {
                            pick = Some((cost, fi));
                        }
                    }
                    let (_, x_input) =
                        pick.unwrap_or_else(|| unreachable!("X output implies an X input"));
                    (x_input, needed)
                }
                GateKind::Xor | GateKind::Xnor => {
                    // every input must settle to a binary value; take the
                    // cheapest-to-control X input first
                    let mut pick: Option<(u32, NodeId)> = None;
                    for &fi in n.fanins() {
                        let f = fi.index();
                        if self.values[f] != V5::X {
                            continue;
                        }
                        let cost = self.testability.cc0[f].min(self.testability.cc1[f]);
                        if pick.is_none_or(|(c, _)| cost < c) {
                            pick = Some((cost, fi));
                        }
                    }
                    let (_, x_input) =
                        pick.unwrap_or_else(|| unreachable!("X output implies an X input"));
                    // parity of the other inputs' known good bits
                    let parity = n
                        .fanins()
                        .iter()
                        .filter(|&&fi| fi != x_input)
                        .map(|&fi| self.values[fi.index()].good().unwrap_or(false))
                        .fold(false, |a, b| a ^ b);
                    (x_input, pre ^ parity)
                }
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {
                    unreachable!("sources are caught above; constants are never X")
                }
            };
            node = next;
            value = next_value;
        }
    }

    fn search(&mut self, goal: Goal) -> Tri {
        if self.success(goal) {
            return Tri::Success;
        }
        if self.hopeless(goal) {
            return Tri::Fail;
        }
        let Some((obj_node, obj_value)) = self.objective(goal) else {
            return Tri::Fail;
        };
        let (src, first) = self.backtrace(obj_node, obj_value);
        let src_node = self.sources[src];
        self.ensure_source_cone(src_node);
        for value in [first, !first] {
            self.assignment[src] = Some(value);
            self.forward_cone(src_node, goal);
            match self.search(goal) {
                Tri::Success => return Tri::Success,
                Tri::Abort => return Tri::Abort,
                Tri::Fail => {
                    if self.backtracks_left == 0 {
                        return Tri::Abort;
                    }
                    self.backtracks_left -= 1;
                }
            }
        }
        self.assignment[src] = None;
        self.forward_cone(src_node, goal);
        Tri::Fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{library, CircuitBuilder};

    fn check_detects(circuit: &Circuit, fault: &StuckAtFault, assignment: &[Option<bool>]) {
        // verify: good vs faulty steady simulation differ at an observation
        // point (don't-cares filled with 0)
        let sources = TestSet::source_order(circuit);
        let assigned = |id: NodeId| {
            sources
                .iter()
                .position(|&s| s == id)
                .and_then(|k| assignment[k])
                .unwrap_or(false)
        };
        let good = circuit.eval_steady(assigned);
        // faulty: recompute with the node forced
        let mut faulty = vec![false; circuit.len()];
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            faulty[id.index()] = if id == fault.node {
                fault.stuck_at
            } else {
                match node.kind() {
                    GateKind::Input | GateKind::Dff => assigned(id),
                    GateKind::Const0 => false,
                    GateKind::Const1 => true,
                    kind => {
                        let ins: Vec<bool> =
                            node.fanins().iter().map(|&fi| faulty[fi.index()]).collect();
                        kind.eval(&ins)
                    }
                }
            };
        }
        let detected = circuit
            .observe_points()
            .iter()
            .any(|op| good[op.driver.index()] != faulty[op.driver.index()]);
        assert!(detected, "assignment does not detect {fault:?}");
    }

    #[test]
    fn detects_all_c17_stuck_faults() {
        let c = library::c17();
        for id in c.node_ids() {
            for stuck in [false, true] {
                let fault = StuckAtFault {
                    node: id,
                    stuck_at: stuck,
                };
                match podem(&c, &fault, 10_000) {
                    PodemOutcome::Test(t) => check_detects(&c, &fault, &t),
                    other => panic!("c17 {fault:?} should be testable, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn detects_all_s27_stuck_faults() {
        let c = library::s27();
        let mut tested = 0;
        for id in c.node_ids() {
            if !c.node(id).kind().is_combinational() {
                continue;
            }
            for stuck in [false, true] {
                let fault = StuckAtFault {
                    node: id,
                    stuck_at: stuck,
                };
                match podem(&c, &fault, 50_000) {
                    PodemOutcome::Test(t) => {
                        check_detects(&c, &fault, &t);
                        tested += 1;
                    }
                    PodemOutcome::Untestable => {}
                    PodemOutcome::Aborted => panic!("s27 {fault:?} aborted"),
                }
            }
        }
        assert!(tested >= 18, "most s27 faults are testable, got {tested}");
    }

    #[test]
    fn untestable_fault_proven() {
        // y = OR(a, NOT(a)) is constant 1: s-a-1 at y is untestable
        let mut b = CircuitBuilder::new("taut");
        b.add("a", GateKind::Input, &[]);
        b.add("na", GateKind::Not, &["a"]);
        b.add("y", GateKind::Or, &["a", "na"]);
        b.mark_output("y");
        let c = b.finish().unwrap();
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: true,
        };
        assert_eq!(podem(&c, &fault, 10_000), PodemOutcome::Untestable);
        // ...but s-a-0 is testable by any vector
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: false,
        };
        assert!(matches!(podem(&c, &fault, 10_000), PodemOutcome::Test(_)));
    }

    #[test]
    fn justify_sets_internal_node() {
        let c = library::s27();
        let g11 = c.find("G11").unwrap();
        for target in [false, true] {
            match justify(&c, g11, target, 10_000) {
                PodemOutcome::Test(t) => {
                    let sources = TestSet::source_order(&c);
                    let vals = c.eval_steady(|id| {
                        sources
                            .iter()
                            .position(|&s| s == id)
                            .and_then(|k| t[k])
                            .unwrap_or(false)
                    });
                    assert_eq!(vals[g11.index()], target);
                }
                other => panic!("justify G11={target} failed: {other:?}"),
            }
        }
    }

    #[test]
    fn justify_constant_conflict_untestable() {
        let mut b = CircuitBuilder::new("const");
        b.add("a", GateKind::Input, &[]);
        b.add("z", GateKind::And, &["a", "zero"]);
        b.add("zero", GateKind::Const0, &[]);
        b.mark_output("z");
        let c = b.finish().unwrap();
        let z = c.find("z").unwrap();
        assert_eq!(justify(&c, z, true, 1000), PodemOutcome::Untestable);
        assert!(matches!(justify(&c, z, false, 1000), PodemOutcome::Test(_)));
    }

    #[test]
    fn dont_cares_remain() {
        // y = BUF(a); input b is irrelevant and must stay X
        let mut b = CircuitBuilder::new("dc");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("y", GateKind::Buf, &["a"]);
        b.add("z", GateKind::Buf, &["b"]);
        b.mark_output("y");
        b.mark_output("z");
        let c = b.finish().unwrap();
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: false,
        };
        let t = podem(&c, &fault, 100).test().unwrap();
        let sources = TestSet::source_order(&c);
        let b_pos = sources
            .iter()
            .position(|&s| s == c.find("b").unwrap())
            .unwrap();
        assert_eq!(t[b_pos], None, "b is a don't care");
    }
}
