use fastmon_netlist::{Circuit, GateKind, NodeId};

use crate::logic5::{eval5, V5};
use crate::TestSet;

/// A single stuck-at fault for PODEM: the output of `node` is stuck at
/// `stuck_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// The faulted gate output.
    pub node: NodeId,
    /// The stuck value.
    pub stuck_at: bool,
}

/// The result of a PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found: per-source care bits in
    /// [`TestSet::source_order`] order (`None` = don't care).
    Test(Vec<Option<bool>>),
    /// The fault is proven untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a decision.
    Aborted,
}

impl PodemOutcome {
    /// Returns the assignment if a test was found.
    #[must_use]
    pub fn test(self) -> Option<Vec<Option<bool>>> {
        match self {
            PodemOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// Generates a vector that detects the stuck-at fault at an observation
/// point of the full-scan combinational core (classic PODEM with X-path
/// pruning).
///
/// # Example
///
/// ```
/// use fastmon_atpg::{podem, PodemOutcome, StuckAtFault};
/// use fastmon_netlist::library;
///
/// let circuit = library::c17();
/// let fault = StuckAtFault { node: circuit.find("N10").unwrap(), stuck_at: false };
/// let outcome = podem(&circuit, &fault, 1000);
/// assert!(matches!(outcome, PodemOutcome::Test(_)));
/// ```
#[must_use]
pub fn podem(circuit: &Circuit, fault: &StuckAtFault, max_backtracks: u32) -> PodemOutcome {
    PodemEngine::new(circuit).podem(fault, max_backtracks)
}

/// Like [`podem`], but records calls, decision backtracks and aborts into
/// a scoped [`fastmon_obs::AtpgMetrics`] section.
#[must_use]
pub fn podem_with_metrics(
    circuit: &Circuit,
    fault: &StuckAtFault,
    max_backtracks: u32,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> PodemOutcome {
    PodemEngine::new(circuit).podem_with_metrics(fault, max_backtracks, metrics)
}

/// PODEM with an additional *side objective*: the returned vector detects
/// `fault` **and** justifies `side_value` at `side_node`.
///
/// Used by the broadside (launch-on-capture) generator, where the frame-2
/// stuck-at detection must coexist with the frame-1 launch value.
#[must_use]
pub fn podem_with_side_objective(
    circuit: &Circuit,
    fault: &StuckAtFault,
    side_node: NodeId,
    side_value: bool,
    max_backtracks: u32,
) -> PodemOutcome {
    PodemEngine::new(circuit).podem_with_side_objective(
        fault,
        side_node,
        side_value,
        max_backtracks,
    )
}

/// Generates a vector that justifies `value` at `node` (no fault
/// propagation) — used to build the launch vector of a transition test.
#[must_use]
pub fn justify(circuit: &Circuit, node: NodeId, value: bool, max_backtracks: u32) -> PodemOutcome {
    PodemEngine::new(circuit).justify(node, value, max_backtracks)
}

/// Like [`justify`], but records calls, decision backtracks and aborts
/// into a scoped [`fastmon_obs::AtpgMetrics`] section.
#[must_use]
pub fn justify_with_metrics(
    circuit: &Circuit,
    node: NodeId,
    value: bool,
    max_backtracks: u32,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> PodemOutcome {
    PodemEngine::new(circuit).justify_with_metrics(node, value, max_backtracks, metrics)
}

#[derive(Debug, Clone, Copy)]
enum Goal {
    /// Detect the fault; optionally also justify `(node, value)`.
    Detect(StuckAtFault, Option<(NodeId, bool)>),
    Justify(NodeId, bool),
}

impl Goal {
    fn fault(self) -> Option<StuckAtFault> {
        match self {
            Goal::Detect(f, _) => Some(f),
            Goal::Justify(..) => None,
        }
    }
}

enum Tri {
    Success,
    Fail,
    Abort,
}

/// Evaluates one node of the 5-valued model from the current `values` /
/// `assignment` state, applying the fault injection when `id` is the
/// fault site. Free function so callers can hold disjoint field borrows.
fn eval_node(
    circuit: &Circuit,
    id: NodeId,
    values: &[V5],
    ins: &mut Vec<V5>,
    assignment: &[Option<bool>],
    source_pos: &[usize],
    fault: Option<StuckAtFault>,
) -> V5 {
    let node = circuit.node(id);
    let mut v = match node.kind() {
        GateKind::Input | GateKind::Dff => match assignment[source_pos[id.index()]] {
            Some(b) => V5::from_bool(b),
            None => V5::X,
        },
        GateKind::Const0 => V5::Zero,
        GateKind::Const1 => V5::One,
        kind => {
            ins.clear();
            ins.extend(node.fanins().iter().map(|&fi| values[fi.index()]));
            eval5(kind, ins)
        }
    };
    if let Some(f) = fault {
        if f.node == id {
            v = match v.good() {
                Some(g) => V5::from_pair(g, f.stuck_at),
                None => V5::X,
            };
        }
    }
    v
}

/// Single-pass fanin closure of `seed` over the topological order,
/// through **every** node kind — exactly the set of nodes the original
/// whole-circuit X-path scan could ever mark reachable (that scan reads
/// structural fanins of flip-flops too, so [`Circuit::fanout_cone`],
/// which stops at non-combinational nodes, would under-approximate it).
fn x_path_cone(circuit: &Circuit, seed: NodeId) -> Box<[NodeId]> {
    let mut in_cone = vec![false; circuit.len()];
    in_cone[seed.index()] = true;
    let mut cone = Vec::new();
    for &id in circuit.topo_order() {
        let idx = id.index();
        if !in_cone[idx] {
            in_cone[idx] = circuit
                .node(id)
                .fanins()
                .iter()
                .any(|&fi| in_cone[fi.index()]);
        }
        if in_cone[idx] {
            cone.push(id);
        }
    }
    cone.into_boxed_slice()
}

/// Reusable PODEM search engine.
///
/// All per-circuit state — source ordering, the 5-valued value array, the
/// X-path scratch and lazily cached fanout cones — lives in the engine and
/// is shared across faults, so a generation loop that targets thousands of
/// faults allocates once instead of per call. More importantly, the three
/// inner loops of the search are **cone-bounded**:
///
/// * forward implication after a decision re-simulates only the fanout
///   cone of the source that changed (values outside it cannot move);
/// * the D-frontier scan walks the fault site's fanout cone instead of
///   every combinational node (fault effects cannot exist elsewhere);
/// * the X-path check walks a cached fanin closure of the fault site.
///
/// Every bound is exact — the restricted walks visit the same candidates
/// in the same (topological) order as the original whole-circuit walks,
/// so the search makes decision-for-decision identical choices and the
/// returned cubes are bit-identical to the unbounded engine.
pub struct PodemEngine<'c> {
    circuit: &'c Circuit,
    sources: Vec<NodeId>,
    source_pos: Vec<usize>,
    values: Vec<V5>,
    assignment: Vec<Option<bool>>,
    ins: Vec<V5>,
    reach: Vec<bool>,
    /// Combinational fanout cones (forward implication + D-frontier),
    /// lazily built per node and reused across runs.
    cones: Vec<Option<Box<[NodeId]>>>,
    /// Through-anything fanin closures for the X-path check.
    xcones: Vec<Option<Box<[NodeId]>>>,
    backtracks_left: u32,
}

impl<'c> PodemEngine<'c> {
    /// Builds an engine for `circuit`; reuse it across as many
    /// [`podem`](Self::podem) / [`justify`](Self::justify) calls as you
    /// like.
    #[must_use]
    pub fn new(circuit: &'c Circuit) -> Self {
        let sources = TestSet::source_order(circuit);
        let mut source_pos = vec![usize::MAX; circuit.len()];
        for (k, &s) in sources.iter().enumerate() {
            source_pos[s.index()] = k;
        }
        let n = sources.len();
        PodemEngine {
            circuit,
            sources,
            source_pos,
            values: vec![V5::X; circuit.len()],
            assignment: vec![None; n],
            ins: Vec::new(),
            reach: vec![false; circuit.len()],
            cones: vec![None; circuit.len()],
            xcones: vec![None; circuit.len()],
            backtracks_left: 0,
        }
    }

    /// [`podem`] on this engine's circuit, reusing cached cones/buffers.
    pub fn podem(&mut self, fault: &StuckAtFault, max_backtracks: u32) -> PodemOutcome {
        self.run(Goal::Detect(*fault, None), max_backtracks, None)
    }

    /// [`podem_with_metrics`] on this engine.
    pub fn podem_with_metrics(
        &mut self,
        fault: &StuckAtFault,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.run(Goal::Detect(*fault, None), max_backtracks, metrics)
    }

    /// [`podem_with_side_objective`] on this engine.
    pub fn podem_with_side_objective(
        &mut self,
        fault: &StuckAtFault,
        side_node: NodeId,
        side_value: bool,
        max_backtracks: u32,
    ) -> PodemOutcome {
        self.run(
            Goal::Detect(*fault, Some((side_node, side_value))),
            max_backtracks,
            None,
        )
    }

    /// [`justify`] on this engine.
    pub fn justify(&mut self, node: NodeId, value: bool, max_backtracks: u32) -> PodemOutcome {
        self.run(Goal::Justify(node, value), max_backtracks, None)
    }

    /// [`justify_with_metrics`] on this engine.
    pub fn justify_with_metrics(
        &mut self,
        node: NodeId,
        value: bool,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.run(Goal::Justify(node, value), max_backtracks, metrics)
    }

    fn run(
        &mut self,
        goal: Goal,
        max_backtracks: u32,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> PodemOutcome {
        self.assignment.fill(None);
        self.backtracks_left = max_backtracks;
        if let Some(f) = goal.fault() {
            self.ensure_cones(f.node);
        }
        self.forward_full(goal);
        let outcome = match self.search(goal) {
            Tri::Success => PodemOutcome::Test(self.assignment.clone()),
            Tri::Fail => PodemOutcome::Untestable,
            Tri::Abort => PodemOutcome::Aborted,
        };
        if let Some(m) = metrics {
            m.podem_calls.incr();
            m.podem_backtracks
                .add(u64::from(max_backtracks - self.backtracks_left));
            if matches!(outcome, PodemOutcome::Aborted) {
                m.podem_aborts.incr();
            }
        }
        outcome
    }

    /// Caches both cone flavours for a fault site.
    fn ensure_cones(&mut self, node: NodeId) {
        let idx = node.index();
        if self.cones[idx].is_none() {
            self.cones[idx] = Some(self.circuit.fanout_cone(node).into_boxed_slice());
        }
        if self.xcones[idx].is_none() {
            self.xcones[idx] = Some(x_path_cone(self.circuit, node));
        }
    }

    /// Caches the forward-implication cone of a source.
    fn ensure_source_cone(&mut self, node: NodeId) {
        let idx = node.index();
        if self.cones[idx].is_none() {
            self.cones[idx] = Some(self.circuit.fanout_cone(node).into_boxed_slice());
        }
    }

    /// Full forward 5-valued implication — every node, used once per run
    /// to (re)initialise `values` from the empty assignment.
    fn forward_full(&mut self, goal: Goal) {
        let fault = goal.fault();
        for &id in self.circuit.topo_order() {
            let v = eval_node(
                self.circuit,
                id,
                &self.values,
                &mut self.ins,
                &self.assignment,
                &self.source_pos,
                fault,
            );
            self.values[id.index()] = v;
        }
    }

    /// Incremental forward implication after flipping one source: only the
    /// nodes in that source's fanout cone can change, and the cone list is
    /// topologically ordered, so one bounded sweep reaches the same fixed
    /// point as a whole-circuit pass.
    fn forward_cone(&mut self, seed: NodeId, goal: Goal) {
        let fault = goal.fault();
        let Some(cone) = self.cones[seed.index()].as_deref() else {
            // unreachable: callers cache the cone first; fall back safely
            return self.forward_full(goal);
        };
        for &id in cone {
            let v = eval_node(
                self.circuit,
                id,
                &self.values,
                &mut self.ins,
                &self.assignment,
                &self.source_pos,
                fault,
            );
            self.values[id.index()] = v;
        }
    }

    fn success(&self, goal: Goal) -> bool {
        match goal {
            Goal::Justify(node, value) => self.values[node.index()] == V5::from_bool(value),
            Goal::Detect(_, side) => {
                let side_ok = side
                    .is_none_or(|(node, value)| self.values[node.index()].good() == Some(value));
                side_ok
                    && self
                        .circuit
                        .observe_points()
                        .iter()
                        .any(|op| self.values[op.driver.index()].is_fault_effect())
            }
        }
    }

    /// Returns `true` when the current partial assignment can no longer
    /// lead to success.
    fn hopeless(&mut self, goal: Goal) -> bool {
        match goal {
            Goal::Justify(node, value) => {
                let v = self.values[node.index()];
                v.is_binary() && v != V5::from_bool(value)
            }
            Goal::Detect(fault, side) => {
                if let Some((node, value)) = side {
                    // launch value fixed to the wrong polarity: dead branch
                    let v = self.values[node.index()];
                    if v.good().is_some_and(|g| g != value) {
                        return true;
                    }
                }
                let at_site = self.values[fault.node.index()];
                if at_site.is_binary() {
                    return true; // good == stuck: can never activate
                }
                if at_site.is_fault_effect() {
                    // activated: need an X-path from the frontier
                    !self.x_path_exists(fault)
                } else {
                    false // site still X: activation pending
                }
            }
        }
    }

    /// Whether some fault effect can still reach an observation point
    /// through X-valued logic. Walks the fault site's cached fanin closure
    /// instead of the whole circuit — nodes outside it can never be marked
    /// — using (and then clearing) the persistent `reach` scratch.
    fn x_path_exists(&mut self, fault: StuckAtFault) -> bool {
        let cone = self.xcones[fault.node.index()].as_deref().unwrap_or(&[]);
        for &id in cone {
            let v = self.values[id.index()];
            let mark = if v.is_fault_effect() {
                true
            } else if v == V5::X {
                self.circuit
                    .node(id)
                    .fanins()
                    .iter()
                    .any(|&fi| self.reach[fi.index()])
            } else {
                false
            };
            self.reach[id.index()] = mark;
        }
        let hit = self
            .circuit
            .observe_points()
            .iter()
            .any(|op| self.reach[op.driver.index()]);
        for &id in cone {
            self.reach[id.index()] = false;
        }
        hit
    }

    /// The next objective `(node, value)` to pursue, or `None` when stuck.
    fn objective(&self, goal: Goal) -> Option<(NodeId, bool)> {
        match goal {
            Goal::Justify(node, value) => {
                (self.values[node.index()] == V5::X).then_some((node, value))
            }
            Goal::Detect(fault, side) => {
                if let Some((node, value)) = side {
                    if self.values[node.index()] == V5::X {
                        return Some((node, value));
                    }
                }
                let at_site = self.values[fault.node.index()];
                if at_site == V5::X {
                    return Some((fault.node, !fault.stuck_at));
                }
                if !at_site.is_fault_effect() {
                    return None;
                }
                // D-frontier: gate with X output and a fault effect input.
                // Effect-carrying nodes live inside the fault site's
                // combinational fanout cone, and so do their fanout gates;
                // the cone list is a topologically ordered subsequence of
                // `combinational_nodes()`, so the first match is the same
                // gate the whole-circuit scan would pick.
                let cone = self.cones[fault.node.index()].as_deref().unwrap_or(&[]);
                for &id in cone {
                    if self.values[id.index()] != V5::X {
                        continue;
                    }
                    let node = self.circuit.node(id);
                    if !node.kind().is_combinational() {
                        continue;
                    }
                    let has_effect = node
                        .fanins()
                        .iter()
                        .any(|&fi| self.values[fi.index()].is_fault_effect());
                    if !has_effect {
                        continue;
                    }
                    // drive an X side input to the non-controlling value
                    for &fi in node.fanins() {
                        if self.values[fi.index()] == V5::X {
                            let v = match node.kind().controlling_value() {
                                Some(c) => !c,
                                None => false, // XOR class: either value propagates
                            };
                            return Some((fi, v));
                        }
                    }
                }
                None
            }
        }
    }

    /// Maps an objective to a source assignment by walking X inputs
    /// backwards.
    fn backtrace(&self, mut node: NodeId, mut value: bool) -> (usize, bool) {
        loop {
            let pos = self.source_pos[node.index()];
            if pos != usize::MAX {
                return (pos, value);
            }
            let n = self.circuit.node(node);
            let kind = n.kind();
            let pre = value ^ kind.is_inverting();
            // choose an X-valued input and the value to aim for there
            let (next, next_value) = match kind {
                GateKind::Buf | GateKind::Not => (n.fanins()[0], pre),
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let ctrl = kind
                        .controlling_value()
                        .unwrap_or_else(|| unreachable!("and/or class controlling value"));
                    let x_input = n
                        .fanins()
                        .iter()
                        .copied()
                        .find(|&fi| self.values[fi.index()] == V5::X)
                        .unwrap_or_else(|| unreachable!("X output implies an X input"));
                    if pre == ctrl ^ true {
                        // need the non-controlled output: all inputs
                        // non-controlling
                        (x_input, !ctrl)
                    } else {
                        // one controlling input suffices
                        (x_input, ctrl)
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let x_input = n
                        .fanins()
                        .iter()
                        .copied()
                        .find(|&fi| self.values[fi.index()] == V5::X)
                        .unwrap_or_else(|| unreachable!("X output implies an X input"));
                    // parity of the other inputs' known good bits
                    let parity = n
                        .fanins()
                        .iter()
                        .filter(|&&fi| fi != x_input)
                        .map(|&fi| self.values[fi.index()].good().unwrap_or(false))
                        .fold(false, |a, b| a ^ b);
                    (x_input, pre ^ parity)
                }
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {
                    unreachable!("sources are caught above; constants are never X")
                }
            };
            node = next;
            value = next_value;
        }
    }

    fn search(&mut self, goal: Goal) -> Tri {
        if self.success(goal) {
            return Tri::Success;
        }
        if self.hopeless(goal) {
            return Tri::Fail;
        }
        let Some((obj_node, obj_value)) = self.objective(goal) else {
            return Tri::Fail;
        };
        let (src, first) = self.backtrace(obj_node, obj_value);
        let src_node = self.sources[src];
        self.ensure_source_cone(src_node);
        for value in [first, !first] {
            self.assignment[src] = Some(value);
            self.forward_cone(src_node, goal);
            match self.search(goal) {
                Tri::Success => return Tri::Success,
                Tri::Abort => return Tri::Abort,
                Tri::Fail => {
                    if self.backtracks_left == 0 {
                        return Tri::Abort;
                    }
                    self.backtracks_left -= 1;
                }
            }
        }
        self.assignment[src] = None;
        self.forward_cone(src_node, goal);
        Tri::Fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{library, CircuitBuilder};

    fn check_detects(circuit: &Circuit, fault: &StuckAtFault, assignment: &[Option<bool>]) {
        // verify: good vs faulty steady simulation differ at an observation
        // point (don't-cares filled with 0)
        let sources = TestSet::source_order(circuit);
        let assigned = |id: NodeId| {
            sources
                .iter()
                .position(|&s| s == id)
                .and_then(|k| assignment[k])
                .unwrap_or(false)
        };
        let good = circuit.eval_steady(assigned);
        // faulty: recompute with the node forced
        let mut faulty = vec![false; circuit.len()];
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            faulty[id.index()] = if id == fault.node {
                fault.stuck_at
            } else {
                match node.kind() {
                    GateKind::Input | GateKind::Dff => assigned(id),
                    GateKind::Const0 => false,
                    GateKind::Const1 => true,
                    kind => {
                        let ins: Vec<bool> =
                            node.fanins().iter().map(|&fi| faulty[fi.index()]).collect();
                        kind.eval(&ins)
                    }
                }
            };
        }
        let detected = circuit
            .observe_points()
            .iter()
            .any(|op| good[op.driver.index()] != faulty[op.driver.index()]);
        assert!(detected, "assignment does not detect {fault:?}");
    }

    #[test]
    fn detects_all_c17_stuck_faults() {
        let c = library::c17();
        for id in c.node_ids() {
            for stuck in [false, true] {
                let fault = StuckAtFault {
                    node: id,
                    stuck_at: stuck,
                };
                match podem(&c, &fault, 10_000) {
                    PodemOutcome::Test(t) => check_detects(&c, &fault, &t),
                    other => panic!("c17 {fault:?} should be testable, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn detects_all_s27_stuck_faults() {
        let c = library::s27();
        let mut tested = 0;
        for id in c.node_ids() {
            if !c.node(id).kind().is_combinational() {
                continue;
            }
            for stuck in [false, true] {
                let fault = StuckAtFault {
                    node: id,
                    stuck_at: stuck,
                };
                match podem(&c, &fault, 50_000) {
                    PodemOutcome::Test(t) => {
                        check_detects(&c, &fault, &t);
                        tested += 1;
                    }
                    PodemOutcome::Untestable => {}
                    PodemOutcome::Aborted => panic!("s27 {fault:?} aborted"),
                }
            }
        }
        assert!(tested >= 18, "most s27 faults are testable, got {tested}");
    }

    #[test]
    fn untestable_fault_proven() {
        // y = OR(a, NOT(a)) is constant 1: s-a-1 at y is untestable
        let mut b = CircuitBuilder::new("taut");
        b.add("a", GateKind::Input, &[]);
        b.add("na", GateKind::Not, &["a"]);
        b.add("y", GateKind::Or, &["a", "na"]);
        b.mark_output("y");
        let c = b.finish().unwrap();
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: true,
        };
        assert_eq!(podem(&c, &fault, 10_000), PodemOutcome::Untestable);
        // ...but s-a-0 is testable by any vector
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: false,
        };
        assert!(matches!(podem(&c, &fault, 10_000), PodemOutcome::Test(_)));
    }

    #[test]
    fn justify_sets_internal_node() {
        let c = library::s27();
        let g11 = c.find("G11").unwrap();
        for target in [false, true] {
            match justify(&c, g11, target, 10_000) {
                PodemOutcome::Test(t) => {
                    let sources = TestSet::source_order(&c);
                    let vals = c.eval_steady(|id| {
                        sources
                            .iter()
                            .position(|&s| s == id)
                            .and_then(|k| t[k])
                            .unwrap_or(false)
                    });
                    assert_eq!(vals[g11.index()], target);
                }
                other => panic!("justify G11={target} failed: {other:?}"),
            }
        }
    }

    #[test]
    fn justify_constant_conflict_untestable() {
        let mut b = CircuitBuilder::new("const");
        b.add("a", GateKind::Input, &[]);
        b.add("z", GateKind::And, &["a", "zero"]);
        b.add("zero", GateKind::Const0, &[]);
        b.mark_output("z");
        let c = b.finish().unwrap();
        let z = c.find("z").unwrap();
        assert_eq!(justify(&c, z, true, 1000), PodemOutcome::Untestable);
        assert!(matches!(justify(&c, z, false, 1000), PodemOutcome::Test(_)));
    }

    #[test]
    fn dont_cares_remain() {
        // y = BUF(a); input b is irrelevant and must stay X
        let mut b = CircuitBuilder::new("dc");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("y", GateKind::Buf, &["a"]);
        b.add("z", GateKind::Buf, &["b"]);
        b.mark_output("y");
        b.mark_output("z");
        let c = b.finish().unwrap();
        let fault = StuckAtFault {
            node: c.find("y").unwrap(),
            stuck_at: false,
        };
        let t = podem(&c, &fault, 100).test().unwrap();
        let sources = TestSet::source_order(&c);
        let b_pos = sources
            .iter()
            .position(|&s| s == c.find("b").unwrap())
            .unwrap();
        assert_eq!(t[b_pos], None, "b is a don't care");
    }
}
