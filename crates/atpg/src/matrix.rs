use fastmon_netlist::Circuit;

use crate::{FaultCones, GradeScratch, TestSet, TransitionFault, WordSim};

/// The exact fault × pattern detection matrix of a test set, stored as one
/// bitset row (over patterns) per fault.
///
/// Built once from the bit-parallel simulator, it answers coverage queries
/// and drives static compaction. Pattern-subset selections (compaction,
/// budget capping) re-pack the existing rows via
/// [`DetectionMatrix::select_patterns`] instead of re-simulating.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{generate, AtpgConfig, DetectionMatrix};
/// use fastmon_netlist::library;
///
/// let circuit = library::c17();
/// let result = generate(&circuit, &AtpgConfig::default());
/// let faults = fastmon_atpg::transition_faults(&circuit);
/// let matrix = DetectionMatrix::build(&circuit, &result.test_set, &faults);
/// assert!(matrix.coverage() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct DetectionMatrix {
    rows: Vec<Vec<u64>>,
    num_patterns: usize,
}

impl DetectionMatrix {
    /// Grades every fault against every pattern of `set` (single-threaded,
    /// self-contained). Convenience wrapper over
    /// [`DetectionMatrix::build_with`] that builds its own cone arena.
    #[must_use]
    pub fn build(circuit: &Circuit, set: &TestSet, faults: &[TransitionFault]) -> Self {
        let cones = FaultCones::build(circuit, faults);
        DetectionMatrix::build_with(circuit, set, faults, &cones, 1, None)
    }

    /// Grades every fault against every pattern of `set`, fault-parallel
    /// over `threads` workers (`0` = all available cores).
    ///
    /// Each worker owns a pre-sized [`GradeScratch`] and grades disjoint
    /// faults into disjoint rows, so the result is **bit-identical for any
    /// thread count**. Grading counters land in `metrics` when given.
    #[must_use]
    pub fn build_with(
        circuit: &Circuit,
        set: &TestSet,
        faults: &[TransitionFault],
        cones: &FaultCones,
        threads: usize,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> Self {
        match Self::try_build_with(circuit, set, faults, cones, threads, metrics) {
            Ok(matrix) => matrix,
            Err(e) => panic!("detection-matrix build failed: {e}"),
        }
    }

    /// Panic-isolating variant of [`DetectionMatrix::build_with`]: a
    /// grading worker panic (including an injected `atpg_grade` failpoint)
    /// is contained and surfaced as a typed [`crate::AtpgError`].
    ///
    /// # Errors
    ///
    /// [`crate::AtpgError::WorkerPanicked`] when a grading worker panics.
    pub fn try_build_with(
        circuit: &Circuit,
        set: &TestSet,
        faults: &[TransitionFault],
        cones: &FaultCones,
        threads: usize,
        metrics: Option<&fastmon_obs::AtpgMetrics>,
    ) -> Result<Self, crate::AtpgError> {
        let ws = WordSim::new(circuit, set);
        let blocks = ws.num_blocks();
        let threads = effective_threads(threads).min(faults.len().max(1));
        let rows = fastmon_sim::try_parallel_map_with(
            faults.len(),
            threads,
            || GradeScratch::for_cones(cones),
            |scratch, f| {
                // Grading workers have no per-item error channel; both
                // failpoint actions surface as a contained panic.
                if let Err(injected) = fastmon_obs::failpoints::fire("atpg_grade") {
                    panic!("{injected}");
                }
                let row: Vec<u64> = (0..blocks)
                    .map(|b| ws.detect_word_cached(&faults[f], b, cones, scratch))
                    .collect();
                if let Some(m) = metrics {
                    scratch.flush_into(m);
                }
                row
            },
        )
        .map_err(|panic| crate::AtpgError::WorkerPanicked {
            phase: "atpg_grade",
            message: panic.message(),
        })?;
        if let Some(m) = metrics {
            m.matrix_builds.incr();
        }
        Ok(DetectionMatrix {
            rows,
            num_patterns: set.len(),
        })
    }

    /// Number of faults (rows).
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.rows.len()
    }

    /// Number of patterns (columns).
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Whether pattern `p` detects fault `f`.
    #[must_use]
    pub fn detects(&self, f: usize, p: usize) -> bool {
        self.rows[f][p / 64] >> (p % 64) & 1 == 1
    }

    /// The packed detection words of fault `f` (64 patterns per word).
    pub(crate) fn row(&self, f: usize) -> &[u64] {
        &self.rows[f]
    }

    /// Whether fault `f` is detected by any pattern.
    #[must_use]
    pub fn fault_detected(&self, f: usize) -> bool {
        self.rows[f].iter().any(|&w| w != 0)
    }

    /// Fraction of faults detected by the full set.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let detected = (0..self.rows.len())
            .filter(|&f| self.fault_detected(f))
            .count();
        detected as f64 / self.rows.len() as f64
    }

    /// The patterns detecting fault `f`.
    #[must_use]
    pub fn detecting_patterns(&self, f: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (b, &w) in self.rows[f].iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(b * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// The matrix restricted to the pattern subset `keep` (ascending
    /// pattern indices): row bits are re-packed so column `j` of the result
    /// is column `keep[j]` of `self`.
    ///
    /// Detection is a pure function of the pattern, so this equals a full
    /// [`DetectionMatrix::build`] over the retained set — without
    /// re-simulating a single pattern. Compaction and budget capping both
    /// reduce to this.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of range.
    #[must_use]
    pub fn select_patterns(&self, keep: &[usize]) -> Self {
        assert!(
            keep.iter().all(|&p| p < self.num_patterns),
            "pattern index out of range"
        );
        let words = keep.len().div_ceil(64).max(1);
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut packed = vec![0u64; words];
                for (j, &p) in keep.iter().enumerate() {
                    packed[j / 64] |= (row[p / 64] >> (p % 64) & 1) << (j % 64);
                }
                packed
            })
            .collect();
        DetectionMatrix {
            rows,
            num_patterns: keep.len(),
        }
    }

    /// Static compaction by reverse-order fault dropping: walk the patterns
    /// from last to first, keep a pattern only if it detects a fault no
    /// later-kept pattern detects. Returns the kept indices in ascending
    /// order. Coverage is exactly preserved.
    ///
    /// Implemented with word-level scans: a fault is dropped exactly when
    /// its *last* detecting pattern is visited, so the kept set is the set
    /// of last-detecting patterns — one highest-set-bit scan per row
    /// instead of a per-pattern, per-fault bit probe.
    #[must_use]
    pub fn reverse_order_compaction(&self) -> Vec<usize> {
        let mut kept_mask = vec![0u64; self.num_patterns.div_ceil(64).max(1)];
        for row in &self.rows {
            if let Some((b, &w)) = row.iter().enumerate().rev().find(|(_, &w)| w != 0) {
                let last = b * 64 + (63 - w.leading_zeros() as usize);
                kept_mask[last / 64] |= 1 << (last % 64);
            }
        }
        let mut kept = Vec::new();
        for (b, &w) in kept_mask.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                kept.push(b * 64 + bit);
                w &= w - 1;
            }
        }
        kept
    }
}

/// Resolves a worker-thread count (`0` = all available cores).
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{transition_faults, TestPattern};
    use fastmon_netlist::library;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_set(circuit: &Circuit, n: usize, seed: u64) -> TestSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut set = TestSet::new(circuit);
        let w = set.sources().len();
        for _ in 0..n {
            set.push(TestPattern::new(
                (0..w).map(|_| rng.gen()).collect(),
                (0..w).map(|_| rng.gen()).collect(),
            ));
        }
        set
    }

    /// Reference implementation of reverse-order compaction: the literal
    /// per-pattern, per-fault bit probe the word-level version replaced.
    fn reverse_order_compaction_bitwise(m: &DetectionMatrix) -> Vec<usize> {
        let mut remaining: Vec<bool> = (0..m.num_faults()).map(|f| m.fault_detected(f)).collect();
        let mut kept = Vec::new();
        for p in (0..m.num_patterns()).rev() {
            let mut useful = false;
            for (f, rem) in remaining.iter_mut().enumerate() {
                if *rem && m.detects(f, p) {
                    useful = true;
                    *rem = false;
                }
            }
            if useful {
                kept.push(p);
            }
        }
        kept.reverse();
        kept
    }

    #[test]
    fn compaction_preserves_coverage() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let set = random_set(&c, 200, 1);
        let m = DetectionMatrix::build(&c, &set, &faults);
        let before = m.coverage();
        let kept = m.reverse_order_compaction();
        assert!(kept.len() < set.len(), "random sets compact well");
        let mut compacted = set.clone();
        compacted.retain_indices(&kept);
        let m2 = DetectionMatrix::build(&c, &compacted, &faults);
        assert!((m2.coverage() - before).abs() < 1e-12);
    }

    #[test]
    fn word_level_compaction_matches_bitwise_reference() {
        for seed in [1u64, 2, 3] {
            for circuit in [library::c17(), library::s27()] {
                let faults = transition_faults(&circuit);
                for n in [1usize, 63, 64, 65, 200] {
                    let set = random_set(&circuit, n, seed);
                    let m = DetectionMatrix::build(&circuit, &set, &faults);
                    assert_eq!(
                        m.reverse_order_compaction(),
                        reverse_order_compaction_bitwise(&m),
                        "n={n} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let set = random_set(&c, 130, 4);
        let cones = FaultCones::build(&c, &faults);
        let reference = DetectionMatrix::build_with(&c, &set, &faults, &cones, 1, None);
        for threads in [2usize, 8] {
            let par = DetectionMatrix::build_with(&c, &set, &faults, &cones, threads, None);
            assert_eq!(par.rows, reference.rows, "threads={threads}");
            assert_eq!(par.num_patterns, reference.num_patterns);
        }
    }

    #[test]
    fn select_patterns_equals_rebuild() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let set = random_set(&c, 150, 6);
        let m = DetectionMatrix::build(&c, &set, &faults);
        for keep in [
            vec![],
            vec![0],
            vec![149],
            (0..150).step_by(3).collect::<Vec<_>>(),
            m.reverse_order_compaction(),
        ] {
            let selected = m.select_patterns(&keep);
            let mut subset = set.clone();
            subset.retain_indices(&keep);
            let rebuilt = DetectionMatrix::build(&c, &subset, &faults);
            assert_eq!(selected.rows, rebuilt.rows, "keep={keep:?}");
            assert_eq!(selected.num_patterns(), rebuilt.num_patterns());
        }
    }

    #[test]
    fn detecting_patterns_match_matrix() {
        let c = library::c17();
        let faults = transition_faults(&c);
        let set = random_set(&c, 70, 2);
        let m = DetectionMatrix::build(&c, &set, &faults);
        for f in 0..m.num_faults() {
            let pats = m.detecting_patterns(f);
            for &p in &pats {
                assert!(m.detects(f, p));
            }
            let count = (0..m.num_patterns()).filter(|&p| m.detects(f, p)).count();
            assert_eq!(count, pats.len());
        }
    }

    #[test]
    fn empty_set_zero_coverage() {
        let c = library::c17();
        let faults = transition_faults(&c);
        let set = TestSet::new(&c);
        let m = DetectionMatrix::build(&c, &set, &faults);
        assert_eq!(m.coverage(), 0.0);
        assert!(m.reverse_order_compaction().is_empty());
    }
}
