use fastmon_netlist::Circuit;

use crate::{TestSet, TransitionFault, WordSim};

/// The exact fault × pattern detection matrix of a test set, stored as one
/// bitset row (over patterns) per fault.
///
/// Built once from the bit-parallel simulator, it answers coverage queries
/// and drives static compaction.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{generate, AtpgConfig, DetectionMatrix};
/// use fastmon_netlist::library;
///
/// let circuit = library::c17();
/// let result = generate(&circuit, &AtpgConfig::default());
/// let faults = fastmon_atpg::transition_faults(&circuit);
/// let matrix = DetectionMatrix::build(&circuit, &result.test_set, &faults);
/// assert!(matrix.coverage() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct DetectionMatrix {
    rows: Vec<Vec<u64>>,
    num_patterns: usize,
}

impl DetectionMatrix {
    /// Grades every fault against every pattern of `set`.
    #[must_use]
    pub fn build(circuit: &Circuit, set: &TestSet, faults: &[TransitionFault]) -> Self {
        let ws = WordSim::new(circuit, set);
        let rows = faults
            .iter()
            .map(|f| (0..ws.num_blocks()).map(|b| ws.detect_word(f, b)).collect())
            .collect();
        DetectionMatrix {
            rows,
            num_patterns: set.len(),
        }
    }

    /// Number of faults (rows).
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.rows.len()
    }

    /// Number of patterns (columns).
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Whether pattern `p` detects fault `f`.
    #[must_use]
    pub fn detects(&self, f: usize, p: usize) -> bool {
        self.rows[f][p / 64] >> (p % 64) & 1 == 1
    }

    /// Whether fault `f` is detected by any pattern.
    #[must_use]
    pub fn fault_detected(&self, f: usize) -> bool {
        self.rows[f].iter().any(|&w| w != 0)
    }

    /// Fraction of faults detected by the full set.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let detected = (0..self.rows.len())
            .filter(|&f| self.fault_detected(f))
            .count();
        detected as f64 / self.rows.len() as f64
    }

    /// The patterns detecting fault `f`.
    #[must_use]
    pub fn detecting_patterns(&self, f: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (b, &w) in self.rows[f].iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(b * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Static compaction by reverse-order fault dropping: walk the patterns
    /// from last to first, keep a pattern only if it detects a fault no
    /// later-kept pattern detects. Returns the kept indices in ascending
    /// order. Coverage is exactly preserved.
    #[must_use]
    pub fn reverse_order_compaction(&self) -> Vec<usize> {
        let mut remaining: Vec<bool> = (0..self.num_faults())
            .map(|f| self.fault_detected(f))
            .collect();
        let mut kept = Vec::new();
        for p in (0..self.num_patterns).rev() {
            let mut useful = false;
            for (f, rem) in remaining.iter_mut().enumerate() {
                if *rem && self.detects(f, p) {
                    useful = true;
                    *rem = false;
                }
            }
            if useful {
                kept.push(p);
            }
        }
        kept.reverse();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{transition_faults, TestPattern};
    use fastmon_netlist::library;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_set(circuit: &Circuit, n: usize, seed: u64) -> TestSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut set = TestSet::new(circuit);
        let w = set.sources().len();
        for _ in 0..n {
            set.push(TestPattern::new(
                (0..w).map(|_| rng.gen()).collect(),
                (0..w).map(|_| rng.gen()).collect(),
            ));
        }
        set
    }

    #[test]
    fn compaction_preserves_coverage() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let set = random_set(&c, 200, 1);
        let m = DetectionMatrix::build(&c, &set, &faults);
        let before = m.coverage();
        let kept = m.reverse_order_compaction();
        assert!(kept.len() < set.len(), "random sets compact well");
        let mut compacted = set.clone();
        compacted.retain_indices(&kept);
        let m2 = DetectionMatrix::build(&c, &compacted, &faults);
        assert!((m2.coverage() - before).abs() < 1e-12);
    }

    #[test]
    fn detecting_patterns_match_matrix() {
        let c = library::c17();
        let faults = transition_faults(&c);
        let set = random_set(&c, 70, 2);
        let m = DetectionMatrix::build(&c, &set, &faults);
        for f in 0..m.num_faults() {
            let pats = m.detecting_patterns(f);
            for &p in &pats {
                assert!(m.detects(f, p));
            }
            let count = (0..m.num_patterns()).filter(|&p| m.detects(f, p)).count();
            assert_eq!(count, pats.len());
        }
    }

    #[test]
    fn empty_set_zero_coverage() {
        let c = library::c17();
        let faults = transition_faults(&c);
        let set = TestSet::new(&c);
        let m = DetectionMatrix::build(&c, &set, &faults);
        assert_eq!(m.coverage(), 0.0);
        assert!(m.reverse_order_compaction().is_empty());
    }
}
