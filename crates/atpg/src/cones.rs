//! Precomputed fanout-cone arena for bit-parallel fault grading.
//!
//! [`WordSim::detect_word`](crate::WordSim::detect_word) walks the fanout
//! cone of the fault site to propagate the faulty machine. Computing that
//! cone with [`Circuit::fanout_cone`] costs a fresh traversal plus a
//! circuit-sized position array *per fault per 64-pattern block* — by far
//! the dominant cost of the ATPG flow on large circuits.
//!
//! [`FaultCones`] hoists that work out of the hot loop: every distinct
//! fault site's cone is levelized **once** into a CSR-style arena whose
//! entries carry pre-resolved fanin references (either a cone-local
//! position or a global node index), plus the cone's observation taps.
//! Grading then replays a cone with nothing but indexed loads over the
//! arena and one reusable [`GradeScratch`] buffer — zero heap allocations
//! in steady state, shared across pattern blocks, matrix rebuilds and the
//! random/deterministic grading passes alike.

use fastmon_netlist::{Circuit, GateKind};

use crate::TransitionFault;

/// Tag bit marking a fanin reference as a cone-local position (the faulty
/// word lives in scratch) rather than a global node index (the fault-free
/// capture word is used).
const LOCAL: u32 = 1 << 31;

/// A CSR-style arena of levelized fanout cones, one per distinct fault
/// site, shared by every grading pass of a `generate` call.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{transition_faults, FaultCones, GradeScratch};
/// use fastmon_netlist::library;
///
/// let circuit = library::c17();
/// let faults = transition_faults(&circuit);
/// let cones = FaultCones::build(&circuit, &faults);
/// assert_eq!(cones.num_cones(), faults.len() / 2); // two faults per gate
/// let mut scratch = GradeScratch::for_cones(&cones);
/// assert!(scratch.capacity() >= cones.max_cone_len());
/// ```
#[derive(Debug, Clone)]
pub struct FaultCones {
    /// global node index → cone id (`u32::MAX` when the node is not a
    /// cached fault site)
    cone_of_gate: Vec<u32>,
    /// per cone: `[start, end)` entry range (`num_cones + 1` offsets)
    cone_offsets: Vec<u32>,
    /// per entry: global node index (entry 0 of a cone is the fault site)
    nodes: Vec<u32>,
    /// per entry: gate kind
    kinds: Vec<GateKind>,
    /// per entry: `[start, end)` range into `fanins` (`entries + 1`
    /// offsets; seed entries have an empty range)
    fanin_offsets: Vec<u32>,
    /// flattened fanin references, tagged with [`LOCAL`]
    fanins: Vec<u32>,
    /// per cone: `[start, end)` range into `taps`
    tap_offsets: Vec<u32>,
    /// observation taps: `(global driver node index, cone-local position)`
    taps: Vec<(u32, u32)>,
    /// longest cone in the arena (scratch pre-sizing)
    max_cone_len: usize,
}

impl FaultCones {
    /// Levelizes the fanout cone of every distinct fault site of `faults`
    /// into one shared arena. One [`Circuit::fanout_cone`] traversal per
    /// site — callers grading `F` faults over `B` blocks save `F·B − F/2`
    /// traversals against the uncached path.
    #[must_use]
    pub fn build(circuit: &Circuit, faults: &[TransitionFault]) -> Self {
        let mut cones = FaultCones {
            cone_of_gate: vec![u32::MAX; circuit.len()],
            cone_offsets: vec![0],
            nodes: Vec::new(),
            kinds: Vec::new(),
            fanin_offsets: vec![0],
            fanins: Vec::new(),
            tap_offsets: vec![0],
            taps: Vec::new(),
            max_cone_len: 0,
        };
        // one reusable position map, reset per cone via its node list
        let mut pos = vec![u32::MAX; circuit.len()];
        let mut marks = fastmon_netlist::ConeMarks::new();
        let mut cone: Vec<fastmon_netlist::NodeId> = Vec::new();
        for fault in faults {
            let g = fault.gate.index();
            if cones.cone_of_gate[g] != u32::MAX {
                continue; // rising/falling share the site's cone
            }
            circuit.fanout_cone_into(fault.gate, &mut marks, &mut cone);
            #[allow(clippy::cast_possible_truncation)]
            let id = (cones.cone_offsets.len() - 1) as u32;
            cones.cone_of_gate[g] = id;
            cones.max_cone_len = cones.max_cone_len.max(cone.len());
            for (i, &node) in cone.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                {
                    pos[node.index()] = i as u32;
                }
                #[allow(clippy::cast_possible_truncation)]
                cones.nodes.push(node.index() as u32);
                cones.kinds.push(circuit.node(node).kind());
                if i > 0 {
                    for &fi in circuit.node(node).fanins() {
                        let p = pos[fi.index()];
                        // the cone is in topological order, so an in-cone
                        // fanin always precedes its fanout
                        #[allow(clippy::cast_possible_truncation)]
                        cones.fanins.push(if p == u32::MAX {
                            fi.index() as u32
                        } else {
                            LOCAL | p
                        });
                    }
                }
                #[allow(clippy::cast_possible_truncation)]
                cones.fanin_offsets.push(cones.fanins.len() as u32);
            }
            for op in circuit.observe_points() {
                let p = pos[op.driver.index()];
                if p != u32::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    cones.taps.push((op.driver.index() as u32, p));
                }
            }
            for &node in &cone {
                pos[node.index()] = u32::MAX;
            }
            #[allow(clippy::cast_possible_truncation)]
            cones.cone_offsets.push(cones.nodes.len() as u32);
            #[allow(clippy::cast_possible_truncation)]
            cones.tap_offsets.push(cones.taps.len() as u32);
        }
        cones
    }

    /// Number of cached cones (distinct fault sites).
    #[must_use]
    pub fn num_cones(&self) -> usize {
        self.cone_offsets.len() - 1
    }

    /// Length of the longest cached cone.
    #[must_use]
    pub fn max_cone_len(&self) -> usize {
        self.max_cone_len
    }

    /// Total cone entries across the arena.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.nodes.len()
    }

    /// The cone id of a fault site, if cached.
    #[must_use]
    pub(crate) fn cone_id(&self, gate_index: usize) -> Option<usize> {
        let id = self.cone_of_gate[gate_index];
        (id != u32::MAX).then_some(id as usize)
    }

    /// Propagates a stuck-at fault word through cached cone `id` over the
    /// fault-free capture words `cw`, returning the XOR-at-taps detection
    /// word. `scratch` supplies the faulty-word buffer; `forced` is the
    /// stuck value replicated across the word.
    pub(crate) fn propagate(
        &self,
        id: usize,
        forced: u64,
        cw: &[u64],
        scratch: &mut GradeScratch,
    ) -> u64 {
        let lo = self.cone_offsets[id] as usize;
        let hi = self.cone_offsets[id + 1] as usize;
        let len = hi - lo;
        scratch.ensure(len);
        scratch.bfs_avoided += 1;
        scratch.nodes_evaluated += (len - 1) as u64;
        let faulty = &mut scratch.faulty[..len];
        faulty[0] = forced;
        for e in 1..len {
            let entry = lo + e;
            let fl = self.fanin_offsets[entry] as usize;
            let fh = self.fanin_offsets[entry + 1] as usize;
            let word = {
                let prefix: &[u64] = faulty;
                crate::wordsim::eval_word(
                    self.kinds[entry],
                    self.fanins[fl..fh].iter().map(|&t| {
                        if t & LOCAL != 0 {
                            prefix[(t & !LOCAL) as usize]
                        } else {
                            cw[t as usize]
                        }
                    }),
                )
            };
            faulty[e] = word;
        }
        let mut detected = 0u64;
        let tl = self.tap_offsets[id] as usize;
        let th = self.tap_offsets[id + 1] as usize;
        for &(driver, p) in &self.taps[tl..th] {
            detected |= cw[driver as usize] ^ faulty[p as usize];
        }
        detected
    }
}

/// A reusable faulty-word buffer plus local grading tallies, one per
/// worker thread.
///
/// Pre-sized by [`GradeScratch::for_cones`] to the arena's longest cone,
/// every subsequent grade is allocation-free; the tallies are flushed into
/// a scoped [`fastmon_obs::AtpgMetrics`] in batches so the hot loop never
/// touches an atomic per node.
#[derive(Debug, Default)]
pub struct GradeScratch {
    faulty: Vec<u64>,
    /// Grades that reused a cached cone (each saving one cone BFS).
    pub bfs_avoided: u64,
    /// Cone gate words evaluated.
    pub nodes_evaluated: u64,
    /// Buffer (re)allocations: construction plus grows.
    pub allocs: u64,
    /// Allocation-free grades served from the existing buffer.
    pub reuses: u64,
}

impl GradeScratch {
    /// An empty scratch; the first grade allocates.
    #[must_use]
    pub fn new() -> Self {
        GradeScratch::default()
    }

    /// A scratch pre-sized for every cone of `cones` (one allocation now,
    /// zero later).
    #[must_use]
    pub fn for_cones(cones: &FaultCones) -> Self {
        let mut s = GradeScratch::default();
        if cones.max_cone_len() > 0 {
            s.faulty = vec![0u64; cones.max_cone_len()];
            s.allocs = 1;
        }
        s
    }

    /// Current buffer capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.faulty.len()
    }

    /// Makes the buffer at least `len` words long, counting whether the
    /// call was served allocation-free.
    fn ensure(&mut self, len: usize) {
        if self.faulty.len() < len {
            self.faulty.resize(len, 0);
            self.allocs += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Flushes and zeroes the local tallies into `metrics`.
    pub fn flush_into(&mut self, metrics: &fastmon_obs::AtpgMetrics) {
        if self.bfs_avoided > 0 {
            metrics.cone_bfs_avoided.add(self.bfs_avoided);
        }
        if self.nodes_evaluated > 0 {
            metrics.cone_nodes_evaluated.add(self.nodes_evaluated);
        }
        if self.allocs > 0 {
            metrics.grade_scratch_allocs.add(self.allocs);
        }
        if self.reuses > 0 {
            metrics.grade_scratch_reuses.add(self.reuses);
        }
        self.bfs_avoided = 0;
        self.nodes_evaluated = 0;
        self.allocs = 0;
        self.reuses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition_faults;
    use fastmon_netlist::library;

    #[test]
    fn arena_caches_one_cone_per_gate() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let cones = FaultCones::build(&c, &faults);
        assert_eq!(cones.num_cones(), faults.len() / 2);
        for f in &faults {
            let id = cones.cone_id(f.gate.index()).expect("site cached");
            let lo = cones.cone_offsets[id] as usize;
            assert_eq!(cones.nodes[lo] as usize, f.gate.index(), "seed first");
        }
    }

    #[test]
    fn arena_matches_circuit_cones() {
        let c = library::c17();
        let faults = transition_faults(&c);
        let cones = FaultCones::build(&c, &faults);
        for f in &faults {
            let reference = c.fanout_cone(f.gate);
            let id = cones.cone_id(f.gate.index()).unwrap();
            let lo = cones.cone_offsets[id] as usize;
            let hi = cones.cone_offsets[id + 1] as usize;
            let cached: Vec<usize> = cones.nodes[lo..hi].iter().map(|&n| n as usize).collect();
            let expect: Vec<usize> = reference.iter().map(|n| n.index()).collect();
            assert_eq!(cached, expect, "{f}");
        }
    }

    #[test]
    fn scratch_counts_allocs_and_reuses() {
        let c = library::s27();
        let faults = transition_faults(&c);
        let cones = FaultCones::build(&c, &faults);
        let mut scratch = GradeScratch::for_cones(&cones);
        assert_eq!(scratch.allocs, 1);
        scratch.ensure(1);
        scratch.ensure(cones.max_cone_len());
        assert_eq!(scratch.reuses, 2);
        assert_eq!(scratch.allocs, 1, "pre-sized buffer never regrows");
    }

    #[test]
    fn empty_fault_list_builds_empty_arena() {
        let c = library::c17();
        let cones = FaultCones::build(&c, &[]);
        assert_eq!(cones.num_cones(), 0);
        assert_eq!(cones.max_cone_len(), 0);
        let s = GradeScratch::for_cones(&cones);
        assert_eq!(s.allocs, 0);
    }
}
