use std::fmt;

use fastmon_netlist::{Circuit, NodeId};

/// A transition fault at a gate output: the gate is too slow to rise
/// (`rising = true`) or too slow to fall.
///
/// Detection (enhanced-scan, zero-delay model): the launch vector sets the
/// gate to the initial value, the capture vector sets it to the final value
/// *and* propagates a stuck-at-initial-value fault effect to an observation
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// The gate whose output transition is slow.
    pub gate: NodeId,
    /// `true` for slow-to-rise (0→1 transition), `false` for slow-to-fall.
    pub rising: bool,
}

impl TransitionFault {
    /// The value the gate must take in the launch vector (the initial
    /// value of the transition).
    #[must_use]
    pub fn initial_value(&self) -> bool {
        !self.rising
    }

    /// The value the gate must take in the capture vector.
    #[must_use]
    pub fn final_value(&self) -> bool {
        self.rising
    }
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}",
            if self.rising { "STR" } else { "STF" },
            self.gate
        )
    }
}

/// The full transition-fault population: two faults per combinational gate
/// output.
#[must_use]
pub fn transition_faults(circuit: &Circuit) -> Vec<TransitionFault> {
    let mut out = Vec::with_capacity(2 * circuit.len());
    for gate in circuit.combinational_nodes() {
        out.push(TransitionFault { gate, rising: true });
        out.push(TransitionFault {
            gate,
            rising: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;

    #[test]
    fn population_size() {
        let c = library::c17();
        assert_eq!(transition_faults(&c).len(), 12);
        let c = library::s27();
        assert_eq!(transition_faults(&c).len(), 20);
    }

    #[test]
    fn values() {
        let c = library::c17();
        let f = TransitionFault {
            gate: c.find("N10").unwrap(),
            rising: true,
        };
        assert!(!f.initial_value());
        assert!(f.final_value());
        assert!(f.to_string().starts_with("STR-"));
    }
}
