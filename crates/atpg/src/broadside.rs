//! Launch-on-capture (broadside) transition testing via two-time-frame
//! expansion.
//!
//! The default `fastmon-atpg` flow assumes *enhanced scan*: launch and
//! capture vectors are independent. Real scan chains usually support only
//! **broadside** application — the capture vector is the circuit's own next
//! state, `v2 = (PI, next_state(v1))`, with primary inputs held constant.
//! This module provides:
//!
//! * [`TimeFrameExpansion`] — a combinational two-frame model of a
//!   full-scan circuit (frame-2 state inputs are wired to the frame-1
//!   next-state functions),
//! * [`generate_broadside`] — transition-fault ATPG over that model:
//!   random reachable patterns plus PODEM with a launch side-objective,
//!   producing [`TestSet`]s whose vector pairs are *functionally
//!   consistent*.
//!
//! Patterns from this module plug into the rest of the toolkit unchanged —
//! they are ordinary two-vector tests that happen to satisfy the broadside
//! constraint.
//!
//! # Example
//!
//! ```
//! use fastmon_atpg::broadside::{generate_broadside, is_broadside_consistent};
//! use fastmon_atpg::AtpgConfig;
//! use fastmon_netlist::library;
//!
//! let circuit = library::s27();
//! let result = generate_broadside(&circuit, &AtpgConfig::default());
//! for pattern in result.test_set.iter() {
//!     assert!(is_broadside_consistent(&circuit, &result.test_set, pattern));
//! }
//! ```

use fastmon_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::generate_mod::greedy_pattern_selection;
use crate::matrix::effective_threads;
use crate::podem::PodemEngine;
use crate::{
    transition_faults, AtpgConfig, AtpgResult, DetectionMatrix, FaultCones, GradeScratch,
    PodemOutcome, StuckAtFault, TestPattern, TestSet, WordSim,
};

/// A combinational two-time-frame model of a full-scan circuit.
///
/// Frame 1 computes the launch cycle from `(PI, state)`; frame 2 re-uses
/// the same primary inputs and takes its state from frame 1's next-state
/// functions. The expanded circuit's flip-flops capture frame-2 next-state
/// values, and its primary outputs are the frame-2 outputs — so
/// [`Circuit::observe_points`] of the expansion are exactly the broadside
/// capture points.
#[derive(Debug, Clone)]
pub struct TimeFrameExpansion {
    expanded: Circuit,
    /// original node id → expanded id of its frame-1 copy
    frame1: Vec<NodeId>,
    /// original node id → expanded id of its frame-2 copy
    frame2: Vec<NodeId>,
}

impl TimeFrameExpansion {
    /// Expands `circuit` into two combinational frames.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is malformed (cannot happen for circuits built
    /// by this workspace's constructors).
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        let mut b = CircuitBuilder::new(format!("{}__2frames", circuit.name()));
        let f1 = |name: &str| format!("f1_{name}");
        let f2 = |name: &str| format!("f2_{name}");

        // shared primary inputs (broadside holds PIs constant)
        for &pi in circuit.inputs() {
            b.add(circuit.node(pi).name(), GateKind::Input, &[]);
        }
        // frame-1 state: free pseudo-inputs (scanned in)
        for &ff in circuit.flip_flops() {
            b.add(f1(circuit.node(ff).name()), GateKind::Input, &[]);
        }

        // frame-1 combinational copy
        for (_, node) in circuit.iter() {
            match node.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    let fanins: Vec<String> = node
                        .fanins()
                        .iter()
                        .map(|&fi| self::frame_net(circuit, fi, &f1))
                        .collect();
                    let refs: Vec<&str> = fanins.iter().map(String::as_str).collect();
                    b.add(f1(node.name()), kind, &refs);
                }
            }
        }

        // frame-2 copy: state inputs = frame-1 next-state nets
        for (_, node) in circuit.iter() {
            match node.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    let fanins: Vec<String> = node
                        .fanins()
                        .iter()
                        .map(|&fi| {
                            let fanin_node = circuit.node(fi);
                            match fanin_node.kind() {
                                GateKind::Input => fanin_node.name().to_owned(),
                                GateKind::Dff => {
                                    // frame-2 state = frame-1 D input net
                                    let d = fanin_node.fanins()[0];
                                    self::frame_net(circuit, d, &f1)
                                }
                                _ => f2(fanin_node.name()),
                            }
                        })
                        .collect();
                    let refs: Vec<&str> = fanins.iter().map(String::as_str).collect();
                    b.add(f2(node.name()), kind, &refs);
                }
            }
        }

        // frame-2 capture points
        for &ff in circuit.flip_flops() {
            let d_node = circuit.node(ff).fanins()[0];
            let d_net = self::frame_net(circuit, d_node, &f2);
            b.add(
                f2(circuit.node(ff).name()),
                GateKind::Dff,
                &[d_net.as_str()],
            );
        }
        for &po in circuit.outputs() {
            b.mark_output(self::frame_net(circuit, po, &f2));
        }

        let expanded = b
            .finish()
            .unwrap_or_else(|e| unreachable!("time-frame expansion is well formed: {e}"));
        let find = |name: String| {
            expanded
                .find(&name)
                .unwrap_or_else(|| unreachable!("time-frame copy `{name}` exists"))
        };
        let mut frame1 = Vec::with_capacity(circuit.len());
        let mut frame2 = Vec::with_capacity(circuit.len());
        for (_, node) in circuit.iter() {
            match node.kind() {
                GateKind::Input => {
                    let shared = find(node.name().to_owned());
                    frame1.push(shared);
                    frame2.push(shared);
                }
                GateKind::Dff => {
                    frame1.push(find(f1(node.name())));
                    frame2.push(find(f2(node.name())));
                }
                _ => {
                    frame1.push(find(f1(node.name())));
                    frame2.push(find(f2(node.name())));
                }
            }
        }
        TimeFrameExpansion {
            expanded,
            frame1,
            frame2,
        }
    }

    /// The expanded combinational circuit.
    #[must_use]
    pub fn expanded(&self) -> &Circuit {
        &self.expanded
    }

    /// The frame-1 copy of an original node.
    #[must_use]
    pub fn in_frame1(&self, id: NodeId) -> NodeId {
        self.frame1[id.index()]
    }

    /// The frame-2 copy of an original node.
    #[must_use]
    pub fn in_frame2(&self, id: NodeId) -> NodeId {
        self.frame2[id.index()]
    }
}

/// Name of the net driving `id` inside a frame (inputs keep their shared
/// name; flip-flop outputs are the frame's state nets).
fn frame_net(circuit: &Circuit, id: NodeId, frame_prefix: &impl Fn(&str) -> String) -> String {
    let node = circuit.node(id);
    match node.kind() {
        GateKind::Input => node.name().to_owned(),
        _ => frame_prefix(node.name()),
    }
}

/// Checks that a pattern obeys the broadside constraint: capture PIs equal
/// launch PIs and capture state bits equal the launch cycle's next state.
#[must_use]
pub fn is_broadside_consistent(circuit: &Circuit, set: &TestSet, pattern: &TestPattern) -> bool {
    let sources = set.sources();
    let assigned = |bits: &[bool]| {
        let bits = bits.to_vec();
        let sources = sources.to_vec();
        move |id: NodeId| {
            sources
                .iter()
                .position(|&s| s == id)
                .map(|k| bits[k])
                .unwrap_or(false)
        }
    };
    let launch_values = circuit.eval_steady(assigned(&pattern.launch));
    for (k, &src) in sources.iter().enumerate() {
        match circuit.node(src).kind() {
            GateKind::Input if pattern.capture[k] != pattern.launch[k] => {
                return false;
            }
            GateKind::Dff => {
                let d = circuit.node(src).fanins()[0];
                if pattern.capture[k] != launch_values[d.index()] {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// Completes a launch assignment into a broadside pattern: next-state
/// capture bits, PIs held.
fn close_pattern(circuit: &Circuit, sources: &[NodeId], launch: Vec<bool>) -> TestPattern {
    let values = circuit.eval_steady(|id| {
        sources
            .iter()
            .position(|&s| s == id)
            .map(|k| launch[k])
            .unwrap_or(false)
    });
    let capture: Vec<bool> = sources
        .iter()
        .enumerate()
        .map(|(k, &src)| match circuit.node(src).kind() {
            GateKind::Dff => values[circuit.node(src).fanins()[0].index()],
            _ => launch[k],
        })
        .collect();
    TestPattern::new(launch, capture)
}

/// Transition-fault ATPG under the broadside constraint.
///
/// The random phase draws launch vectors and *derives* the capture vector
/// from the next-state function; the deterministic phase runs PODEM on the
/// [`TimeFrameExpansion`] with the launch value as a side objective, so
/// every generated pair is functionally reachable in one capture cycle.
///
/// Coverage is generally lower than [`generate`](crate::generate) — some
/// transitions simply cannot be launched functionally — which is the
/// textbook gap between enhanced-scan and broadside testing.
#[must_use]
pub fn generate_broadside(circuit: &Circuit, config: &AtpgConfig) -> AtpgResult {
    let faults = transition_faults(circuit);
    // one cone arena + scratch shared by every grading pass below
    let cones = FaultCones::build(circuit, &faults);
    let mut scratch = GradeScratch::for_cones(&cones);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xb20a_d51d_0000_0000);
    let mut set = TestSet::new(circuit);
    let sources = set.sources().to_vec();
    let width = sources.len();

    // --- random reachable phase -------------------------------------------
    for _ in 0..config.random_patterns {
        let launch: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        set.push(close_pattern(circuit, &sources, launch));
    }
    let mut remaining: Vec<bool> = vec![true; faults.len()];
    if !set.is_empty() {
        let ws = WordSim::new(circuit, &set);
        for (f, fault) in faults.iter().enumerate() {
            if (0..ws.num_blocks())
                .any(|b| ws.detect_word_cached(fault, b, &cones, &mut scratch) != 0)
            {
                remaining[f] = false;
            }
        }
    }

    // --- deterministic phase on the expanded model --------------------------
    let expansion = TimeFrameExpansion::new(circuit);
    let expanded = expansion.expanded();
    let expanded_sources = TestSet::source_order(expanded);
    // one reusable engine over the expanded model: cones cached per site
    let mut engine = PodemEngine::new(expanded);
    let mut untestable = 0usize;
    let mut aborted = 0usize;

    for (f, fault) in faults.iter().enumerate() {
        if !remaining[f] {
            continue;
        }
        let g2 = expansion.in_frame2(fault.gate);
        let g1 = expansion.in_frame1(fault.gate);
        let outcome = engine.podem_with_side_objective(
            &StuckAtFault {
                node: g2,
                stuck_at: fault.initial_value(),
            },
            g1,
            fault.initial_value(),
            config.max_backtracks,
        );
        match outcome {
            PodemOutcome::Test(assignment) => {
                // map the expanded assignment back to a launch vector
                let launch: Vec<bool> = sources
                    .iter()
                    .map(|&src| {
                        let expanded_src = expansion.in_frame1(src);
                        expanded_sources
                            .iter()
                            .position(|&s| s == expanded_src)
                            .and_then(|k| assignment[k])
                            .unwrap_or_else(|| rng.gen())
                    })
                    .collect();
                let pattern = close_pattern(circuit, &sources, launch);
                // grade the new pattern against the remaining faults
                let mut chunk = TestSet::new(circuit);
                chunk.push(pattern.clone());
                let ws = WordSim::new(circuit, &chunk);
                for (g, other) in faults.iter().enumerate() {
                    if remaining[g] && ws.detect_word_cached(other, 0, &cones, &mut scratch) != 0 {
                        remaining[g] = false;
                    }
                }
                set.push(pattern);
            }
            PodemOutcome::Untestable => {
                untestable += 1;
                remaining[f] = false;
            }
            PodemOutcome::Aborted => {
                aborted += 1;
                remaining[f] = false;
            }
        }
    }

    // --- compaction ----------------------------------------------------------
    // a single matrix simulation; compaction and capping re-pack its rows
    let mut matrix = DetectionMatrix::build_with(
        circuit,
        &set,
        &faults,
        &cones,
        effective_threads(config.threads),
        None,
    );
    if config.compact && !set.is_empty() {
        let kept = matrix.reverse_order_compaction();
        set.retain_indices(&kept);
        matrix = matrix.select_patterns(&kept);
    }
    if let Some(cap) = config.max_patterns {
        if set.len() > cap {
            let keep = greedy_pattern_selection(&matrix, cap);
            set.retain_indices(&keep);
            matrix = matrix.select_patterns(&keep);
        }
    }

    let detected = (0..faults.len())
        .filter(|&f| matrix.fault_detected(f))
        .count();
    AtpgResult {
        test_set: set,
        detected,
        untestable,
        aborted,
        total_faults: faults.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{generate::GeneratorConfig, library};

    #[test]
    fn expansion_structure() {
        let c = library::s27();
        let x = TimeFrameExpansion::new(&c);
        let e = x.expanded();
        // shared PIs + frame-1 state inputs
        assert_eq!(e.inputs().len(), c.inputs().len() + c.flip_flops().len());
        // frame-2 flip-flops capture; frame-2 POs observed
        assert_eq!(e.flip_flops().len(), c.flip_flops().len());
        assert_eq!(e.outputs().len(), c.outputs().len());
        // two combinational copies
        assert_eq!(
            e.combinational_nodes().count(),
            2 * c.combinational_nodes().count()
        );
    }

    #[test]
    fn expansion_computes_two_cycles() {
        let c = library::s27();
        let x = TimeFrameExpansion::new(&c);
        let e = x.expanded();
        // pick an arbitrary (pi, state) assignment; frame-2 nets must equal
        // the original circuit evaluated on (pi, next_state)
        let pis = c.inputs().to_vec();
        let ffs = c.flip_flops().to_vec();
        let assign1 = |id: NodeId| pis.contains(&id) || ffs.first() == Some(&id);
        let v1 = c.eval_steady(assign1);
        let next: Vec<bool> = ffs
            .iter()
            .map(|&ff| v1[c.node(ff).fanins()[0].index()])
            .collect();
        let v2 = c.eval_steady(|id| {
            if pis.contains(&id) {
                true
            } else {
                ffs.iter()
                    .position(|&f| f == id)
                    .map(|k| next[k])
                    .unwrap_or(false)
            }
        });
        // evaluate the expansion with the same shared PIs and frame-1 state
        let ev = e.eval_steady(|id| {
            // shared PI names are original names
            if c.inputs().iter().any(|&pi| x.in_frame1(pi) == id) {
                return true;
            }
            // frame-1 state inputs
            ffs.first().map(|&f| x.in_frame1(f) == id).unwrap_or(false)
        });
        for gate in c.combinational_nodes() {
            assert_eq!(
                ev[x.in_frame1(gate).index()],
                v1[gate.index()],
                "frame1 {gate}"
            );
            assert_eq!(
                ev[x.in_frame2(gate).index()],
                v2[gate.index()],
                "frame2 {gate}"
            );
        }
    }

    #[test]
    fn broadside_patterns_are_consistent() {
        let c = library::s27();
        let r = generate_broadside(&c, &AtpgConfig::default());
        assert!(!r.test_set.is_empty());
        for p in r.test_set.iter() {
            assert!(is_broadside_consistent(&c, &r.test_set, p));
        }
    }

    #[test]
    fn broadside_coverage_reasonable_but_not_above_enhanced_scan() {
        let c = library::s27();
        let cfg = AtpgConfig::default();
        let broadside = generate_broadside(&c, &cfg);
        let enhanced = crate::generate(&c, &cfg);
        // s27's transition faults are hard to launch functionally; the
        // textbook broadside-vs-enhanced-scan gap shows clearly here
        assert!(
            broadside.coverage() > 0.4,
            "coverage {}",
            broadside.coverage()
        );
        assert!(
            broadside.detected <= enhanced.detected,
            "broadside {} cannot beat enhanced scan {}",
            broadside.detected,
            enhanced.detected
        );
    }

    #[test]
    fn broadside_on_synthetic_circuit() {
        let c = GeneratorConfig::new("bs")
            .gates(150)
            .flip_flops(12)
            .inputs(8)
            .outputs(4)
            .depth(8)
            .generate(2)
            .expect("valid generator config");
        let r = generate_broadside(&c, &AtpgConfig::default());
        for p in r.test_set.iter() {
            assert!(is_broadside_consistent(&c, &r.test_set, p));
        }
        assert!(r.coverage() > 0.3, "coverage {}", r.coverage());
    }
}
