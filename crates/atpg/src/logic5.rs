use std::fmt;

use fastmon_netlist::GateKind;

/// The five-valued logic of PODEM: good/faulty value pairs.
///
/// `D` means good-1/faulty-0, `Db` ("D-bar") good-0/faulty-1, `X` unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V5 {
    /// Constant 0 in both machines.
    Zero,
    /// Constant 1 in both machines.
    One,
    /// Unassigned / unknown.
    X,
    /// Good 1, faulty 0.
    D,
    /// Good 0, faulty 1.
    Db,
}

impl V5 {
    /// Builds a value from known good/faulty bits.
    #[must_use]
    pub fn from_pair(good: bool, faulty: bool) -> Self {
        match (good, faulty) {
            (false, false) => V5::Zero,
            (true, true) => V5::One,
            (true, false) => V5::D,
            (false, true) => V5::Db,
        }
    }

    /// The good-machine bit, if known.
    #[must_use]
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Db => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// The faulty-machine bit, if known.
    #[must_use]
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Db => Some(true),
            V5::X => None,
        }
    }

    /// Whether the value carries a fault effect.
    #[must_use]
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Db)
    }

    /// Whether the value is a known constant (0 or 1).
    #[must_use]
    pub fn is_binary(self) -> bool {
        matches!(self, V5::Zero | V5::One)
    }

    /// Converts a plain bool.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Logical complement (X stays X, D ↔ Db).
    // the name mirrors the textbook PODEM operation; V5 is Copy, so there
    // is no ambiguity with `std::ops::Not::not` on references
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Db,
            V5::Db => V5::D,
        }
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            V5::Zero => "0",
            V5::One => "1",
            V5::X => "X",
            V5::D => "D",
            V5::Db => "D̄",
        };
        f.write_str(s)
    }
}

/// Evaluates a gate in 5-valued logic by evaluating the good and faulty
/// machines separately (exact for a single fault).
#[must_use]
pub fn eval5(kind: GateKind, inputs: &[V5]) -> V5 {
    // three-valued evaluation of one machine
    fn eval3<F: Fn(V5) -> Option<bool>>(kind: GateKind, inputs: &[V5], side: F) -> Option<bool> {
        match kind {
            GateKind::Const0 => return Some(false),
            GateKind::Const1 => return Some(true),
            _ => {}
        }
        if matches!(
            kind,
            GateKind::Buf | GateKind::Not | GateKind::Input | GateKind::Dff
        ) {
            let v = side(inputs[0]);
            return match kind {
                GateKind::Not => v.map(|b| !b),
                _ => v,
            };
        }
        let invert = kind.is_inverting();
        match kind {
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                // controlling value short-circuit
                let ctrl = kind
                    .controlling_value()
                    .unwrap_or_else(|| unreachable!("and/or class has a controlling value"));
                let mut any_x = false;
                for &i in inputs {
                    match side(i) {
                        Some(v) if v == ctrl => return Some(ctrl ^ invert),
                        Some(_) => {}
                        None => any_x = true,
                    }
                }
                if any_x {
                    None
                } else {
                    Some(!ctrl ^ invert)
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = false;
                for &i in inputs {
                    match side(i) {
                        Some(v) => acc ^= v,
                        None => return None,
                    }
                }
                Some(acc ^ invert)
            }
            _ => unreachable!("handled above"),
        }
    }

    let good = eval3(kind, inputs, V5::good);
    let faulty = eval3(kind, inputs, V5::faulty);
    match (good, faulty) {
        (Some(g), Some(f)) => V5::from_pair(g, f),
        _ => V5::X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_propagation_through_and() {
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::One]), V5::D);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Zero]), V5::Zero);
        assert_eq!(eval5(GateKind::And, &[V5::D, V5::Db]), V5::Zero);
        assert_eq!(eval5(GateKind::Nand, &[V5::D, V5::One]), V5::Db);
    }

    #[test]
    fn x_handling() {
        assert_eq!(eval5(GateKind::And, &[V5::X, V5::Zero]), V5::Zero);
        assert_eq!(eval5(GateKind::And, &[V5::X, V5::One]), V5::X);
        assert_eq!(eval5(GateKind::Or, &[V5::X, V5::One]), V5::One);
        assert_eq!(eval5(GateKind::Xor, &[V5::X, V5::One]), V5::X);
        assert_eq!(eval5(GateKind::Not, &[V5::X]), V5::X);
    }

    #[test]
    fn xor_with_fault_effects() {
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::Zero]), V5::D);
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::One]), V5::Db);
        // D xor D: good 1^1=0, faulty 0^0=0
        assert_eq!(eval5(GateKind::Xor, &[V5::D, V5::D]), V5::Zero);
        // Xnor(D, Db): good !(1^0)=0, faulty !(0^1)=0
        assert_eq!(eval5(GateKind::Xnor, &[V5::D, V5::Db]), V5::Zero);
    }

    #[test]
    fn not_and_pairs() {
        assert_eq!(V5::D.not(), V5::Db);
        assert_eq!(V5::Db.not(), V5::D);
        assert_eq!(V5::X.not(), V5::X);
        assert_eq!(V5::from_pair(true, false), V5::D);
        assert_eq!(V5::D.good(), Some(true));
        assert_eq!(V5::D.faulty(), Some(false));
        assert_eq!(V5::X.good(), None);
    }

    #[test]
    fn wide_gates() {
        assert_eq!(eval5(GateKind::Nor, &[V5::Zero, V5::Zero, V5::D]), V5::Db);
        assert_eq!(eval5(GateKind::Or, &[V5::Zero, V5::X, V5::Db]), V5::X);
    }
}
