use fastmon_netlist::Circuit;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::matrix::effective_threads;
use crate::{
    transition_faults, AtpgError, DetectionMatrix, FaultCones, GradeScratch, PodemEngine,
    PodemOutcome, StuckAtFault, TestPattern, TestSet, TransitionFault, WordSim,
};

/// Configuration of the transition-fault ATPG flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Number of weighted-random patterns tried before deterministic
    /// generation.
    pub random_patterns: usize,
    /// PODEM backtrack limit per fault.
    pub max_backtracks: u32,
    /// RNG seed (pattern fill, random phase).
    pub seed: u64,
    /// Run reverse-order static compaction at the end.
    pub compact: bool,
    /// Optional hard cap on the final pattern count; when the compacted set
    /// is larger, patterns are greedily selected for maximum coverage.
    pub max_patterns: Option<usize>,
    /// Worker threads for fault grading (`0` = all available cores).
    /// Results are bit-identical for any value.
    pub threads: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 256,
            max_backtracks: 192,
            seed: 1,
            compact: true,
            max_patterns: None,
            threads: 0,
        }
    }
}

/// The outcome of [`generate`].
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The (compacted) two-vector test set.
    pub test_set: TestSet,
    /// Transition faults detected by the final set.
    pub detected: usize,
    /// Faults proven untestable (launch unjustifiable or effect
    /// unpropagatable).
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total transition-fault population.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Test coverage: detected / total faults.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Fault efficiency: (detected + proven untestable) / total.
    #[must_use]
    pub fn fault_efficiency(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        (self.detected + self.untestable) as f64 / self.total_faults as f64
    }
}

/// Retains only the faults of `undetected` that `ws` does **not** detect,
/// grading fault-parallel over the cached cone arena. Order is preserved,
/// so the result is bit-identical for any thread count.
///
/// A grading-worker panic (including an injected `atpg_grade` failpoint)
/// is contained and surfaced as [`AtpgError::WorkerPanicked`]; `undetected`
/// is left untouched in that case.
pub(crate) fn retain_undetected(
    undetected: &mut Vec<usize>,
    ws: &WordSim<'_>,
    faults: &[TransitionFault],
    cones: &FaultCones,
    threads: usize,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> Result<(), AtpgError> {
    if undetected.is_empty() {
        return Ok(());
    }
    let blocks = ws.num_blocks();
    let threads = threads.min(undetected.len());
    let hit: Vec<bool> = fastmon_sim::try_parallel_map_with(
        undetected.len(),
        threads,
        || GradeScratch::for_cones(cones),
        |scratch, i| {
            // Grading workers have no per-item error channel; both failpoint
            // actions surface as a contained panic.
            if let Err(injected) = fastmon_obs::failpoints::fire("atpg_grade") {
                panic!("{injected}");
            }
            let fault = &faults[undetected[i]];
            let hit = (0..blocks).any(|b| ws.detect_word_cached(fault, b, cones, scratch) != 0);
            if let Some(m) = metrics {
                scratch.flush_into(m);
            }
            hit
        },
    )
    .map_err(|panic| AtpgError::WorkerPanicked {
        phase: "atpg_grade",
        message: panic.message(),
    })?;
    let mut it = hit.iter();
    undetected.retain(|_| {
        let &h = it.next().unwrap_or(&false);
        !h
    });
    Ok(())
}

/// Generates a compacted transition-fault test set for a full-scan circuit.
///
/// See the [crate docs](crate) for the pipeline. Deterministic in
/// `config.seed` and bit-identical for any `config.threads`.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{generate, AtpgConfig};
/// use fastmon_netlist::library;
///
/// let circuit = library::s27();
/// let result = generate(&circuit, &AtpgConfig { seed: 42, ..AtpgConfig::default() });
/// assert!(result.fault_efficiency() > 0.99);
/// ```
#[must_use]
pub fn generate(circuit: &Circuit, config: &AtpgConfig) -> AtpgResult {
    generate_with_metrics(circuit, config, None)
}

/// Like [`generate`], but records PODEM calls/backtracks/aborts, grading
/// counters (cones cached, cone BFS traversals avoided, scratch reuses,
/// matrix rebuilds avoided) and the final fault tallies into a scoped
/// [`fastmon_obs::AtpgMetrics`] section.
///
/// # Panics
///
/// Panics if pattern generation fails, which is only reachable when a
/// failpoint is armed (see [`try_generate_with_metrics`] for the fallible
/// variant with cancellation support).
#[must_use]
pub fn generate_with_metrics(
    circuit: &Circuit,
    config: &AtpgConfig,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> AtpgResult {
    match try_generate_with_metrics(circuit, config, metrics, None) {
        Ok(result) => result,
        Err(e) => panic!("infallible ATPG entry failed: {e}"),
    }
}

/// Fallible, cancellable variant of [`generate_with_metrics`].
///
/// Checks `cancel` between PODEM targets and observes the `atpg_podem` and
/// `atpg_grade` failpoints; grading-worker panics are contained and
/// surfaced as typed errors rather than unwinding the caller.
///
/// # Errors
///
/// - [`AtpgError::Cancelled`] when `cancel` is triggered mid-generation,
/// - [`AtpgError::Injected`] when the `atpg_podem` failpoint fires,
/// - [`AtpgError::WorkerPanicked`] when a grading worker panics.
pub fn try_generate_with_metrics(
    circuit: &Circuit,
    config: &AtpgConfig,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
    cancel: Option<&fastmon_obs::CancelToken>,
) -> Result<AtpgResult, AtpgError> {
    let _atpg_span = fastmon_obs::span!("atpg");
    let faults = transition_faults(circuit);
    let threads = effective_threads(config.threads);

    // levelize every fault cone once; shared by the random, deterministic
    // and compaction grading passes below
    let cones = {
        let _cones_span = fastmon_obs::span!("atpg_cones");
        let cones = FaultCones::build(circuit, &faults);
        if let Some(m) = metrics {
            m.cones_cached.add(cones.num_cones() as u64);
            m.cone_bfs.add(cones.num_cones() as u64);
        }
        cones
    };

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xa791_0000_0000_0000);
    let mut set = TestSet::new(circuit);
    let width = set.sources().len();

    // --- random phase ----------------------------------------------------
    let random_span = fastmon_obs::span!("atpg_random");
    for _ in 0..config.random_patterns {
        set.push(TestPattern::new(
            (0..width).map(|_| rng.gen()).collect(),
            (0..width).map(|_| rng.gen()).collect(),
        ));
    }
    let mut undetected: Vec<usize> = (0..faults.len()).collect();
    if !set.is_empty() {
        let ws = WordSim::new(circuit, &set);
        retain_undetected(&mut undetected, &ws, &faults, &cones, threads, metrics)?;
    }
    drop(random_span);

    // --- deterministic phase ----------------------------------------------
    let podem_span = fastmon_obs::span!("atpg_podem");
    // one engine for every fault: buffers and fanout cones are cached and
    // reused across the whole worklist
    let mut engine = PodemEngine::new(circuit);
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut pending: Vec<TestPattern> = Vec::new();
    let mut still_undetected = Vec::new();

    let flush = |pending: &mut Vec<TestPattern>,
                 undetected: &mut Vec<usize>,
                 set: &mut TestSet|
     -> Result<(), AtpgError> {
        if pending.is_empty() {
            return Ok(());
        }
        let mut chunk = TestSet::new(circuit);
        for p in pending.iter().cloned() {
            chunk.push(p);
        }
        let ws = WordSim::new(circuit, &chunk);
        retain_undetected(undetected, &ws, &faults, &cones, threads, metrics)?;
        for p in pending.drain(..) {
            set.push(p);
        }
        Ok(())
    };

    let worklist = undetected.clone();
    undetected.clear();
    let mut remaining: Vec<bool> = vec![false; faults.len()];
    for &f in &worklist {
        remaining[f] = true;
    }

    for f in worklist {
        if !remaining[f] {
            continue;
        }
        fastmon_obs::failpoints::fire("atpg_podem")
            .map_err(|e| AtpgError::Injected { site: e.site })?;
        if cancel.is_some_and(fastmon_obs::CancelToken::is_cancelled) {
            return Err(AtpgError::Cancelled { phase: "atpg" });
        }
        let fault: &TransitionFault = &faults[f];
        let launch = engine.justify_with_metrics(
            fault.gate,
            fault.initial_value(),
            config.max_backtracks,
            metrics,
        );
        let capture = engine.podem_with_metrics(
            &StuckAtFault {
                node: fault.gate,
                stuck_at: fault.initial_value(),
            },
            config.max_backtracks,
            metrics,
        );
        match (launch, capture) {
            (PodemOutcome::Test(l), PodemOutcome::Test(c)) => {
                let fill = |bits: Vec<Option<bool>>, rng: &mut ChaCha8Rng| -> Vec<bool> {
                    bits.into_iter()
                        .map(|b| b.unwrap_or_else(|| rng.gen()))
                        .collect()
                };
                let pattern = TestPattern::new(fill(l, &mut rng), fill(c, &mut rng));
                pending.push(pattern);
                remaining[f] = false;
                // opportunistically grade accumulated patterns in blocks
                if pending.len() == 64 {
                    let mut undet: Vec<usize> =
                        (0..faults.len()).filter(|&g| remaining[g]).collect();
                    flush(&mut pending, &mut undet, &mut set)?;
                    remaining.fill(false);
                    for g in undet {
                        remaining[g] = true;
                    }
                }
            }
            (PodemOutcome::Untestable, _) | (_, PodemOutcome::Untestable) => {
                untestable += 1;
                remaining[f] = false;
            }
            _ => {
                aborted += 1;
                remaining[f] = false;
                still_undetected.push(f);
            }
        }
    }
    {
        let mut undet: Vec<usize> = (0..faults.len()).filter(|&g| remaining[g]).collect();
        flush(&mut pending, &mut undet, &mut set)?;
    }
    drop(podem_span);

    // --- compaction --------------------------------------------------------
    // one full matrix simulation; compaction and budget capping only select
    // pattern subsets, so they re-pack the existing rows instead of
    // re-simulating
    let _compact_span = fastmon_obs::span!("atpg_compact");
    let mut matrix =
        DetectionMatrix::try_build_with(circuit, &set, &faults, &cones, threads, metrics)?;
    if config.compact && !set.is_empty() {
        let kept = matrix.reverse_order_compaction();
        set.retain_indices(&kept);
        matrix = matrix.select_patterns(&kept);
        if let Some(m) = metrics {
            m.matrix_rebuilds_avoided.incr();
        }
    }
    if let Some(cap) = config.max_patterns {
        if set.len() > cap {
            let keep = greedy_pattern_selection(&matrix, cap);
            set.retain_indices(&keep);
            matrix = matrix.select_patterns(&keep);
            if let Some(m) = metrics {
                m.matrix_rebuilds_avoided.incr();
            }
        }
    }

    let detected = (0..faults.len())
        .filter(|&f| matrix.fault_detected(f))
        .count();
    if let Some(m) = metrics {
        m.faults_detected.add(detected as u64);
        m.faults_untestable.add(untestable as u64);
        m.patterns_emitted.add(set.len() as u64);
    }
    Ok(AtpgResult {
        test_set: set,
        detected,
        untestable,
        aborted,
        total_faults: faults.len(),
    })
}

/// Greedily selects up to `cap` patterns maximizing fault coverage.
///
/// Works column-wise on a transposed copy of the matrix: the marginal gain
/// of a candidate pattern is `popcount(column & !covered)` over packed
/// fault words, and committing a pattern is a word-level OR — no per-bit
/// probing. Ties break toward the lowest pattern index, matching the
/// original per-bit implementation exactly.
pub(crate) fn greedy_pattern_selection(matrix: &DetectionMatrix, cap: usize) -> Vec<usize> {
    let nf = matrix.num_faults();
    let np = matrix.num_patterns();
    let fw = nf.div_ceil(64).max(1);
    // transpose: one packed fault-bitset column per pattern
    let mut columns = vec![0u64; np * fw];
    for f in 0..nf {
        for (b, &w) in matrix.row(f).iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let p = b * 64 + w.trailing_zeros() as usize;
                if p < np {
                    columns[p * fw + f / 64] |= 1 << (f % 64);
                }
                w &= w - 1;
            }
        }
    }
    let mut covered = vec![0u64; fw];
    let mut used = vec![false; np];
    let mut chosen = Vec::with_capacity(cap);
    for _ in 0..cap {
        let mut best = (0usize, usize::MAX);
        for (p, &in_use) in used.iter().enumerate() {
            if in_use {
                continue;
            }
            let col = &columns[p * fw..(p + 1) * fw];
            let gain: usize = col
                .iter()
                .zip(&covered)
                .map(|(&c, &v)| (c & !v).count_ones() as usize)
                .sum();
            if gain > best.0 {
                best = (gain, p);
            }
        }
        let (gain, p) = best;
        if gain == 0 || p == usize::MAX {
            break;
        }
        used[p] = true;
        chosen.push(p);
        for (v, &c) in covered.iter_mut().zip(&columns[p * fw..(p + 1) * fw]) {
            *v |= c;
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{generate::GeneratorConfig, library};

    #[test]
    fn c17_full_coverage() {
        let c = library::c17();
        let r = generate(&c, &AtpgConfig::default());
        assert_eq!(r.total_faults, 12);
        assert_eq!(r.detected, 12);
        assert_eq!(r.untestable, 0);
        assert!(r.coverage() > 0.999);
    }

    #[test]
    fn s27_high_efficiency() {
        let c = library::s27();
        let r = generate(&c, &AtpgConfig::default());
        assert!(
            r.fault_efficiency() > 0.99,
            "efficiency {}",
            r.fault_efficiency()
        );
        assert!(r.detected + r.untestable >= 19);
        assert!(!r.test_set.is_empty());
    }

    #[test]
    fn deterministic_phase_beats_pure_random() {
        // with very few random patterns, PODEM must pick up the slack
        let c = library::s27();
        let r = generate(
            &c,
            &AtpgConfig {
                random_patterns: 2,
                ..AtpgConfig::default()
            },
        );
        assert!(r.coverage() > 0.85, "coverage {}", r.coverage());
    }

    #[test]
    fn compaction_shrinks_without_coverage_loss() {
        let c = library::s27();
        let uncompacted = generate(
            &c,
            &AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        );
        let compacted = generate(&c, &AtpgConfig::default());
        assert!(compacted.test_set.len() <= uncompacted.test_set.len());
        assert_eq!(compacted.detected, uncompacted.detected);
    }

    #[test]
    fn pattern_budget_respected() {
        let c = library::s27();
        let r = generate(
            &c,
            &AtpgConfig {
                max_patterns: Some(3),
                ..AtpgConfig::default()
            },
        );
        assert!(r.test_set.len() <= 3);
        assert!(r.detected > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = library::s27();
        let a = generate(
            &c,
            &AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        );
        let b = generate(
            &c,
            &AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(a.test_set, b.test_set);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let c = GeneratorConfig::new("thr")
            .gates(250)
            .flip_flops(16)
            .inputs(10)
            .outputs(5)
            .depth(10)
            .generate(7)
            .unwrap();
        let reference = generate(
            &c,
            &AtpgConfig {
                threads: 1,
                max_patterns: Some(40),
                ..AtpgConfig::default()
            },
        );
        for threads in [2usize, 8] {
            let r = generate(
                &c,
                &AtpgConfig {
                    threads,
                    max_patterns: Some(40),
                    ..AtpgConfig::default()
                },
            );
            assert_eq!(r.test_set, reference.test_set, "threads={threads}");
            assert_eq!(r.detected, reference.detected);
            assert_eq!(r.untestable, reference.untestable);
            assert_eq!(r.aborted, reference.aborted);
        }
    }

    #[test]
    fn synthetic_circuit_reasonable_coverage() {
        let c = GeneratorConfig::new("syn")
            .gates(300)
            .flip_flops(24)
            .inputs(12)
            .outputs(6)
            .depth(12)
            .generate(3)
            .unwrap();
        // a generous backtrack budget resolves nearly all faults
        let r = generate(
            &c,
            &AtpgConfig {
                max_backtracks: 5_000,
                ..AtpgConfig::default()
            },
        );
        assert!(
            r.fault_efficiency() > 0.9,
            "efficiency {} on synthetic circuit",
            r.fault_efficiency()
        );
    }

    #[test]
    fn grading_counters_prove_cache_and_zero_alloc() {
        let c = library::s27();
        let m = fastmon_obs::AtpgMetrics::new();
        let r = generate_with_metrics(&c, &AtpgConfig::default(), Some(&m));
        assert!(r.detected > 0);
        // every distinct fault site cached exactly once
        assert_eq!(m.cones_cached.get(), m.cone_bfs.get());
        // the cached grades dwarf the arena-build traversals
        assert!(
            m.cone_bfs_avoided.get() >= 9 * m.cone_bfs.get(),
            "avoided {} vs performed {}",
            m.cone_bfs_avoided.get(),
            m.cone_bfs.get()
        );
        // steady-state grading is allocation-free: one pre-size per scratch
        assert!(
            m.grade_scratch_reuses.get() > m.grade_scratch_allocs.get(),
            "reuses {} vs allocs {}",
            m.grade_scratch_reuses.get(),
            m.grade_scratch_allocs.get()
        );
        // the matrix is simulated once; compaction re-packed rows
        assert_eq!(m.matrix_builds.get(), 1);
        assert_eq!(m.matrix_rebuilds_avoided.get(), 1);
        assert!(m.cone_nodes_evaluated.get() > 0);
    }
}
