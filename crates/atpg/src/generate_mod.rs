use fastmon_netlist::Circuit;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::{
    justify_with_metrics, podem_with_metrics, transition_faults, DetectionMatrix, PodemOutcome,
    StuckAtFault, TestPattern, TestSet, TransitionFault, WordSim,
};

/// Configuration of the transition-fault ATPG flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Number of weighted-random patterns tried before deterministic
    /// generation.
    pub random_patterns: usize,
    /// PODEM backtrack limit per fault.
    pub max_backtracks: u32,
    /// RNG seed (pattern fill, random phase).
    pub seed: u64,
    /// Run reverse-order static compaction at the end.
    pub compact: bool,
    /// Optional hard cap on the final pattern count; when the compacted set
    /// is larger, patterns are greedily selected for maximum coverage.
    pub max_patterns: Option<usize>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 256,
            max_backtracks: 192,
            seed: 1,
            compact: true,
            max_patterns: None,
        }
    }
}

/// The outcome of [`generate`].
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The (compacted) two-vector test set.
    pub test_set: TestSet,
    /// Transition faults detected by the final set.
    pub detected: usize,
    /// Faults proven untestable (launch unjustifiable or effect
    /// unpropagatable).
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total transition-fault population.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Test coverage: detected / total faults.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Fault efficiency: (detected + proven untestable) / total.
    #[must_use]
    pub fn fault_efficiency(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        (self.detected + self.untestable) as f64 / self.total_faults as f64
    }
}

/// Generates a compacted transition-fault test set for a full-scan circuit.
///
/// See the [crate docs](crate) for the pipeline. Deterministic in
/// `config.seed`.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{generate, AtpgConfig};
/// use fastmon_netlist::library;
///
/// let circuit = library::s27();
/// let result = generate(&circuit, &AtpgConfig { seed: 42, ..AtpgConfig::default() });
/// assert!(result.fault_efficiency() > 0.99);
/// ```
#[must_use]
pub fn generate(circuit: &Circuit, config: &AtpgConfig) -> AtpgResult {
    generate_with_metrics(circuit, config, None)
}

/// Like [`generate`], but records PODEM calls/backtracks/aborts and the
/// final fault tallies into a scoped [`fastmon_obs::AtpgMetrics`] section.
#[must_use]
pub fn generate_with_metrics(
    circuit: &Circuit,
    config: &AtpgConfig,
    metrics: Option<&fastmon_obs::AtpgMetrics>,
) -> AtpgResult {
    let _atpg_span = fastmon_obs::span!("atpg");
    let faults = transition_faults(circuit);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xa791_0000_0000_0000);
    let mut set = TestSet::new(circuit);
    let width = set.sources().len();

    // --- random phase ----------------------------------------------------
    let random_span = fastmon_obs::span!("atpg_random");
    for _ in 0..config.random_patterns {
        set.push(TestPattern::new(
            (0..width).map(|_| rng.gen()).collect(),
            (0..width).map(|_| rng.gen()).collect(),
        ));
    }
    let mut undetected: Vec<usize> = (0..faults.len()).collect();
    if !set.is_empty() {
        let ws = WordSim::new(circuit, &set);
        undetected.retain(|&f| !(0..ws.num_blocks()).any(|b| ws.detect_word(&faults[f], b) != 0));
    }
    drop(random_span);

    // --- deterministic phase ----------------------------------------------
    let podem_span = fastmon_obs::span!("atpg_podem");
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut pending: Vec<TestPattern> = Vec::new();
    let mut still_undetected = Vec::new();

    let flush = |pending: &mut Vec<TestPattern>, undetected: &mut Vec<usize>, set: &mut TestSet| {
        if pending.is_empty() {
            return;
        }
        let mut chunk = TestSet::new(circuit);
        for p in pending.iter().cloned() {
            chunk.push(p);
        }
        let ws = WordSim::new(circuit, &chunk);
        undetected.retain(|&f| !(0..ws.num_blocks()).any(|b| ws.detect_word(&faults[f], b) != 0));
        for p in pending.drain(..) {
            set.push(p);
        }
    };

    let worklist = undetected.clone();
    undetected.clear();
    let mut remaining: Vec<bool> = vec![false; faults.len()];
    for &f in &worklist {
        remaining[f] = true;
    }

    for f in worklist {
        if !remaining[f] {
            continue;
        }
        let fault: &TransitionFault = &faults[f];
        let launch = justify_with_metrics(
            circuit,
            fault.gate,
            fault.initial_value(),
            config.max_backtracks,
            metrics,
        );
        let capture = podem_with_metrics(
            circuit,
            &StuckAtFault {
                node: fault.gate,
                stuck_at: fault.initial_value(),
            },
            config.max_backtracks,
            metrics,
        );
        match (launch, capture) {
            (PodemOutcome::Test(l), PodemOutcome::Test(c)) => {
                let fill = |bits: Vec<Option<bool>>, rng: &mut ChaCha8Rng| -> Vec<bool> {
                    bits.into_iter()
                        .map(|b| b.unwrap_or_else(|| rng.gen()))
                        .collect()
                };
                let pattern = TestPattern::new(fill(l, &mut rng), fill(c, &mut rng));
                pending.push(pattern);
                remaining[f] = false;
                // opportunistically grade accumulated patterns in blocks
                if pending.len() == 64 {
                    let mut undet: Vec<usize> =
                        (0..faults.len()).filter(|&g| remaining[g]).collect();
                    flush(&mut pending, &mut undet, &mut set);
                    remaining.fill(false);
                    for g in undet {
                        remaining[g] = true;
                    }
                }
            }
            (PodemOutcome::Untestable, _) | (_, PodemOutcome::Untestable) => {
                untestable += 1;
                remaining[f] = false;
            }
            _ => {
                aborted += 1;
                remaining[f] = false;
                still_undetected.push(f);
            }
        }
    }
    {
        let mut undet: Vec<usize> = (0..faults.len()).filter(|&g| remaining[g]).collect();
        flush(&mut pending, &mut undet, &mut set);
    }
    drop(podem_span);

    // --- compaction --------------------------------------------------------
    let _compact_span = fastmon_obs::span!("atpg_compact");
    let mut matrix = DetectionMatrix::build(circuit, &set, &faults);
    if config.compact && !set.is_empty() {
        let kept = matrix.reverse_order_compaction();
        set.retain_indices(&kept);
        matrix = DetectionMatrix::build(circuit, &set, &faults);
    }
    if let Some(cap) = config.max_patterns {
        if set.len() > cap {
            let keep = greedy_pattern_selection(&matrix, cap);
            set.retain_indices(&keep);
            matrix = DetectionMatrix::build(circuit, &set, &faults);
        }
    }

    let detected = (0..faults.len())
        .filter(|&f| matrix.fault_detected(f))
        .count();
    if let Some(m) = metrics {
        m.faults_detected.add(detected as u64);
        m.faults_untestable.add(untestable as u64);
        m.patterns_emitted.add(set.len() as u64);
    }
    AtpgResult {
        test_set: set,
        detected,
        untestable,
        aborted,
        total_faults: faults.len(),
    }
}

/// Greedily selects up to `cap` patterns maximizing fault coverage.
pub(crate) fn greedy_pattern_selection(matrix: &DetectionMatrix, cap: usize) -> Vec<usize> {
    let mut covered = vec![false; matrix.num_faults()];
    let mut chosen = Vec::with_capacity(cap);
    let mut used = vec![false; matrix.num_patterns()];
    for _ in 0..cap {
        let mut best = (0usize, usize::MAX);
        for (p, &in_use) in used.iter().enumerate() {
            if in_use {
                continue;
            }
            let gain = (0..matrix.num_faults())
                .filter(|&f| !covered[f] && matrix.detects(f, p))
                .count();
            if gain > best.0 {
                best = (gain, p);
            }
        }
        let (gain, p) = best;
        if gain == 0 || p == usize::MAX {
            break;
        }
        used[p] = true;
        chosen.push(p);
        for (f, cov) in covered.iter_mut().enumerate() {
            if matrix.detects(f, p) {
                *cov = true;
            }
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{generate::GeneratorConfig, library};

    #[test]
    fn c17_full_coverage() {
        let c = library::c17();
        let r = generate(&c, &AtpgConfig::default());
        assert_eq!(r.total_faults, 12);
        assert_eq!(r.detected, 12);
        assert_eq!(r.untestable, 0);
        assert!(r.coverage() > 0.999);
    }

    #[test]
    fn s27_high_efficiency() {
        let c = library::s27();
        let r = generate(&c, &AtpgConfig::default());
        assert!(
            r.fault_efficiency() > 0.99,
            "efficiency {}",
            r.fault_efficiency()
        );
        assert!(r.detected + r.untestable >= 19);
        assert!(!r.test_set.is_empty());
    }

    #[test]
    fn deterministic_phase_beats_pure_random() {
        // with very few random patterns, PODEM must pick up the slack
        let c = library::s27();
        let r = generate(
            &c,
            &AtpgConfig {
                random_patterns: 2,
                ..AtpgConfig::default()
            },
        );
        assert!(r.coverage() > 0.85, "coverage {}", r.coverage());
    }

    #[test]
    fn compaction_shrinks_without_coverage_loss() {
        let c = library::s27();
        let uncompacted = generate(
            &c,
            &AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        );
        let compacted = generate(&c, &AtpgConfig::default());
        assert!(compacted.test_set.len() <= uncompacted.test_set.len());
        assert_eq!(compacted.detected, uncompacted.detected);
    }

    #[test]
    fn pattern_budget_respected() {
        let c = library::s27();
        let r = generate(
            &c,
            &AtpgConfig {
                max_patterns: Some(3),
                ..AtpgConfig::default()
            },
        );
        assert!(r.test_set.len() <= 3);
        assert!(r.detected > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = library::s27();
        let a = generate(
            &c,
            &AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        );
        let b = generate(
            &c,
            &AtpgConfig {
                seed: 9,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(a.test_set, b.test_set);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn synthetic_circuit_reasonable_coverage() {
        let c = GeneratorConfig::new("syn")
            .gates(300)
            .flip_flops(24)
            .inputs(12)
            .outputs(6)
            .depth(12)
            .generate(3)
            .unwrap();
        // a generous backtrack budget resolves nearly all faults
        let r = generate(
            &c,
            &AtpgConfig {
                max_backtracks: 5_000,
                ..AtpgConfig::default()
            },
        );
        assert!(
            r.fault_efficiency() > 0.9,
            "efficiency {} on synthetic circuit",
            r.fault_efficiency()
        );
    }
}
