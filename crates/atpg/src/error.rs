use std::fmt;

/// Errors produced while building test patterns or running ATPG on
/// degenerate inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtpgError {
    /// A pattern's launch and capture vectors differ in length.
    VectorLengthMismatch {
        /// Launch vector length.
        launch: usize,
        /// Capture vector length.
        capture: usize,
    },
    /// A pattern's width does not match the test set's source count.
    WidthMismatch {
        /// Width of the offending pattern.
        got: usize,
        /// Source count of the test set.
        expected: usize,
    },
    /// The circuit has no combinational sources (no primary inputs and no
    /// flip-flops), so no two-vector test can be applied.
    NoSources {
        /// Name of the offending circuit.
        circuit: String,
    },
    /// A deterministic failpoint fired inside ATPG (test-only injection).
    Injected {
        /// Name of the failpoint site that fired.
        site: &'static str,
    },
    /// Cooperative cancellation was observed while generating patterns.
    Cancelled {
        /// Phase that observed the cancellation.
        phase: &'static str,
    },
    /// A grading/PODEM worker panicked; the panic was contained and
    /// converted into this typed error instead of unwinding the caller.
    WorkerPanicked {
        /// Phase whose worker panicked.
        phase: &'static str,
        /// Best-effort panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::VectorLengthMismatch { launch, capture } => {
                write!(
                    f,
                    "launch vector has {launch} bits but capture vector has {capture}"
                )
            }
            AtpgError::WidthMismatch { got, expected } => {
                write!(
                    f,
                    "pattern width {got} does not match the test set's {expected} sources"
                )
            }
            AtpgError::NoSources { circuit } => {
                write!(
                    f,
                    "circuit `{circuit}` has no combinational sources (inputs or flip-flops)"
                )
            }
            AtpgError::Injected { site } => {
                write!(f, "injected failure at failpoint '{site}'")
            }
            AtpgError::Cancelled { phase } => {
                write!(f, "pattern generation cancelled during {phase}")
            }
            AtpgError::WorkerPanicked { phase, message } => {
                write!(f, "worker panicked during {phase} (contained): {message}")
            }
        }
    }
}

impl std::error::Error for AtpgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AtpgError::WidthMismatch {
            got: 3,
            expected: 7,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtpgError>();
    }
}
