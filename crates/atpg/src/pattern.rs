use fastmon_netlist::{Circuit, NodeId};
use fastmon_sim::Stimulus;

use crate::AtpgError;

/// One two-vector (enhanced-scan) test: a launch vector and a capture
/// vector, each one bit per combinational source (primary inputs and
/// flip-flops), in [`TestSet::sources`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPattern {
    /// First vector: circuit state before the launch edge.
    pub launch: Vec<bool>,
    /// Second vector: applied at the launch edge; responses are captured
    /// against this vector.
    pub capture: Vec<bool>,
}

impl TestPattern {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length. Use
    /// [`TestPattern::try_new`] to handle untrusted vectors without
    /// panicking.
    #[must_use]
    pub fn new(launch: Vec<bool>, capture: Vec<bool>) -> Self {
        match Self::try_new(launch, capture) {
            Ok(p) => p,
            Err(e) => panic!("invalid test pattern: {e}"),
        }
    }

    /// Fallible variant of [`TestPattern::new`].
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::VectorLengthMismatch`] if the two vectors
    /// differ in length.
    pub fn try_new(launch: Vec<bool>, capture: Vec<bool>) -> Result<Self, AtpgError> {
        if launch.len() != capture.len() {
            return Err(AtpgError::VectorLengthMismatch {
                launch: launch.len(),
                capture: capture.len(),
            });
        }
        Ok(TestPattern { launch, capture })
    }

    /// Number of source bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.launch.len()
    }
}

/// An ordered collection of two-vector test patterns for one circuit.
///
/// # Example
///
/// ```
/// use fastmon_atpg::{TestPattern, TestSet};
/// use fastmon_netlist::library;
///
/// let circuit = library::s27();
/// let mut set = TestSet::new(&circuit);
/// let width = set.sources().len();
/// set.push(TestPattern::new(vec![false; width], vec![true; width]));
/// assert_eq!(set.len(), 1);
/// let stim = set.stimulus(&circuit, 0);
/// let pi = circuit.inputs()[0];
/// assert_eq!(stim.launch(pi), false);
/// assert_eq!(stim.capture(pi), true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSet {
    sources: Vec<NodeId>,
    patterns: Vec<TestPattern>,
}

impl TestSet {
    /// Creates an empty test set for `circuit`.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        TestSet {
            sources: Self::source_order(circuit),
            patterns: Vec::new(),
        }
    }

    /// The canonical source order used by all `fastmon-atpg` vectors:
    /// primary inputs and flip-flops in node-id order (constants excluded —
    /// they carry no test bit).
    #[must_use]
    pub fn source_order(circuit: &Circuit) -> Vec<NodeId> {
        circuit
            .iter()
            .filter(|(_, n)| {
                matches!(
                    n.kind(),
                    fastmon_netlist::GateKind::Input | fastmon_netlist::GateKind::Dff
                )
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// The sources, in vector-bit order.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Appends a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match the source count. Use
    /// [`TestSet::try_push`] to handle untrusted patterns without
    /// panicking.
    pub fn push(&mut self, pattern: TestPattern) {
        if let Err(e) = self.try_push(pattern) {
            panic!("invalid test pattern: {e}");
        }
    }

    /// Fallible variant of [`TestSet::push`].
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::WidthMismatch`] if the pattern width does not
    /// match the source count; the set is left unchanged.
    pub fn try_push(&mut self, pattern: TestPattern) -> Result<(), AtpgError> {
        if pattern.width() != self.sources.len() {
            return Err(AtpgError::WidthMismatch {
                got: pattern.width(),
                expected: self.sources.len(),
            });
        }
        self.patterns.push(pattern);
        Ok(())
    }

    /// Number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set holds no patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The `i`-th pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pattern(&self, i: usize) -> &TestPattern {
        &self.patterns[i]
    }

    /// Iterates over the patterns.
    pub fn iter(&self) -> impl Iterator<Item = &TestPattern> {
        self.patterns.iter()
    }

    /// Converts pattern `i` into a dense [`Stimulus`] for the waveform
    /// simulator.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the set does not belong to
    /// `circuit`.
    #[must_use]
    pub fn stimulus(&self, circuit: &Circuit, i: usize) -> Stimulus {
        let p = &self.patterns[i];
        let mut v1 = vec![false; circuit.len()];
        let mut v2 = vec![false; circuit.len()];
        for (k, &src) in self.sources.iter().enumerate() {
            v1[src.index()] = p.launch[k];
            v2[src.index()] = p.capture[k];
        }
        // constants keep their fixed value in both vectors
        for id in circuit.combinational_sources() {
            match circuit.node(id).kind() {
                fastmon_netlist::GateKind::Const1 => {
                    v1[id.index()] = true;
                    v2[id.index()] = true;
                }
                fastmon_netlist::GateKind::Const0 => {}
                _ => {}
            }
        }
        Stimulus::from_vectors(v1, v2)
    }

    /// Keeps only the patterns at the given indices (ascending), dropping
    /// the rest — used by static compaction.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        let mut keep_mask = vec![false; self.patterns.len()];
        for &i in keep {
            keep_mask[i] = true;
        }
        let mut i = 0;
        self.patterns.retain(|_| {
            let k = keep_mask[i];
            i += 1;
            k
        });
    }

    /// Truncates the set to at most `n` patterns.
    pub fn truncate(&mut self, n: usize) {
        self.patterns.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;

    #[test]
    fn source_order_is_stable() {
        let c = library::s27();
        let s = TestSet::source_order(&c);
        assert_eq!(s.len(), 7); // 4 PIs + 3 FFs
        let mut sorted = s.clone();
        sorted.sort();
        assert_eq!(s, sorted, "id order");
    }

    #[test]
    fn stimulus_round_trip() {
        let c = library::s27();
        let mut set = TestSet::new(&c);
        let w = set.sources().len();
        let launch: Vec<bool> = (0..w).map(|i| i % 2 == 0).collect();
        let capture: Vec<bool> = (0..w).map(|i| i % 3 == 0).collect();
        set.push(TestPattern::new(launch.clone(), capture.clone()));
        let stim = set.stimulus(&c, 0);
        for (k, &src) in set.sources().iter().enumerate() {
            assert_eq!(stim.launch(src), launch[k]);
            assert_eq!(stim.capture(src), capture[k]);
        }
    }

    #[test]
    fn retain_indices_filters() {
        let c = library::c17();
        let mut set = TestSet::new(&c);
        let w = set.sources().len();
        for i in 0..5 {
            set.push(TestPattern::new(vec![i % 2 == 0; w], vec![true; w]));
        }
        set.retain_indices(&[0, 3]);
        assert_eq!(set.len(), 2);
        assert!(set.pattern(0).launch[0]);
        assert!(!set.pattern(1).launch[0]);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wrong_width_rejected() {
        let c = library::c17();
        let mut set = TestSet::new(&c);
        set.push(TestPattern::new(vec![true], vec![false]));
    }
}
