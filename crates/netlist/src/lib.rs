//! Gate-level netlist substrate for the `fastmon` toolkit.
//!
//! This crate provides the circuit model consumed by every other `fastmon`
//! crate:
//!
//! * [`Circuit`] — a levelized gate-level netlist with full-scan semantics
//!   (flip-flops act as pseudo-primary inputs/outputs during test),
//! * [`GateKind`] — the supported cell types and their logic functions,
//! * [`bench`](mod@bench) — a reader/writer for the ISCAS'89 `.bench`
//!   format,
//! * [`library`] — small embedded reference circuits (`s27`, `c17`),
//! * [`generate`] — a deterministic synthetic full-scan circuit generator
//!   with profiles matching the benchmark suite of the reproduced paper.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fastmon_netlist::NetlistError> {
//! use fastmon_netlist::{library, GateKind};
//!
//! let s27 = library::s27();
//! assert_eq!(s27.flip_flops().len(), 3);
//! // every combinational gate has a level above its fanins
//! for node in s27.combinational_nodes() {
//!     for &fi in s27.node(node).fanins() {
//!         assert!(s27.level(fi) < s27.level(node));
//!     }
//! }
//! # Ok(())
//! # }
//! ```

// Robustness gate: library code must surface failures as typed errors
// (`NetlistError`), never via `unwrap`/`expect` (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod builder;
mod circuit;
mod error;
mod gate;
mod stats;

pub mod bench;
pub mod generate;
pub mod library;
pub mod transform;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, ConeMarks, Node, NodeId, ObservePoint, PinRef};
pub use error::NetlistError;
pub use gate::GateKind;
pub use stats::CircuitStats;
