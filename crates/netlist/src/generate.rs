//! Deterministic synthetic full-scan circuit generation.
//!
//! The paper evaluates on ISCAS'89 and proprietary industrial circuits
//! synthesized to the NanGate 45 nm library. The industrial netlists are not
//! available and the large ISCAS'89 netlists are not redistributable here, so
//! this module generates *synthetic stand-ins*: random full-scan circuits
//! whose gate count, flip-flop count, logic depth and output structure match
//! a [`CircuitProfile`]. The [`paper_suite`] function returns profiles for
//! all twelve circuits of Table I of the paper.
//!
//! Generation is fully deterministic in the seed, so experiments are
//! reproducible.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fastmon_netlist::NetlistError> {
//! use fastmon_netlist::generate::{CircuitProfile, GeneratorConfig};
//!
//! let profile = CircuitProfile::named("s9234").expect("known profile");
//! let small = profile.scaled(0.05); // 5 % size for a quick experiment
//! let circuit = small.generate(42)?;
//! assert!(circuit.flip_flops().len() >= 8);
//!
//! // or configure everything by hand
//! let config = GeneratorConfig::new("demo")
//!     .inputs(8)
//!     .outputs(4)
//!     .flip_flops(16)
//!     .gates(200)
//!     .depth(12)
//!     .xor_fraction(0.05);
//! let c = config.generate(7)?;
//! assert_eq!(c.inputs().len(), 8);
//! # Ok(())
//! # }
//! ```

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError, NodeId};

/// Configuration of the synthetic circuit generator.
///
/// Built with a fluent interface; see the [module docs](self) for an
/// example.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    name: String,
    inputs: usize,
    outputs: usize,
    flip_flops: usize,
    gates: usize,
    depth: u32,
    xor_fraction: f64,
    wide_fraction: f64,
    shallow_fraction: f64,
}

impl GeneratorConfig {
    /// Creates a config with small defaults (8 inputs, 4 outputs,
    /// 8 flip-flops, 100 gates, depth 10).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        GeneratorConfig {
            name: name.into(),
            inputs: 8,
            outputs: 4,
            flip_flops: 8,
            gates: 100,
            depth: 10,
            xor_fraction: 0.06,
            wide_fraction: 0.25,
            shallow_fraction: 0.25,
        }
    }

    /// Number of primary inputs (≥ 1).
    #[must_use]
    pub fn inputs(mut self, n: usize) -> Self {
        self.inputs = n;
        self
    }

    /// Number of primary outputs (≥ 1).
    #[must_use]
    pub fn outputs(mut self, n: usize) -> Self {
        self.outputs = n;
        self
    }

    /// Number of scan flip-flops.
    #[must_use]
    pub fn flip_flops(mut self, n: usize) -> Self {
        self.flip_flops = n;
        self
    }

    /// Number of combinational gates (≥ depth).
    #[must_use]
    pub fn gates(mut self, n: usize) -> Self {
        self.gates = n;
        self
    }

    /// Approximate logic depth (levels of combinational logic, ≥ 1).
    #[must_use]
    pub fn depth(mut self, d: u32) -> Self {
        self.depth = d;
        self
    }

    /// Fraction of XOR/XNOR gates (default 0.06).
    #[must_use]
    pub fn xor_fraction(mut self, f: f64) -> Self {
        self.xor_fraction = f;
        self
    }

    /// Fraction of 3-input gates among AND/OR/NAND/NOR (default 0.25).
    #[must_use]
    pub fn wide_fraction(mut self, f: f64) -> Self {
        self.wide_fraction = f;
        self
    }

    /// Fraction of gates placed in *shallow capture trees* (default 0.25).
    ///
    /// Real register-dominated designs contain large amounts of shallow
    /// logic — enables, status bits, state machines — that reach a
    /// flip-flop within a few gate delays while the same flip-flop also
    /// terminates deep paths. Fault effects in these trees die long before
    /// `t_min = t_nom/3` and are invisible to conventional FAST, but
    /// because their capture point also ends long paths it receives a
    /// monitor, whose delay element shifts the effects into the observable
    /// window. This knob controls how much of the circuit has that
    /// character and thereby the monitor coverage gain (paper Table I:
    /// +3.6 % for flat designs up to +190 % for register-dominated ones).
    #[must_use]
    pub fn shallow_capture_fraction(mut self, f: f64) -> Self {
        self.shallow_fraction = f;
        self
    }

    /// Generates a circuit, deterministically in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadGeneratorConfig`] for degenerate
    /// configurations (no inputs, no observation points, fewer gates than
    /// levels).
    pub fn generate(&self, seed: u64) -> Result<Circuit, NetlistError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa57_0000_0000_0000);
        let mut builder = CircuitBuilder::new(self.name.clone());

        // --- sources -----------------------------------------------------
        let mut by_level: Vec<Vec<String>> = vec![Vec::new()];
        for i in 0..self.inputs {
            let name = format!("pi{i}");
            builder.add(&name, GateKind::Input, &[]);
            by_level[0].push(name);
        }
        for i in 0..self.flip_flops {
            let name = format!("ff{i}");
            // D fanin is patched in later; reference a placeholder that is
            // resolved at the end (builder resolves names lazily).
            by_level[0].push(name);
        }

        // --- gate budget: main logic vs shallow capture trees --------------
        let depth = self.depth as usize;
        let shallow_budget = if self.flip_flops == 0 {
            0
        } else {
            (((self.gates as f64) * self.shallow_fraction).round() as usize)
                .min(self.gates.saturating_sub(depth))
        };
        // Concentrate the budget on few capture points: monitors cover the
        // top ~25 % of observation points by arrival, so keeping the tree
        // count below ~20 % of all observation points ensures every tree's
        // capture gate (which also ends a critical path) gets a monitor.
        let num_trees = if shallow_budget == 0 {
            0
        } else {
            (((self.flip_flops + self.outputs) as f64 * 0.2).floor() as usize)
                .clamp(1, self.flip_flops)
                .min(shallow_budget)
        };
        let main_gates = self.gates - shallow_budget;

        // --- gate level allocation ----------------------------------------
        // Triangle-ish level widths: wide in the middle, at least one gate
        // per level so the depth target is met.
        let mut width = vec![1usize; depth];
        let mut remaining = main_gates - depth;
        let weights: Vec<f64> = (0..depth)
            .map(|l| {
                let x = (l as f64 + 0.5) / depth as f64;
                0.25 + (x * std::f64::consts::PI).sin()
            })
            .collect();
        let wsum: f64 = weights.iter().sum();
        for (l, w) in weights.iter().enumerate() {
            let extra = ((main_gates - depth) as f64 * w / wsum).floor() as usize;
            let extra = extra.min(remaining);
            width[l] += extra;
            remaining -= extra;
        }
        // distribute leftovers round-robin
        let mut l = 0;
        while remaining > 0 {
            width[l % depth] += 1;
            remaining -= 1;
            l += 1;
        }

        // --- gates ---------------------------------------------------------
        // `unused` holds (level, name) of nodes not yet referenced by any
        // fanin; preferring them keeps the circuit free of dangling logic.
        let mut unused: Vec<(usize, String)> =
            by_level[0].iter().map(|n| (0usize, n.clone())).collect();
        let mut gate_meta: Vec<(String, GateKind, Vec<String>)> = Vec::with_capacity(self.gates);
        let mut gate_idx = 0usize;
        for level in 1..=depth {
            let mut this_level = Vec::with_capacity(width[level - 1]);
            for _ in 0..width[level - 1] {
                let name = format!("g{gate_idx}");
                gate_idx += 1;
                let kind = self.sample_kind(&mut rng);
                let arity = self.sample_arity(kind, &mut rng);
                let mut fanins = Vec::with_capacity(arity);
                // primary fanin from the previous level keeps the level chain
                let prev = &by_level[level - 1];
                fanins.push(prev[rng.gen_range(0..prev.len())].clone());
                for _ in 1..arity {
                    fanins.push(self.pick_fanin(level, &by_level, &mut unused, &mut rng));
                }
                gate_meta.push((name.clone(), kind, fanins));
                unused.push((level, name.clone()));
                this_level.push(name);
            }
            by_level.push(this_level);
        }

        // --- shallow capture trees ------------------------------------------
        // A share of the flip-flops captures through a dedicated shallow
        // tree over sources, merged with one deep signal in the final
        // capture gate (see `shallow_capture_fraction`).
        let mut ff_drivers = Vec::with_capacity(self.flip_flops);
        let mut budget = shallow_budget;
        // deep signals come from the top level so the capture gate ends the
        // longest paths and is all but certain to receive a monitor
        let deep_pool: Vec<String> = by_level[depth].clone();
        // Mixed-kind trees with some XOR (parity/status logic propagates
        // transitions unconditionally). Subtrees are kept at most three
        // levels deep so their capture-path arrival stays well below
        // t_min = t_nom/3 — the defining property of a shallow cone.
        let tree_kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        let mut ff_index = 0usize;
        while budget > 0 && ff_index < num_trees {
            // spread the budget evenly over the trees so it is consumed
            // exactly
            let remaining_trees = num_trees - ff_index;
            let size = budget.div_ceil(remaining_trees).max(1).min(budget);
            // `size` gates per slot: 1 wide capture gate + several flat
            // subtrees of at most 6 gates (7 leaves, depth ≤ 3)
            let subtree_gates = size.saturating_sub(1);
            let mut roots: Vec<String> = Vec::new();
            let mut left = subtree_gates;
            let mut j = 0usize;
            // Subtrees may grow up to ~depth/4 levels: arrivals then spread
            // over (0, t_min), and faults arriving just below t_min gain
            // islands from *all four* monitor delay elements — the range
            // diversity that lets few FAST frequencies cover many shallow
            // faults (and that keeps the cones out of the window itself).
            let max_chunk = (1usize << (depth / 4).clamp(2, 5)) - 1;
            while left > 0 {
                let chunk = rng.gen_range(1..=max_chunk).min(left);
                let chunk = if left - chunk == 1 { chunk + 1 } else { chunk };
                left -= chunk;
                // balanced reduction of chunk+1 source leaves via `chunk`
                // two-input gates
                let mut frontier: std::collections::VecDeque<String> = (0..=chunk)
                    .map(|_| by_level[0][rng.gen_range(0..by_level[0].len())].clone())
                    .collect();
                while frontier.len() > 1 {
                    let (Some(a), Some(b)) = (frontier.pop_front(), frontier.pop_front()) else {
                        break;
                    };
                    let name = format!("sc{ff_index}_{j}");
                    j += 1;
                    let kind = tree_kinds[rng.gen_range(0..tree_kinds.len())];
                    gate_meta.push((name.clone(), kind, vec![a, b]));
                    frontier.push_back(name);
                }
                if let Some(root) = frontier.pop_front() {
                    roots.push(root);
                }
            }
            if roots.is_empty() {
                // degenerate slot (size 1): capture a source directly
                roots.push(by_level[0][rng.gen_range(0..by_level[0].len())].clone());
            }
            let deep = deep_pool[rng.gen_range(0..deep_pool.len())].clone();
            let cap_name = format!("sc{ff_index}_cap");
            // wide capture gates become parity collectors (XOR), which keep
            // propagating transitions regardless of side-input values;
            // narrow ones stay in the AND/OR class
            let kind = if roots.len() > 2 {
                GateKind::Xor
            } else {
                tree_kinds[rng.gen_range(0..4)]
            };
            let mut fanins = vec![deep];
            fanins.extend(roots);
            gate_meta.push((cap_name.clone(), kind, fanins));
            ff_drivers.push(cap_name);
            budget -= size;
            ff_index += 1;
        }

        // --- remaining flip-flop D pins and primary outputs -----------------
        // Capture points are spread over levels: half biased to the top
        // (long paths), half uniform (short paths too). This mirrors real
        // designs where registers terminate paths of very different length.
        for _ in ff_index..self.flip_flops {
            ff_drivers.push(self.pick_capture(&by_level, &mut unused, &mut rng));
        }
        let mut po_nets = Vec::with_capacity(self.outputs);
        for _ in 0..self.outputs {
            po_nets.push(self.pick_capture(&by_level, &mut unused, &mut rng));
        }

        for (i, d) in ff_drivers.iter().enumerate() {
            builder.add(format!("ff{i}"), GateKind::Dff, &[d.as_str()]);
        }
        for (name, kind, fanins) in &gate_meta {
            let refs: Vec<&str> = fanins.iter().map(String::as_str).collect();
            builder.add(name, *kind, &refs);
        }
        for po in &po_nets {
            builder.mark_output(po);
        }

        let circuit = builder.finish()?;
        prune_to_observed(circuit)
    }

    fn validate(&self) -> Result<(), NetlistError> {
        let fail = |message: &str| {
            Err(NetlistError::BadGeneratorConfig {
                message: message.to_owned(),
            })
        };
        if self.inputs == 0 && self.flip_flops == 0 {
            return fail("need at least one primary input or flip-flop");
        }
        if self.outputs == 0 && self.flip_flops == 0 {
            return fail("need at least one output or flip-flop");
        }
        if self.depth == 0 {
            return fail("depth must be at least 1");
        }
        if self.gates < self.depth as usize {
            return fail("need at least one gate per level (gates >= depth)");
        }
        if !(0.0..=1.0).contains(&self.xor_fraction) || !(0.0..=1.0).contains(&self.wide_fraction) {
            return fail("fractions must lie in [0, 1]");
        }
        Ok(())
    }

    fn sample_kind(&self, rng: &mut ChaCha8Rng) -> GateKind {
        let r: f64 = rng.gen();
        if r < self.xor_fraction {
            return if rng.gen() {
                GateKind::Xor
            } else {
                GateKind::Xnor
            };
        }
        // remaining mass over {NAND, NOR, AND, OR, NOT, BUF}
        match rng.gen_range(0..100u32) {
            0..=29 => GateKind::Nand,
            30..=49 => GateKind::Nor,
            50..=64 => GateKind::And,
            65..=79 => GateKind::Or,
            80..=92 => GateKind::Not,
            _ => GateKind::Buf,
        }
    }

    fn sample_arity(&self, kind: GateKind, rng: &mut ChaCha8Rng) -> usize {
        match kind {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Xor | GateKind::Xnor => 2,
            _ => {
                if rng.gen_bool(self.wide_fraction) {
                    3
                } else {
                    2
                }
            }
        }
    }

    /// Picks a fanin for a gate at `level`, preferring not-yet-used nodes.
    ///
    /// A fraction of fanins "jump" all the way down to an arbitrary lower
    /// level (often the sources). These jumps put *short* paths into the
    /// cones of deep capture points — the structure that makes short-path
    /// fault effects visible at long-path-end monitors, as in real designs
    /// where enables and status bits feed late logic directly.
    fn pick_fanin(
        &self,
        level: usize,
        by_level: &[Vec<String>],
        unused: &mut Vec<(usize, String)>,
        rng: &mut ChaCha8Rng,
    ) -> String {
        // A few tries to find an unused node below `level`.
        for _ in 0..4 {
            if unused.is_empty() {
                break;
            }
            let i = rng.gen_range(0..unused.len());
            if unused[i].0 < level {
                return unused.swap_remove(i).1;
            }
        }
        let src_level = if rng.gen_bool(0.2) {
            // long jump: uniform over all lower levels (level 0 included)
            rng.gen_range(0..level)
        } else {
            // local connection: geometrically recent level
            let mut l = level - 1;
            while l > 0 && rng.gen_bool(0.5) {
                l -= 1;
            }
            l
        };
        let pool = &by_level[src_level];
        pool[rng.gen_range(0..pool.len())].clone()
    }

    /// Picks a capture net (flip-flop D pin or primary output), spread over
    /// levels and preferring unused nets.
    fn pick_capture(
        &self,
        by_level: &[Vec<String>],
        unused: &mut Vec<(usize, String)>,
        rng: &mut ChaCha8Rng,
    ) -> String {
        let depth = by_level.len() - 1;
        // half top-biased, half uniform over gate levels
        let target_level = if rng.gen_bool(0.5) {
            depth - rng.gen_range(0..=(depth / 4))
        } else {
            rng.gen_range(1..=depth)
        };
        // prefer an unused gate near the target level
        for _ in 0..6 {
            if unused.is_empty() {
                break;
            }
            let i = rng.gen_range(0..unused.len());
            let (lvl, _) = &unused[i];
            if *lvl >= 1 && lvl.abs_diff(target_level) <= depth / 4 + 1 {
                return unused.swap_remove(i).1;
            }
        }
        let pool = &by_level[target_level];
        pool[rng.gen_range(0..pool.len())].clone()
    }
}

/// Marks gates that cannot reach any observation point as extra primary
/// outputs (rare with the used-biased fanin selection, but possible).
fn prune_to_observed(circuit: Circuit) -> Result<Circuit, NetlistError> {
    // Reverse reachability from observe points.
    let mut reaches = vec![false; circuit.len()];
    for op in circuit.observe_points() {
        reaches[op.driver.index()] = true;
    }
    for &id in circuit.topo_order().iter().rev() {
        if reaches[id.index()] {
            for &fi in circuit.node(id).fanins() {
                reaches[fi.index()] = true;
            }
        } else {
            // a node whose *any* fanout reaches is marked when that fanout
            // is processed — do a fixpoint-free pass using fanouts instead
            let reached_via_fanout = circuit
                .fanouts(id)
                .iter()
                .any(|&fo| reaches[fo.index()] && !circuit.node(fo).kind().is_sequential());
            if reached_via_fanout {
                reaches[id.index()] = true;
                for &fi in circuit.node(id).fanins() {
                    reaches[fi.index()] = true;
                }
            }
        }
    }
    let dangling: Vec<NodeId> = circuit
        .node_ids()
        .filter(|&id| !reaches[id.index()] && circuit.node(id).kind().is_combinational())
        .collect();
    if dangling.is_empty() {
        return Ok(circuit);
    }
    // Rebuild with the dangling nets promoted to primary outputs.
    let mut b = CircuitBuilder::new(circuit.name().to_owned());
    for (_, node) in circuit.iter() {
        let fanins: Vec<&str> = node
            .fanins()
            .iter()
            .map(|&f| circuit.node(f).name())
            .collect();
        b.add(node.name(), node.kind(), &fanins);
    }
    for &po in circuit.outputs() {
        b.mark_output(circuit.node(po).name());
    }
    for id in dangling {
        // only promote cone tips (no combinational fanout at all)
        if circuit
            .fanouts(id)
            .iter()
            .all(|&fo| circuit.node(fo).kind().is_sequential())
        {
            b.mark_output(circuit.node(id).name());
        }
    }
    b.finish()
}

/// Size/shape profile of a benchmark circuit, used to generate a synthetic
/// stand-in of comparable statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitProfile {
    /// Circuit name (e.g. `"s9234"`).
    pub name: String,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of scan flip-flops.
    pub flip_flops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate logic depth.
    pub depth: u32,
    /// Test-pattern budget reported by the paper for this circuit (|P| in
    /// Table I); experiments cap their generated pattern sets at this size.
    pub pattern_budget: usize,
    /// Shallow-capture gate fraction
    /// (see [`GeneratorConfig::shallow_capture_fraction`]); tuned per
    /// circuit to mirror the monitor coverage-gain spread of the paper's
    /// Table I.
    pub shallow_fraction: f64,
}

impl CircuitProfile {
    /// Looks up a profile of the paper's benchmark suite by name.
    ///
    /// Known names: `s9234`, `s13207`, `s15850`, `s35932`, `s38417`,
    /// `s38584`, `p35k`, `p45k`, `p78k`, `p89k`, `p100k`, `p141k`.
    #[must_use]
    pub fn named(name: &str) -> Option<CircuitProfile> {
        paper_suite().into_iter().find(|p| p.name == name)
    }

    /// Returns a copy scaled by `factor` in gate/flip-flop/output counts
    /// (pattern budget scales with the square root, mirroring how compacted
    /// pattern counts grow sublinearly with design size).
    ///
    /// Counts are clamped to small positive minima so even `factor = 0.01`
    /// yields a valid generator configuration.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> CircuitProfile {
        let scale = |n: usize, min: usize| ((n as f64 * factor).round() as usize).max(min);
        // Depth shrinks much slower than size: `t_min = t_nom/3` must stay
        // above the (fixed ≤ 4-level) shallow capture trees, or their fault
        // effects leak into the conventional FAST window and the monitor
        // gain of the original circuit is lost.
        let min_depth = self.depth.min(16);
        CircuitProfile {
            name: self.name.clone(),
            gates: scale(self.gates, 40),
            flip_flops: scale(self.flip_flops, 8),
            inputs: scale(self.inputs, 4),
            outputs: scale(self.outputs, 2),
            depth: ((f64::from(self.depth) * factor.sqrt()).round() as u32)
                .clamp(min_depth, self.depth),
            pattern_budget: ((self.pattern_budget as f64 * factor.sqrt()).round() as usize).max(8),
            ..self.clone()
        }
    }

    /// Generates the synthetic circuit for this profile.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::BadGeneratorConfig`] for degenerate
    /// (over-scaled-down) profiles.
    pub fn generate(&self, seed: u64) -> Result<Circuit, NetlistError> {
        GeneratorConfig::new(self.name.clone())
            .inputs(self.inputs)
            .outputs(self.outputs)
            .flip_flops(self.flip_flops)
            .gates(self.gates.max(self.depth as usize))
            .depth(self.depth)
            .shallow_capture_fraction(self.shallow_fraction)
            .generate(seed)
    }
}

/// Profiles for the twelve circuits of Table I of the paper.
///
/// Gate and flip-flop counts are taken from the paper; input/output counts
/// for the industrial circuits are derived from the paper's monitor counts
/// (`|M| = 0.25 · (POs + FFs)` ⇒ `POs = 4·|M| − FFs`). Depths are plausible
/// synthesis depths growing slowly with size.
#[must_use]
pub fn paper_suite() -> Vec<CircuitProfile> {
    let mk = |name: &str, gates, ffs, pos: usize, patterns, depth, shallow| CircuitProfile {
        name: name.to_owned(),
        gates,
        flip_flops: ffs,
        inputs: pos.max(16),
        outputs: pos,
        depth,
        pattern_budget: patterns,
        shallow_fraction: shallow,
    };
    vec![
        mk("s9234", 1766, 228, 24, 155, 20, 0.09),
        mk("s13207", 2867, 669, 123, 195, 22, 0.53),
        mk("s15850", 3324, 597, 79, 134, 24, 0.56),
        mk("s35932", 11168, 1728, 324, 39, 12, 0.03),
        mk("s38417", 9796, 1636, 104, 128, 22, 0.19),
        mk("s38584", 12213, 1450, 254, 160, 24, 0.31),
        mk("p35k", 23294, 2173, 59, 1518, 30, 0.36),
        mk("p45k", 25406, 2331, 221, 2719, 28, 0.36),
        mk("p78k", 70495, 2977, 511, 70, 16, 0.03),
        mk("p89k", 58726, 4301, 259, 993, 32, 0.62),
        mk("p100k", 60767, 5735, 97, 2631, 32, 0.42),
        mk("p141k", 107655, 10501, 63, 824, 36, 0.30),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::new("det").gates(150).depth(8);
        let a = cfg.clone().generate(1).unwrap();
        let b = cfg.clone().generate(1).unwrap();
        let c = cfg.generate(2).unwrap();
        assert_eq!(crate::bench::to_string(&a), crate::bench::to_string(&b));
        assert_ne!(crate::bench::to_string(&a), crate::bench::to_string(&c));
    }

    #[test]
    fn respects_counts() {
        let c = GeneratorConfig::new("counts")
            .inputs(10)
            .outputs(5)
            .flip_flops(12)
            .gates(300)
            .depth(15)
            .generate(3)
            .unwrap();
        assert_eq!(c.inputs().len(), 10);
        assert!(c.outputs().len() >= 5, "dangling promotion may add POs");
        assert_eq!(c.flip_flops().len(), 12);
        assert_eq!(c.combinational_nodes().count(), 300);
    }

    #[test]
    fn reaches_target_depth_roughly() {
        let c = GeneratorConfig::new("depth")
            .gates(400)
            .depth(20)
            .generate(5)
            .unwrap();
        assert!(
            c.max_level() >= 15,
            "max level {} too shallow",
            c.max_level()
        );
        // shallow-capture gates may add one level on top of the deep pool
        assert!(c.max_level() <= 22);
    }

    #[test]
    fn every_gate_reaches_an_observe_point() {
        let c = GeneratorConfig::new("observed")
            .gates(250)
            .depth(12)
            .generate(9)
            .unwrap();
        // reverse reachability from observe points must cover all gates
        let mut reaches = vec![false; c.len()];
        for op in c.observe_points() {
            reaches[op.driver.index()] = true;
        }
        for &id in c.topo_order().iter().rev() {
            if reaches[id.index()] {
                for &fi in c.node(id).fanins() {
                    reaches[fi.index()] = true;
                }
            }
        }
        for id in c.combinational_nodes() {
            assert!(
                reaches[id.index()],
                "gate {} unobservable",
                c.node(id).name()
            );
        }
    }

    #[test]
    fn capture_levels_are_spread() {
        // shallow capture trees disabled: this checks the spread of the
        // *plain* capture picker
        let c = GeneratorConfig::new("spread")
            .flip_flops(40)
            .gates(600)
            .depth(20)
            .shallow_capture_fraction(0.0)
            .generate(11)
            .unwrap();
        let levels: Vec<u32> = c
            .flip_flops()
            .iter()
            .map(|&ff| c.level(c.node(ff).fanins()[0]))
            .collect();
        let lo = levels.iter().filter(|&&l| l <= 7).count();
        let hi = levels.iter().filter(|&&l| l >= 14).count();
        assert!(lo >= 3, "want some short-path captures, got {lo}");
        assert!(hi >= 3, "want some long-path captures, got {hi}");
    }

    #[test]
    fn paper_suite_has_twelve() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 12);
        assert!(CircuitProfile::named("p89k").is_some());
        assert!(CircuitProfile::named("nope").is_none());
    }

    #[test]
    fn scaled_profile_generates() {
        let p = CircuitProfile::named("s13207").unwrap().scaled(0.05);
        let c = p.generate(1).unwrap();
        assert!(c.combinational_nodes().count() >= 100);
        assert!(c.flip_flops().len() >= 8);
    }

    #[test]
    fn degenerate_config_rejected() {
        assert!(GeneratorConfig::new("x")
            .inputs(0)
            .flip_flops(0)
            .generate(0)
            .is_err());
        assert!(GeneratorConfig::new("x")
            .gates(5)
            .depth(10)
            .generate(0)
            .is_err());
        assert!(GeneratorConfig::new("x").depth(0).generate(0).is_err());
    }
}
