//! Reader and writer for the ISCAS'89 `.bench` netlist format.
//!
//! The format is line oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NOR(G14, G11)
//! G5  = DFF(G10)
//! ```
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fastmon_netlist::NetlistError> {
//! use fastmon_netlist::bench;
//!
//! let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
//! let circuit = bench::parse(text, "tiny")?;
//! assert_eq!(circuit.len(), 3);
//! let round_trip = bench::parse(&bench::to_string(&circuit), "tiny")?;
//! assert_eq!(round_trip.len(), circuit.len());
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError};

/// Parses ISCAS'89 `.bench` text into a [`Circuit`] named `name`.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBench`] for malformed lines and the usual
/// construction errors ([`NetlistError::UndrivenNet`],
/// [`NetlistError::DuplicateDriver`], …) for structurally broken netlists.
pub fn parse(text: &str, name: impl Into<String>) -> Result<Circuit, NetlistError> {
    let mut builder = CircuitBuilder::new(name);
    let mut outputs: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;

        if let Some(rest) = parse_directive(line, "INPUT") {
            let net = rest.map_err(|m| err(lineno, m))?;
            builder.add(net, GateKind::Input, &[]);
        } else if let Some(rest) = parse_directive(line, "OUTPUT") {
            let net = rest.map_err(|m| err(lineno, m))?;
            outputs.push(net.to_owned());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim();
            if lhs.is_empty() {
                return Err(err(lineno, "missing net name before `=`".into()));
            }
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(lineno, format!("expected `KIND(...)`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(err(lineno, format!("missing closing `)` in `{rhs}`")));
            }
            let kind: GateKind = rhs[..open]
                .trim()
                .parse()
                .map_err(|e| err(lineno, format!("{e}")))?;
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanins: Vec<&str> = args
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            builder.add(lhs, kind, &fanins);
        } else {
            return Err(err(lineno, format!("unrecognized line `{line}`")));
        }
    }

    for o in outputs {
        builder.mark_output(o);
    }
    builder.finish()
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_directive<'a>(line: &'a str, keyword: &str) -> Option<Result<&'a str, String>> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = match rest.strip_prefix('(') {
        Some(r) => r,
        None => return Some(Err(format!("expected `(` after {keyword}"))),
    };
    let rest = match rest.strip_suffix(')') {
        Some(r) => r.trim(),
        None => return Some(Err(format!("missing `)` after {keyword}("))),
    };
    if rest.is_empty() {
        return Some(Err(format!("{keyword}() with empty net name")));
    }
    Some(Ok(rest))
}

fn err(line: usize, message: String) -> NetlistError {
    NetlistError::ParseBench { line, message }
}

/// Serializes a [`Circuit`] to `.bench` text.
///
/// The output parses back (see [`parse`]) to an equivalent circuit:
/// identical node set, fanins and outputs. Constants are emitted using the
/// `CONST0`/`CONST1` keywords, which this crate's parser accepts.
#[must_use]
pub fn to_string(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &pi in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(pi).name());
    }
    for &po in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(po).name());
    }
    for (_, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 | GateKind::Const1 => {
                let _ = writeln!(out, "{} = {}()", node.name(), node.kind());
            }
            _ => {
                let fanins: Vec<&str> = node
                    .fanins()
                    .iter()
                    .map(|&f| circuit.node(f).name())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    node.name(),
                    node.kind(),
                    fanins.join(", ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a small sequential sample
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = NOR(a, q)
y = NAND(b, q)   # trailing comment
";

    #[test]
    fn parses_sample() {
        let c = parse(SAMPLE, "sample").unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.flip_flops().len(), 1);
        let d = c.find("d").unwrap();
        assert_eq!(c.node(d).kind(), GateKind::Nor);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = parse(SAMPLE, "sample").unwrap();
        let text = to_string(&c);
        let c2 = parse(&text, "sample").unwrap();
        assert_eq!(c.len(), c2.len());
        assert_eq!(c.inputs().len(), c2.inputs().len());
        assert_eq!(c.outputs().len(), c2.outputs().len());
        for (id, node) in c.iter() {
            let id2 = c2.find(node.name()).expect("node survives round trip");
            assert_eq!(c2.node(id2).kind(), node.kind());
            assert_eq!(c2.node(id2).fanins().len(), c.node(id).fanins().len());
        }
    }

    #[test]
    fn rejects_garbage_line() {
        let e = parse("INPUT(a)\nwat\n", "bad").unwrap_err();
        assert!(matches!(e, NetlistError::ParseBench { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_kind() {
        let e = parse("INPUT(a)\nx = FROB(a)\n", "bad").unwrap_err();
        assert!(matches!(e, NetlistError::ParseBench { line: 2, .. }));
    }

    #[test]
    fn rejects_missing_paren() {
        assert!(parse("INPUT a\n", "bad").is_err());
        assert!(parse("INPUT(a\n", "bad").is_err());
        assert!(parse("x = AND(a, b\n", "bad").is_err());
    }

    #[test]
    fn whitespace_and_case_tolerant() {
        let c = parse("INPUT( a )\n y  =  nand( a , a )\nOUTPUT( y )\n", "ws").unwrap();
        assert_eq!(c.len(), 2);
        let y = c.find("y").unwrap();
        assert_eq!(c.node(y).kind(), GateKind::Nand);
    }

    #[test]
    fn comment_only_and_empty_lines_ignored() {
        let c = parse("\n# nothing\n   \nINPUT(a)\nOUTPUT(a)\n", "c").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn const_gates_round_trip() {
        let text = "INPUT(a)\nz = CONST0()\ny = OR(a, z)\nOUTPUT(y)\n";
        let c = parse(text, "consts").unwrap();
        let z = c.find("z").unwrap();
        assert_eq!(c.node(z).kind(), GateKind::Const0);
        let c2 = parse(&to_string(&c), "consts").unwrap();
        assert_eq!(c2.node(c2.find("z").unwrap()).kind(), GateKind::Const0);
    }
}
