//! Netlist transformations.
//!
//! Currently one transform: [`decompose_wide_gates`], which rewrites gates
//! above a fanin limit into balanced trees of narrower gates. Parsed
//! benchmark netlists occasionally contain very wide AND/OR gates; the
//! delay model penalizes arity linearly, whereas real libraries implement
//! wide functions as trees — this transform restores that structure.

use crate::{Circuit, CircuitBuilder, GateKind, NetlistError, NodeId};

/// Rewrites every AND/NAND/OR/NOR/XOR/XNOR gate with more than `max_arity`
/// inputs into a balanced tree of gates with at most `max_arity` inputs.
///
/// Inverting gates become a tree of their non-inverting counterpart with a
/// single inverting root, preserving the function exactly. Names of the
/// introduced tree gates derive from the original gate
/// (`<name>__w0`, `__w1`, …); the root keeps the original name, so primary
/// outputs and flip-flop connections are untouched.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for well-formed inputs).
///
/// # Panics
///
/// Panics if `max_arity < 2`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fastmon_netlist::NetlistError> {
/// use fastmon_netlist::{transform, CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("wide");
/// for i in 0..6 {
///     b.add(format!("i{i}"), GateKind::Input, &[]);
/// }
/// b.add("y", GateKind::Nand, &["i0", "i1", "i2", "i3", "i4", "i5"]);
/// b.mark_output("y");
/// let wide = b.finish()?;
///
/// let narrow = transform::decompose_wide_gates(&wide, 2)?;
/// assert!(narrow
///     .combinational_nodes()
///     .all(|id| narrow.node(id).fanins().len() <= 2));
/// // same function: NAND of six ones is 0
/// let all_ones = narrow.eval_steady(|_| true);
/// let y = narrow.find("y").unwrap();
/// assert!(!all_ones[y.index()]);
/// # Ok(())
/// # }
/// ```
pub fn decompose_wide_gates(circuit: &Circuit, max_arity: usize) -> Result<Circuit, NetlistError> {
    assert!(max_arity >= 2, "max_arity must be at least 2");
    let mut b = CircuitBuilder::new(circuit.name().to_owned());

    for (id, node) in circuit.iter() {
        let fanin_names: Vec<String> = node
            .fanins()
            .iter()
            .map(|&fi| circuit.node(fi).name().to_owned())
            .collect();
        let kind = node.kind();
        if !kind.is_combinational() || fanin_names.len() <= max_arity {
            let refs: Vec<&str> = fanin_names.iter().map(String::as_str).collect();
            b.add(node.name(), kind, &refs);
            continue;
        }
        decompose_one(&mut b, circuit, id, kind, fanin_names, max_arity);
    }
    for &po in circuit.outputs() {
        b.mark_output(circuit.node(po).name());
    }
    b.finish()
}

fn decompose_one(
    b: &mut CircuitBuilder,
    circuit: &Circuit,
    id: NodeId,
    kind: GateKind,
    fanins: Vec<String>,
    max_arity: usize,
) {
    // tree of the associative base function, inverting root if needed
    let (base, invert_root) = match kind {
        GateKind::And => (GateKind::And, false),
        GateKind::Nand => (GateKind::And, true),
        GateKind::Or => (GateKind::Or, false),
        GateKind::Nor => (GateKind::Or, true),
        GateKind::Xor => (GateKind::Xor, false),
        GateKind::Xnor => (GateKind::Xor, true),
        _ => unreachable!("only wide associative gates are decomposed"),
    };
    let name = circuit.node(id).name();
    let mut queue: std::collections::VecDeque<String> = fanins.into();
    let mut fresh = 0usize;
    while queue.len() > max_arity {
        let group: Vec<String> = (0..max_arity).filter_map(|_| queue.pop_front()).collect();
        let tree_name = format!("{name}__w{fresh}");
        fresh += 1;
        let refs: Vec<&str> = group.iter().map(String::as_str).collect();
        b.add(&tree_name, base, &refs);
        queue.push_back(tree_name);
    }
    let root_kind = if invert_root {
        match base {
            GateKind::And => GateKind::Nand,
            GateKind::Or => GateKind::Nor,
            GateKind::Xor => GateKind::Xnor,
            _ => unreachable!(),
        }
    } else {
        base
    };
    let rest: Vec<String> = queue.into();
    let refs: Vec<&str> = rest.iter().map(String::as_str).collect();
    b.add(name, root_kind, &refs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn wide_circuit(kind: GateKind, arity: usize) -> Circuit {
        let mut b = CircuitBuilder::new("wide");
        let names: Vec<String> = (0..arity).map(|i| format!("i{i}")).collect();
        for n in &names {
            b.add(n, GateKind::Input, &[]);
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.add("y", kind, &refs);
        b.mark_output("y");
        b.finish().unwrap()
    }

    #[test]
    fn functions_preserved_for_all_kinds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for arity in [3usize, 5, 9] {
                let wide = wide_circuit(kind, arity);
                let narrow = decompose_wide_gates(&wide, 2).unwrap();
                assert!(narrow
                    .combinational_nodes()
                    .all(|id| narrow.node(id).fanins().len() <= 2));
                // compare on random assignments
                for _ in 0..32 {
                    let bits: Vec<bool> = (0..arity).map(|_| rng.gen()).collect();
                    let assign = |c: &Circuit| {
                        let vals = c.eval_steady(|id| {
                            c.inputs()
                                .iter()
                                .position(|&pi| pi == id)
                                .map(|k| bits[k])
                                .unwrap_or(false)
                        });
                        vals[c.find("y").unwrap().index()]
                    };
                    assert_eq!(assign(&wide), assign(&narrow), "{kind} arity {arity}");
                }
            }
        }
    }

    #[test]
    fn narrow_gates_untouched() {
        let wide = wide_circuit(GateKind::And, 3);
        let same = decompose_wide_gates(&wide, 3).unwrap();
        assert_eq!(same.len(), wide.len());
    }

    #[test]
    fn outputs_and_ffs_keep_their_nets() {
        let mut b = CircuitBuilder::new("seq");
        for i in 0..5 {
            b.add(format!("i{i}"), GateKind::Input, &[]);
        }
        b.add("y", GateKind::Nor, &["i0", "i1", "i2", "i3", "q"]);
        b.add("q", GateKind::Dff, &["y"]);
        b.mark_output("y");
        let c = b.finish().unwrap();
        let d = decompose_wide_gates(&c, 2).unwrap();
        // the flip-flop still sees the net called "y"
        let q = d.find("q").unwrap();
        assert_eq!(d.node(d.node(q).fanins()[0]).name(), "y");
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.flip_flops().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn unit_arity_rejected() {
        let wide = wide_circuit(GateKind::And, 4);
        let _ = decompose_wide_gates(&wide, 1);
    }
}
