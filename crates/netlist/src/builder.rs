use std::collections::HashMap;

use crate::{Circuit, GateKind, NetlistError, NodeId};

/// Incremental construction of a [`Circuit`] by net name.
///
/// Gates may be added in any order; fanins are referenced by name and
/// resolved when [`CircuitBuilder::finish`] is called. Names follow the
/// ISCAS convention: every gate is named after the net it drives.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fastmon_netlist::NetlistError> {
/// use fastmon_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("half_adder");
/// b.add("a", GateKind::Input, &[]);
/// b.add("b", GateKind::Input, &[]);
/// b.add("sum", GateKind::Xor, &["a", "b"]);
/// b.add("carry", GateKind::And, &["a", "b"]);
/// b.mark_output("sum");
/// b.mark_output("carry");
/// let circuit = b.finish()?;
/// assert_eq!(circuit.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    gates: Vec<(String, GateKind, Vec<String>)>,
    outputs: Vec<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a gate driving net `name` with the given kind and fanin nets.
    ///
    /// Returns `&mut self` for chaining.
    pub fn add(&mut self, name: impl Into<String>, kind: GateKind, fanins: &[&str]) -> &mut Self {
        self.gates.push((
            name.into(),
            kind,
            fanins.iter().map(|s| (*s).to_owned()).collect(),
        ));
        self
    }

    /// Marks net `name` as a primary output.
    pub fn mark_output(&mut self, name: impl Into<String>) -> &mut Self {
        self.outputs.push(name.into());
        self
    }

    /// Number of gates added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if no gates have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Resolves names and validates the netlist into a [`Circuit`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateDriver`] if two gates drive the same net,
    /// * [`NetlistError::UndrivenNet`] if a fanin or output net has no driver,
    /// * [`NetlistError::BadArity`] for illegal fanin counts,
    /// * [`NetlistError::CombinationalCycle`] if the combinational core is
    ///   cyclic.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let mut index: HashMap<&str, NodeId> = HashMap::with_capacity(self.gates.len());
        for (i, (name, _, _)) in self.gates.iter().enumerate() {
            if index.insert(name.as_str(), NodeId::from_index(i)).is_some() {
                return Err(NetlistError::DuplicateDriver { net: name.clone() });
            }
        }

        // resolve straight into the CSR fanin arena — no per-node Vec
        let total_fanins: usize = self.gates.iter().map(|(_, _, f)| f.len()).sum();
        let mut names = Vec::with_capacity(self.gates.len());
        let mut kinds = Vec::with_capacity(self.gates.len());
        let mut fanins = Vec::with_capacity(total_fanins);
        let mut fanin_offsets = Vec::with_capacity(self.gates.len() + 1);
        fanin_offsets.push(0u32);
        for (name, kind, fanin_names) in &self.gates {
            for fi in fanin_names {
                let id = index
                    .get(fi.as_str())
                    .copied()
                    .ok_or_else(|| NetlistError::UndrivenNet { net: fi.clone() })?;
                fanins.push(id);
            }
            names.push(name.clone());
            kinds.push(*kind);
            fanin_offsets.push(
                u32::try_from(fanins.len())
                    .unwrap_or_else(|_| panic!("fanin arena exceeds u32 range")),
            );
        }

        let mut outputs = Vec::with_capacity(self.outputs.len());
        for o in &self.outputs {
            let id = index
                .get(o.as_str())
                .copied()
                .ok_or_else(|| NetlistError::UndrivenNet { net: o.clone() })?;
            outputs.push(id);
        }

        Circuit::from_parts(self.name, names, kinds, fanins, fanin_offsets, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_driver_rejected() {
        let mut b = CircuitBuilder::new("dup");
        b.add("a", GateKind::Input, &[]);
        b.add("a", GateKind::Input, &[]);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateDriver { .. })
        ));
    }

    #[test]
    fn undriven_fanin_rejected() {
        let mut b = CircuitBuilder::new("undriven");
        b.add("x", GateKind::Not, &["ghost"]);
        b.mark_output("x");
        assert!(matches!(b.finish(), Err(NetlistError::UndrivenNet { .. })));
    }

    #[test]
    fn undriven_output_rejected() {
        let mut b = CircuitBuilder::new("undriven_out");
        b.add("a", GateKind::Input, &[]);
        b.mark_output("nope");
        assert!(matches!(b.finish(), Err(NetlistError::UndrivenNet { .. })));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new("arity");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("x", GateKind::Not, &["a", "b"]);
        b.mark_output("x");
        assert!(matches!(b.finish(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn fanin_order_preserved() {
        let mut b = CircuitBuilder::new("order");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("x", GateKind::And, &["b", "a"]);
        b.mark_output("x");
        let c = b.finish().unwrap();
        let x = c.find("x").unwrap();
        let names: Vec<&str> = c
            .node(x)
            .fanins()
            .iter()
            .map(|&f| c.node(f).name())
            .collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn empty_builder_finishes() {
        let c = CircuitBuilder::new("empty").finish().unwrap();
        assert!(c.is_empty());
    }
}
