use std::fmt;

/// Errors produced while constructing or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate references a net name that is never driven.
    UndrivenNet {
        /// Name of the missing driver net.
        net: String,
    },
    /// The same net name is driven by two different gates.
    DuplicateDriver {
        /// Name of the doubly-driven net.
        net: String,
    },
    /// The combinational core contains a cycle (after cutting flip-flops).
    CombinationalCycle {
        /// Name of a node on the detected cycle.
        node: String,
    },
    /// A gate was declared with an arity its kind does not allow.
    BadArity {
        /// The offending gate kind.
        kind: crate::GateKind,
        /// Name of the gate instance.
        node: String,
        /// Number of fanins that were supplied.
        got: usize,
    },
    /// A `.bench` line could not be parsed.
    ParseBench {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The circuit generator was asked for an impossible configuration.
    BadGeneratorConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A circuit is empty (no gates at all) where the consuming flow needs
    /// at least one node — e.g. [`HdfTestFlow::try_prepare`] rejects it
    /// instead of deriving a zero-length clock.
    ///
    /// [`HdfTestFlow::try_prepare`]: https://docs.rs/fastmon-core
    EmptyCircuit {
        /// Name of the empty circuit.
        circuit: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet { net } => {
                write!(f, "net `{net}` is referenced but never driven")
            }
            NetlistError::DuplicateDriver { net } => {
                write!(f, "net `{net}` is driven by more than one gate")
            }
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node `{node}`")
            }
            NetlistError::BadArity { kind, node, got } => {
                write!(f, "gate `{node}` of kind {kind} cannot take {got} fanins")
            }
            NetlistError::ParseBench { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::BadGeneratorConfig { message } => {
                write!(f, "invalid generator configuration: {message}")
            }
            NetlistError::EmptyCircuit { circuit } => {
                write!(f, "circuit `{circuit}` is empty (no gates)")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::UndrivenNet { net: "a".into() },
            NetlistError::DuplicateDriver { net: "b".into() },
            NetlistError::CombinationalCycle { node: "c".into() },
            NetlistError::ParseBench {
                line: 3,
                message: "nope".into(),
            },
            NetlistError::BadGeneratorConfig {
                message: "zero gates".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('`'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
