use std::collections::VecDeque;
use std::fmt;

use crate::{GateKind, NetlistError};

/// Index of a node (gate instance) inside a [`Circuit`].
///
/// `NodeId`s are dense: every id in `0..circuit.len()` is valid for the
/// circuit that produced it. Ids from one circuit must not be used with
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Intended for sibling `fastmon` crates that store node ids in dense
    /// tables; passing an index that is out of range for the target circuit
    /// leads to panics on use, not undefined behaviour.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(
            u32::try_from(index).unwrap_or_else(|_| panic!("node index {index} exceeds u32 range")),
        )
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<NodeId>,
}

impl Node {
    /// The net/instance name (ISCAS naming: the gate is named after the net
    /// it drives).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate kind.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in pin order.
    #[must_use]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }
}

/// A reference to a specific pin of a gate — the granularity at which small
/// delay faults are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PinRef {
    /// The output pin of a gate.
    Output(NodeId),
    /// The `pin`-th input pin of a gate (index into [`Node::fanins`]).
    Input(NodeId, u8),
}

impl PinRef {
    /// The gate the pin belongs to.
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            PinRef::Output(n) | PinRef::Input(n, _) => n,
        }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinRef::Output(n) => write!(f, "{n}/Z"),
            PinRef::Input(n, k) => write!(f, "{n}/A{k}"),
        }
    }
}

/// What kind of capture element observes a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObserveKind {
    /// A primary output captured by the tester.
    PrimaryOutput,
    /// A pseudo-primary output: the D pin of a scan flip-flop.
    PseudoOutput {
        /// The flip-flop whose D pin captures the signal.
        dff: NodeId,
    },
}

/// An observation point of the full-scan circuit: the signal captured at a
/// primary output or at a flip-flop D pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservePoint {
    /// The node whose output signal is captured.
    pub driver: NodeId,
    /// Whether this is a primary or pseudo-primary output.
    pub kind: ObserveKind,
}

impl ObservePoint {
    /// Returns `true` for pseudo-primary outputs (flip-flop D pins) — the
    /// only places where delay monitors can be inserted.
    #[must_use]
    pub fn is_pseudo(&self) -> bool {
        matches!(self.kind, ObserveKind::PseudoOutput { .. })
    }
}

/// A levelized full-scan gate-level circuit.
///
/// The sequential netlist is stored as parsed; for delay test the circuit is
/// interpreted through its *combinational core*: flip-flop outputs are
/// pseudo-primary inputs, flip-flop D pins are pseudo-primary outputs, and
/// the edges into flip-flops are cut when levelizing.
///
/// Construct circuits with [`CircuitBuilder`](crate::CircuitBuilder), the
/// [`bench`](crate::bench) parser or the [`generate`](crate::generate)
/// module.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
    // Derived structure.
    fanouts: Vec<Vec<NodeId>>,
    level: Vec<u32>,
    topo: Vec<NodeId>,
    max_level: u32,
    inputs: Vec<NodeId>,
    flip_flops: Vec<NodeId>,
    observe_points: Vec<ObservePoint>,
}

impl Circuit {
    /// Builds a circuit from parts, validating arities and acyclicity.
    ///
    /// `outputs` lists the nodes whose output nets are primary outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if a node's fanin count is illegal
    /// for its kind and [`NetlistError::CombinationalCycle`] if the
    /// combinational core (flip-flop inputs cut) is cyclic.
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, NetlistError> {
        for node in &nodes {
            if !node.kind.arity_ok(node.fanins.len()) {
                return Err(NetlistError::BadArity {
                    kind: node.kind,
                    node: node.name.clone(),
                    got: node.fanins.len(),
                });
            }
        }

        let n = nodes.len();
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            for &fi in &node.fanins {
                fanouts[fi.index()].push(NodeId::from_index(i));
            }
        }

        // Levelize the combinational core with Kahn's algorithm. Sources and
        // flip-flops start at level 0; edges into flip-flops are cut.
        let mut indeg = vec![0usize; n];
        for (i, node) in nodes.iter().enumerate() {
            if node.kind.is_combinational() {
                indeg[i] = node.fanins.len();
            }
        }
        let mut level = vec![0u32; n];
        let mut topo = Vec::with_capacity(n);
        let mut queue: VecDeque<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(NodeId::from_index)
            .collect();
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            for &fo in &fanouts[id.index()] {
                let fi = fo.index();
                if nodes[fi].kind.is_combinational() {
                    level[fi] = level[fi].max(level[id.index()] + 1);
                    indeg[fi] -= 1;
                    if indeg[fi] == 0 {
                        queue.push_back(fo);
                    }
                }
            }
        }
        if topo.len() != n {
            let on_cycle = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| nodes[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { node: on_cycle });
        }
        // `topo` from Kahn's BFS is already a valid topological order; sort
        // it by (level, id) so iteration is deterministic and level-grouped.
        topo.sort_by_key(|id| (level[id.index()], id.index()));
        let max_level = level.iter().copied().max().unwrap_or(0);

        let inputs: Vec<NodeId> = (0..n)
            .filter(|&i| nodes[i].kind == GateKind::Input)
            .map(NodeId::from_index)
            .collect();
        let flip_flops: Vec<NodeId> = (0..n)
            .filter(|&i| nodes[i].kind == GateKind::Dff)
            .map(NodeId::from_index)
            .collect();

        let mut observe_points: Vec<ObservePoint> = outputs
            .iter()
            .map(|&o| ObservePoint {
                driver: o,
                kind: ObserveKind::PrimaryOutput,
            })
            .collect();
        observe_points.extend(flip_flops.iter().map(|&ff| ObservePoint {
            driver: nodes[ff.index()].fanins[0],
            kind: ObserveKind::PseudoOutput { dff: ff },
        }));

        Ok(Circuit {
            name,
            nodes,
            outputs,
            fanouts,
            level,
            topo,
            max_level,
            inputs,
            flip_flops,
            observe_points,
        })
    }

    /// The circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (gates, inputs and flip-flops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the circuit has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all `(NodeId, &Node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Nodes whose output nets are primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops (scan cells).
    #[must_use]
    pub fn flip_flops(&self) -> &[NodeId] {
        &self.flip_flops
    }

    /// Observation points: primary outputs first, then pseudo-primary
    /// outputs (flip-flop D pins) in flip-flop order.
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe_points
    }

    /// The fanout nodes of `id` (all gates with `id` among their fanins,
    /// including flip-flops capturing the signal).
    #[must_use]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// The combinational level of a node: 0 for sources and flip-flops,
    /// `1 + max(level of fanins)` for combinational gates.
    #[must_use]
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum combinational level (logic depth) of the circuit.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// All nodes in a topological order of the combinational core: sources
    /// and flip-flops first, then combinational gates grouped by level.
    #[must_use]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Ids of all combinational gates, in topological order.
    pub fn combinational_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo
            .iter()
            .copied()
            .filter(move |&id| self.nodes[id.index()].kind.is_combinational())
    }

    /// The sources of the combinational core: primary inputs, constants and
    /// flip-flop outputs (pseudo-primary inputs).
    pub fn combinational_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo
            .iter()
            .copied()
            .filter(move |&id| !self.nodes[id.index()].kind.is_combinational())
    }

    /// Computes the transitive combinational fanout cone of `seed`
    /// (inclusive), in topological order. Traversal stops at flip-flops:
    /// they are not included (their D pins are capture points).
    #[must_use]
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.nodes.len()];
        in_cone[seed.index()] = true;
        let mut cone = Vec::new();
        // topo order guarantees fanins are visited before fanouts
        for &id in &self.topo {
            let idx = id.index();
            if !in_cone[idx] {
                continue;
            }
            cone.push(id);
            for &fo in &self.fanouts[idx] {
                if self.nodes[fo.index()].kind.is_combinational() {
                    in_cone[fo.index()] = true;
                }
            }
        }
        cone
    }

    /// Computes the transitive combinational fanin cone of `seed`
    /// (inclusive), in topological order. Traversal stops at sources and
    /// flip-flops (which are included as the cone's inputs but not expanded
    /// further).
    #[must_use]
    pub fn fanin_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.nodes.len()];
        in_cone[seed.index()] = true;
        // reverse topological sweep marks fanins of marked nodes
        for &id in self.topo.iter().rev() {
            if in_cone[id.index()] && self.nodes[id.index()].kind.is_combinational() {
                for &fi in &self.nodes[id.index()].fanins {
                    in_cone[fi.index()] = true;
                }
            }
        }
        // emit in topological order
        self.topo
            .iter()
            .copied()
            .filter(|id| in_cone[id.index()])
            .collect()
    }

    /// The observation points whose captured signal lies in the fanout cone
    /// of `seed`, as indices into [`Circuit::observe_points`].
    #[must_use]
    pub fn observing_points_of(&self, seed: NodeId) -> Vec<usize> {
        let cone = self.fanout_cone(seed);
        let mut in_cone = vec![false; self.nodes.len()];
        for &id in &cone {
            in_cone[id.index()] = true;
        }
        self.observe_points
            .iter()
            .enumerate()
            .filter(|(_, op)| in_cone[op.driver.index()])
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates the steady-state value of every node for the given
    /// assignment of combinational sources.
    ///
    /// `source_value` is queried for primary inputs and flip-flops (their
    /// current state); constants evaluate to themselves. The returned vector
    /// is indexed by [`NodeId::index`].
    pub fn eval_steady<F: Fn(NodeId) -> bool>(&self, source_value: F) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        let mut ins: Vec<bool> = Vec::new();
        for &id in &self.topo {
            let node = &self.nodes[id.index()];
            values[id.index()] = match node.kind {
                GateKind::Input | GateKind::Dff => source_value(id),
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                _ => {
                    ins.clear();
                    ins.extend(node.fanins.iter().map(|&fi| values[fi.index()]));
                    node.kind.eval(&ins)
                }
            };
        }
        values
    }

    /// Looks up a node by name (linear scan; intended for tests and small
    /// circuits).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    fn tiny() -> crate::Circuit {
        // a, b inputs; f = DFF(g); g = AND(a, f); o = NAND(g, b); output o
        let mut b = CircuitBuilder::new("tiny");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("f", GateKind::Dff, &["g"]);
        b.add("g", GateKind::And, &["a", "f"]);
        b.add("o", GateKind::Nand, &["g", "b"]);
        b.mark_output("o");
        b.finish().expect("valid circuit")
    }

    #[test]
    fn levels_and_topo() {
        let c = tiny();
        let g = c.find("g").unwrap();
        let o = c.find("o").unwrap();
        let f = c.find("f").unwrap();
        assert_eq!(c.level(f), 0);
        assert_eq!(c.level(g), 1);
        assert_eq!(c.level(o), 2);
        assert_eq!(c.max_level(), 2);
        let topo = c.topo_order();
        let pos = |id| topo.iter().position(|&x| x == id).unwrap();
        assert!(pos(g) < pos(o));
        assert!(pos(f) < pos(g));
    }

    #[test]
    fn observe_points_cover_po_and_ppo() {
        let c = tiny();
        let ops = c.observe_points();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].driver, c.find("o").unwrap());
        assert!(!ops[0].is_pseudo());
        assert_eq!(ops[1].driver, c.find("g").unwrap());
        assert!(ops[1].is_pseudo());
    }

    #[test]
    fn fanout_cone_stops_at_dff() {
        let c = tiny();
        let a = c.find("a").unwrap();
        let cone = c.fanout_cone(a);
        let names: Vec<&str> = cone.iter().map(|&id| c.node(id).name()).collect();
        assert_eq!(names, vec!["a", "g", "o"]);
    }

    #[test]
    fn fanin_cone_collects_support() {
        let c = tiny();
        let o = c.find("o").unwrap();
        let mut names: Vec<&str> = c
            .fanin_cone(o)
            .iter()
            .map(|&id| c.node(id).name())
            .collect();
        names.sort_unstable();
        // o = NAND(g, b), g = AND(a, f): support = {a, b, f, g, o}
        assert_eq!(names, vec!["a", "b", "f", "g", "o"]);
        // the cone stops at the flip-flop: its fanin net g10... (f's D pin)
        // is not expanded further — `f` is a leaf here
        let f = c.find("f").unwrap();
        assert_eq!(c.fanin_cone(f), vec![f]);
    }

    #[test]
    fn observing_points_of_cone() {
        let c = tiny();
        let b_in = c.find("b").unwrap();
        // b only reaches the primary output o
        assert_eq!(c.observing_points_of(b_in), vec![0]);
        let a_in = c.find("a").unwrap();
        // a reaches both o (PO) and g (PPO via DFF f)
        assert_eq!(c.observing_points_of(a_in), vec![0, 1]);
    }

    #[test]
    fn eval_steady_matches_logic() {
        let c = tiny();
        let a = c.find("a").unwrap();
        let b_in = c.find("b").unwrap();
        let f = c.find("f").unwrap();
        let values = c.eval_steady(|id| id == a || id == f);
        // g = AND(a=1, f=1) = 1; o = NAND(g=1, b=0) = 1
        assert!(values[c.find("g").unwrap().index()]);
        assert!(values[c.find("o").unwrap().index()]);
        let values = c.eval_steady(|id| id == a || id == b_in || id == f);
        // o = NAND(1,1) = 0
        assert!(!values[c.find("o").unwrap().index()]);
    }

    #[test]
    fn cycle_detection() {
        let mut b = CircuitBuilder::new("cyclic");
        b.add("a", GateKind::Input, &[]);
        b.add("x", GateKind::And, &["a", "y"]);
        b.add("y", GateKind::And, &["a", "x"]);
        b.mark_output("y");
        assert!(matches!(
            b.finish(),
            Err(crate::NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        // feedback through a flip-flop is legal
        let mut b = CircuitBuilder::new("seq");
        b.add("a", GateKind::Input, &[]);
        b.add("q", GateKind::Dff, &["x"]);
        b.add("x", GateKind::And, &["a", "q"]);
        b.mark_output("x");
        assert!(b.finish().is_ok());
    }
}
