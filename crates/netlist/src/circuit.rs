use std::collections::VecDeque;
use std::fmt;
use std::mem::size_of;

use crate::{GateKind, NetlistError};

/// Index of a node (gate instance) inside a [`Circuit`].
///
/// `NodeId`s are dense: every id in `0..circuit.len()` is valid for the
/// circuit that produced it. Ids from one circuit must not be used with
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Intended for sibling `fastmon` crates that store node ids in dense
    /// tables; passing an index that is out of range for the target circuit
    /// leads to panics on use, not undefined behaviour.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(
            u32::try_from(index).unwrap_or_else(|_| panic!("node index {index} exceeds u32 range")),
        )
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A borrowed view of a single gate instance.
///
/// The circuit stores its nodes in flat arenas (one byte run for all
/// names, one `u32` run for all fanin lists); `Node` is the per-gate
/// window into them, so it is `Copy` and the accessors hand out slices
/// that live as long as the circuit, not as long as the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node<'c> {
    name: &'c str,
    kind: GateKind,
    fanins: &'c [NodeId],
}

impl<'c> Node<'c> {
    /// The net/instance name (ISCAS naming: the gate is named after the net
    /// it drives).
    #[must_use]
    pub fn name(&self) -> &'c str {
        self.name
    }

    /// The gate kind.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in pin order.
    #[must_use]
    pub fn fanins(&self) -> &'c [NodeId] {
        self.fanins
    }
}

/// A reference to a specific pin of a gate — the granularity at which small
/// delay faults are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PinRef {
    /// The output pin of a gate.
    Output(NodeId),
    /// The `pin`-th input pin of a gate (index into [`Node::fanins`]).
    Input(NodeId, u8),
}

impl PinRef {
    /// The gate the pin belongs to.
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            PinRef::Output(n) | PinRef::Input(n, _) => n,
        }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinRef::Output(n) => write!(f, "{n}/Z"),
            PinRef::Input(n, k) => write!(f, "{n}/A{k}"),
        }
    }
}

/// What kind of capture element observes a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObserveKind {
    /// A primary output captured by the tester.
    PrimaryOutput,
    /// A pseudo-primary output: the D pin of a scan flip-flop.
    PseudoOutput {
        /// The flip-flop whose D pin captures the signal.
        dff: NodeId,
    },
}

/// An observation point of the full-scan circuit: the signal captured at a
/// primary output or at a flip-flop D pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservePoint {
    /// The node whose output signal is captured.
    pub driver: NodeId,
    /// Whether this is a primary or pseudo-primary output.
    pub kind: ObserveKind,
}

impl ObservePoint {
    /// Returns `true` for pseudo-primary outputs (flip-flop D pins) — the
    /// only places where delay monitors can be inserted.
    #[must_use]
    pub fn is_pseudo(&self) -> bool {
        matches!(self.kind, ObserveKind::PseudoOutput { .. })
    }
}

/// Reusable mark buffer for [`Circuit::fanout_cone_into`] and
/// [`Circuit::fanin_cone_into`].
///
/// The cone walks need one "in cone" bit per circuit node; allocating it
/// per call dominates the cost of small cones. A `ConeMarks` grows to the
/// circuit size on first use and is wiped selectively (only the nodes of
/// the previous cone) between calls, so repeated walks are allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ConeMarks {
    mark: Vec<bool>,
    /// The nodes marked since the last [`ConeMarks::begin`], for selective
    /// wiping.
    touched: Vec<NodeId>,
}

impl ConeMarks {
    /// Fresh, empty scratch; the buffer grows to the circuit size on first
    /// use.
    #[must_use]
    pub fn new() -> Self {
        ConeMarks::default()
    }

    /// Starts a new walk over an `n`-node circuit: grows the buffer if
    /// needed and wipes only the marks of the previous walk.
    pub fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.clear();
            self.mark.resize(n, false);
        } else {
            for &id in &self.touched {
                self.mark[id.index()] = false;
            }
        }
        self.touched.clear();
    }

    /// Marks `id`, remembering it for the next wipe.
    pub fn set(&mut self, id: NodeId) {
        let slot = &mut self.mark[id.index()];
        if !*slot {
            *slot = true;
            self.touched.push(id);
        }
    }

    /// Whether `id` is marked in the current walk.
    #[must_use]
    pub fn get(&self, id: NodeId) -> bool {
        self.mark[id.index()]
    }
}

/// A levelized full-scan gate-level circuit.
///
/// The sequential netlist is stored as parsed; for delay test the circuit is
/// interpreted through its *combinational core*: flip-flop outputs are
/// pseudo-primary inputs, flip-flop D pins are pseudo-primary outputs, and
/// the edges into flip-flops are cut when levelizing.
///
/// # Storage
///
/// Node storage is compressed-sparse-row throughout: all fanin lists live
/// in one flat [`NodeId`] arena addressed by an offsets table, the derived
/// fanout lists in a second arena, and all node names in a single byte run.
/// There is no per-node allocation, so a million-gate netlist costs a fixed
/// ~40 bytes/gate plus its name bytes instead of several heap boxes per
/// gate. [`Circuit::node`] hands out a [`Node`] *view* into the arenas; the
/// public `fanins()`/`fanouts()` slice API is unchanged.
///
/// Construct circuits with [`CircuitBuilder`](crate::CircuitBuilder), the
/// [`bench`](crate::bench) parser or the [`generate`](crate::generate)
/// module.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    // CSR node storage.
    names: String,
    name_offsets: Vec<u32>,
    kinds: Vec<GateKind>,
    fanins: Vec<NodeId>,
    fanin_offsets: Vec<u32>,
    outputs: Vec<NodeId>,
    // Derived structure (fanouts are CSR as well).
    fanouts: Vec<NodeId>,
    fanout_offsets: Vec<u32>,
    level: Vec<u32>,
    topo: Vec<NodeId>,
    max_level: u32,
    inputs: Vec<NodeId>,
    flip_flops: Vec<NodeId>,
    observe_points: Vec<ObservePoint>,
}

impl Circuit {
    /// Builds a circuit from flat parts, validating arities and acyclicity.
    ///
    /// `fanins`/`fanin_offsets` are the CSR fanin arena: node `i`'s fanins
    /// are `fanins[fanin_offsets[i]..fanin_offsets[i + 1]]`, in pin order.
    /// `outputs` lists the nodes whose output nets are primary outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if a node's fanin count is illegal
    /// for its kind and [`NetlistError::CombinationalCycle`] if the
    /// combinational core (flip-flop inputs cut) is cyclic.
    pub(crate) fn from_parts(
        name: String,
        node_names: Vec<String>,
        kinds: Vec<GateKind>,
        fanins: Vec<NodeId>,
        fanin_offsets: Vec<u32>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, NetlistError> {
        let n = kinds.len();
        debug_assert_eq!(node_names.len(), n);
        debug_assert_eq!(fanin_offsets.len(), n + 1);
        let fanin_of = |i: usize| &fanins[fanin_offsets[i] as usize..fanin_offsets[i + 1] as usize];

        for i in 0..n {
            if !kinds[i].arity_ok(fanin_of(i).len()) {
                return Err(NetlistError::BadArity {
                    kind: kinds[i],
                    node: node_names[i].clone(),
                    got: fanin_of(i).len(),
                });
            }
        }

        // Derived fanout CSR: a counting pass sizes the runs, a fill pass
        // scatters consumers in ascending id order (matching the pin-order
        // duplication semantics of the fanin arena).
        let mut fanout_offsets = vec![0u32; n + 1];
        for &fi in &fanins {
            fanout_offsets[fi.index() + 1] += 1;
        }
        for i in 0..n {
            fanout_offsets[i + 1] += fanout_offsets[i];
        }
        let mut fanouts = vec![NodeId(0); fanins.len()];
        let mut cursor: Vec<u32> = fanout_offsets[..n].to_vec();
        for i in 0..n {
            for &fi in fanin_of(i) {
                let c = &mut cursor[fi.index()];
                fanouts[*c as usize] = NodeId::from_index(i);
                *c += 1;
            }
        }

        // Levelize the combinational core with Kahn's algorithm. Sources and
        // flip-flops start at level 0; edges into flip-flops are cut.
        let mut indeg = vec![0usize; n];
        for (i, kind) in kinds.iter().enumerate() {
            if kind.is_combinational() {
                indeg[i] = fanin_of(i).len();
            }
        }
        let mut level = vec![0u32; n];
        let mut topo = Vec::with_capacity(n);
        let mut queue: VecDeque<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(NodeId::from_index)
            .collect();
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            let lo = fanout_offsets[id.index()] as usize;
            let hi = fanout_offsets[id.index() + 1] as usize;
            for &fo in &fanouts[lo..hi] {
                let fi = fo.index();
                if kinds[fi].is_combinational() {
                    level[fi] = level[fi].max(level[id.index()] + 1);
                    indeg[fi] -= 1;
                    if indeg[fi] == 0 {
                        queue.push_back(fo);
                    }
                }
            }
        }
        if topo.len() != n {
            let on_cycle = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| node_names[i].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { node: on_cycle });
        }
        // `topo` from Kahn's BFS is already a valid topological order; sort
        // it by (level, id) so iteration is deterministic and level-grouped.
        topo.sort_by_key(|id| (level[id.index()], id.index()));
        let max_level = level.iter().copied().max().unwrap_or(0);

        let inputs: Vec<NodeId> = (0..n)
            .filter(|&i| kinds[i] == GateKind::Input)
            .map(NodeId::from_index)
            .collect();
        let flip_flops: Vec<NodeId> = (0..n)
            .filter(|&i| kinds[i] == GateKind::Dff)
            .map(NodeId::from_index)
            .collect();

        let mut observe_points: Vec<ObservePoint> = outputs
            .iter()
            .map(|&o| ObservePoint {
                driver: o,
                kind: ObserveKind::PrimaryOutput,
            })
            .collect();
        observe_points.extend(flip_flops.iter().map(|&ff| ObservePoint {
            driver: fanin_of(ff.index())[0],
            kind: ObserveKind::PseudoOutput { dff: ff },
        }));

        // Flatten the names into a single byte run + offsets.
        let total: usize = node_names.iter().map(String::len).sum();
        let mut names = String::with_capacity(total);
        let mut name_offsets = Vec::with_capacity(n + 1);
        name_offsets.push(0u32);
        for s in &node_names {
            names.push_str(s);
            name_offsets.push(
                u32::try_from(names.len())
                    .unwrap_or_else(|_| panic!("total name bytes exceed u32 range")),
            );
        }

        Ok(Circuit {
            name,
            names,
            name_offsets,
            kinds,
            fanins,
            fanin_offsets,
            outputs,
            fanouts,
            fanout_offsets,
            level,
            topo,
            max_level,
            inputs,
            flip_flops,
            observe_points,
        })
    }

    /// The circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (gates, inputs and flip-flops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if the circuit has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The name of node `id` (a direct slice of the name arena).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        let i = id.index();
        &self.names[self.name_offsets[i] as usize..self.name_offsets[i + 1] as usize]
    }

    /// The gate kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The fanin nodes of `id`, in pin order (a direct slice of the fanin
    /// arena).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[must_use]
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanins[self.fanin_offsets[i] as usize..self.fanin_offsets[i + 1] as usize]
    }

    /// Access a node by id as a borrowed view over the arenas.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Node<'_> {
        Node {
            name: self.node_name(id),
            kind: self.kinds[id.index()],
            fanins: self.fanins(id),
        }
    }

    /// Iterates over all `(NodeId, Node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> {
        (0..self.kinds.len()).map(|i| {
            let id = NodeId::from_index(i);
            (id, self.node(id))
        })
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len()).map(NodeId::from_index)
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Nodes whose output nets are primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops (scan cells).
    #[must_use]
    pub fn flip_flops(&self) -> &[NodeId] {
        &self.flip_flops
    }

    /// Observation points: primary outputs first, then pseudo-primary
    /// outputs (flip-flop D pins) in flip-flop order.
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe_points
    }

    /// The fanout nodes of `id` (all gates with `id` among their fanins,
    /// including flip-flops capturing the signal).
    #[must_use]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanouts[self.fanout_offsets[i] as usize..self.fanout_offsets[i + 1] as usize]
    }

    /// The combinational level of a node: 0 for sources and flip-flops,
    /// `1 + max(level of fanins)` for combinational gates.
    #[must_use]
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum combinational level (logic depth) of the circuit.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// All nodes in a topological order of the combinational core: sources
    /// and flip-flops first, then combinational gates grouped by level.
    #[must_use]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Ids of all combinational gates, in topological order.
    pub fn combinational_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo
            .iter()
            .copied()
            .filter(move |&id| self.kinds[id.index()].is_combinational())
    }

    /// The sources of the combinational core: primary inputs, constants and
    /// flip-flop outputs (pseudo-primary inputs).
    pub fn combinational_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo
            .iter()
            .copied()
            .filter(move |&id| !self.kinds[id.index()].is_combinational())
    }

    /// Heap bytes of the node storage: arenas, offset tables and derived
    /// structure. The benchmarks divide this by the gate count to report
    /// bytes/gate.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.names.len()
            + self.name_offsets.len() * size_of::<u32>()
            + self.kinds.len() * size_of::<GateKind>()
            + self.fanins.len() * size_of::<NodeId>()
            + self.fanin_offsets.len() * size_of::<u32>()
            + self.outputs.len() * size_of::<NodeId>()
            + self.fanouts.len() * size_of::<NodeId>()
            + self.fanout_offsets.len() * size_of::<u32>()
            + self.level.len() * size_of::<u32>()
            + self.topo.len() * size_of::<NodeId>()
            + self.inputs.len() * size_of::<NodeId>()
            + self.flip_flops.len() * size_of::<NodeId>()
            + self.observe_points.len() * size_of::<ObservePoint>()
    }

    /// Computes the transitive combinational fanout cone of `seed`
    /// (inclusive), in topological order. Traversal stops at flip-flops:
    /// they are not included (their D pins are capture points).
    ///
    /// Allocates fresh buffers per call; hot paths should use
    /// [`Circuit::fanout_cone_into`] with a reused [`ConeMarks`].
    #[must_use]
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut marks = ConeMarks::new();
        let mut cone = Vec::new();
        self.fanout_cone_into(seed, &mut marks, &mut cone);
        cone
    }

    /// [`Circuit::fanout_cone`] into a caller-provided buffer, reusing the
    /// mark scratch across calls. `cone` is cleared first.
    pub fn fanout_cone_into(&self, seed: NodeId, marks: &mut ConeMarks, cone: &mut Vec<NodeId>) {
        marks.begin(self.kinds.len());
        cone.clear();
        marks.set(seed);
        // topo order guarantees fanins are visited before fanouts
        for &id in &self.topo {
            if !marks.get(id) {
                continue;
            }
            cone.push(id);
            for &fo in self.fanouts(id) {
                if self.kinds[fo.index()].is_combinational() {
                    marks.set(fo);
                }
            }
        }
    }

    /// Computes the transitive combinational fanin cone of `seed`
    /// (inclusive), in topological order. Traversal stops at sources and
    /// flip-flops (which are included as the cone's inputs but not expanded
    /// further).
    ///
    /// Allocates fresh buffers per call; hot paths should use
    /// [`Circuit::fanin_cone_into`] with a reused [`ConeMarks`].
    #[must_use]
    pub fn fanin_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut marks = ConeMarks::new();
        let mut cone = Vec::new();
        self.fanin_cone_into(seed, &mut marks, &mut cone);
        cone
    }

    /// [`Circuit::fanin_cone`] into a caller-provided buffer, reusing the
    /// mark scratch across calls. `cone` is cleared first.
    pub fn fanin_cone_into(&self, seed: NodeId, marks: &mut ConeMarks, cone: &mut Vec<NodeId>) {
        marks.begin(self.kinds.len());
        cone.clear();
        marks.set(seed);
        // reverse topological sweep marks fanins of marked nodes
        for &id in self.topo.iter().rev() {
            if marks.get(id) && self.kinds[id.index()].is_combinational() {
                for &fi in self.fanins(id) {
                    marks.set(fi);
                }
            }
        }
        // emit in topological order
        for &id in &self.topo {
            if marks.get(id) {
                cone.push(id);
            }
        }
    }

    /// The observation points whose captured signal lies in the fanout cone
    /// of `seed`, as indices into [`Circuit::observe_points`].
    #[must_use]
    pub fn observing_points_of(&self, seed: NodeId) -> Vec<usize> {
        let mut marks = ConeMarks::new();
        let mut cone = Vec::new();
        self.fanout_cone_into(seed, &mut marks, &mut cone);
        self.observe_points
            .iter()
            .enumerate()
            .filter(|(_, op)| marks.get(op.driver))
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates the steady-state value of every node for the given
    /// assignment of combinational sources.
    ///
    /// `source_value` is queried for primary inputs and flip-flops (their
    /// current state); constants evaluate to themselves. The returned vector
    /// is indexed by [`NodeId::index`].
    pub fn eval_steady<F: Fn(NodeId) -> bool>(&self, source_value: F) -> Vec<bool> {
        let mut values = vec![false; self.kinds.len()];
        let mut ins: Vec<bool> = Vec::new();
        for &id in &self.topo {
            values[id.index()] = match self.kinds[id.index()] {
                GateKind::Input | GateKind::Dff => source_value(id),
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                kind => {
                    ins.clear();
                    ins.extend(self.fanins(id).iter().map(|&fi| values[fi.index()]));
                    kind.eval(&ins)
                }
            };
        }
        values
    }

    /// Looks up a node by name (linear scan; intended for tests and small
    /// circuits).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        (0..self.kinds.len())
            .map(NodeId::from_index)
            .find(|&id| self.node_name(id) == name)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind};

    fn tiny() -> crate::Circuit {
        // a, b inputs; f = DFF(g); g = AND(a, f); o = NAND(g, b); output o
        let mut b = CircuitBuilder::new("tiny");
        b.add("a", GateKind::Input, &[]);
        b.add("b", GateKind::Input, &[]);
        b.add("f", GateKind::Dff, &["g"]);
        b.add("g", GateKind::And, &["a", "f"]);
        b.add("o", GateKind::Nand, &["g", "b"]);
        b.mark_output("o");
        b.finish().expect("valid circuit")
    }

    #[test]
    fn levels_and_topo() {
        let c = tiny();
        let g = c.find("g").unwrap();
        let o = c.find("o").unwrap();
        let f = c.find("f").unwrap();
        assert_eq!(c.level(f), 0);
        assert_eq!(c.level(g), 1);
        assert_eq!(c.level(o), 2);
        assert_eq!(c.max_level(), 2);
        let topo = c.topo_order();
        let pos = |id| topo.iter().position(|&x| x == id).unwrap();
        assert!(pos(g) < pos(o));
        assert!(pos(f) < pos(g));
    }

    #[test]
    fn observe_points_cover_po_and_ppo() {
        let c = tiny();
        let ops = c.observe_points();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].driver, c.find("o").unwrap());
        assert!(!ops[0].is_pseudo());
        assert_eq!(ops[1].driver, c.find("g").unwrap());
        assert!(ops[1].is_pseudo());
    }

    #[test]
    fn fanout_cone_stops_at_dff() {
        let c = tiny();
        let a = c.find("a").unwrap();
        let cone = c.fanout_cone(a);
        let names: Vec<&str> = cone.iter().map(|&id| c.node(id).name()).collect();
        assert_eq!(names, vec!["a", "g", "o"]);
    }

    #[test]
    fn fanin_cone_collects_support() {
        let c = tiny();
        let o = c.find("o").unwrap();
        let mut names: Vec<&str> = c
            .fanin_cone(o)
            .iter()
            .map(|&id| c.node(id).name())
            .collect();
        names.sort_unstable();
        // o = NAND(g, b), g = AND(a, f): support = {a, b, f, g, o}
        assert_eq!(names, vec!["a", "b", "f", "g", "o"]);
        // the cone stops at the flip-flop: its fanin net g10... (f's D pin)
        // is not expanded further — `f` is a leaf here
        let f = c.find("f").unwrap();
        assert_eq!(c.fanin_cone(f), vec![f]);
    }

    #[test]
    fn cone_scratch_reuse_matches_fresh_walks() {
        let c = tiny();
        let mut marks = super::ConeMarks::new();
        let mut cone = Vec::new();
        // interleave fanout and fanin walks through the same scratch; each
        // must match the allocating variant despite the shared mark buffer
        for id in c.node_ids() {
            c.fanout_cone_into(id, &mut marks, &mut cone);
            assert_eq!(cone, c.fanout_cone(id), "fanout cone of {id}");
            c.fanin_cone_into(id, &mut marks, &mut cone);
            assert_eq!(cone, c.fanin_cone(id), "fanin cone of {id}");
        }
    }

    #[test]
    fn observing_points_of_cone() {
        let c = tiny();
        let b_in = c.find("b").unwrap();
        // b only reaches the primary output o
        assert_eq!(c.observing_points_of(b_in), vec![0]);
        let a_in = c.find("a").unwrap();
        // a reaches both o (PO) and g (PPO via DFF f)
        assert_eq!(c.observing_points_of(a_in), vec![0, 1]);
    }

    #[test]
    fn eval_steady_matches_logic() {
        let c = tiny();
        let a = c.find("a").unwrap();
        let b_in = c.find("b").unwrap();
        let f = c.find("f").unwrap();
        let values = c.eval_steady(|id| id == a || id == f);
        // g = AND(a=1, f=1) = 1; o = NAND(g=1, b=0) = 1
        assert!(values[c.find("g").unwrap().index()]);
        assert!(values[c.find("o").unwrap().index()]);
        let values = c.eval_steady(|id| id == a || id == b_in || id == f);
        // o = NAND(1,1) = 0
        assert!(!values[c.find("o").unwrap().index()]);
    }

    #[test]
    fn storage_is_arena_backed() {
        let c = tiny();
        // 5 nodes, 5 fanin slots (f:1, g:2, o:2): sanity-check the CSR
        // accounting stays in the tens of bytes per node, not hundreds
        let bytes = c.storage_bytes();
        assert!(bytes > 0);
        assert!(bytes < 5 * 100, "tiny circuit costs {bytes} bytes");
        // fanin slices come straight from the arena, in pin order
        let o = c.find("o").unwrap();
        assert_eq!(c.fanins(o), c.node(o).fanins());
        assert_eq!(c.kind(o), GateKind::Nand);
        assert_eq!(c.node_name(o), "o");
    }

    #[test]
    fn cycle_detection() {
        let mut b = CircuitBuilder::new("cyclic");
        b.add("a", GateKind::Input, &[]);
        b.add("x", GateKind::And, &["a", "y"]);
        b.add("y", GateKind::And, &["a", "x"]);
        b.mark_output("y");
        assert!(matches!(
            b.finish(),
            Err(crate::NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        // feedback through a flip-flop is legal
        let mut b = CircuitBuilder::new("seq");
        b.add("a", GateKind::Input, &[]);
        b.add("q", GateKind::Dff, &["x"]);
        b.add("x", GateKind::And, &["a", "q"]);
        b.mark_output("x");
        assert!(b.finish().is_ok());
    }
}
