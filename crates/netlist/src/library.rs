//! Small embedded reference circuits.
//!
//! Two classic netlists are shipped verbatim: the sequential ISCAS'89
//! benchmark [`s27`] and the combinational ISCAS'85 benchmark [`c17`]. They
//! are tiny enough to reason about by hand and are used throughout the test
//! suites of the `fastmon` crates.
//!
//! The larger circuits evaluated by the reproduced paper (s9234 … p141k) are
//! not redistributable / not publicly available; the
//! [`generate`](crate::generate) module produces synthetic stand-ins with
//! matching statistics instead.

use crate::{bench, Circuit};

/// `.bench` source of ISCAS'89 s27 (10 gates, 3 flip-flops, 4 inputs,
/// 1 output).
pub const S27_BENCH: &str = r"# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// `.bench` source of ISCAS'85 c17 (6 NAND gates, 5 inputs, 2 outputs).
pub const C17_BENCH: &str = r"# c17 (ISCAS'85)
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
";

/// The ISCAS'89 benchmark circuit s27.
///
/// # Example
///
/// ```
/// let s27 = fastmon_netlist::library::s27();
/// assert_eq!(s27.inputs().len(), 4);
/// assert_eq!(s27.flip_flops().len(), 3);
/// assert_eq!(s27.outputs().len(), 1);
/// ```
///
/// # Panics
///
/// Never panics; the embedded netlist is covered by tests.
#[must_use]
pub fn s27() -> Circuit {
    bench::parse(S27_BENCH, "s27")
        .unwrap_or_else(|e| unreachable!("embedded s27 netlist is valid: {e}"))
}

/// The ISCAS'85 benchmark circuit c17.
///
/// # Example
///
/// ```
/// let c17 = fastmon_netlist::library::c17();
/// assert_eq!(c17.len(), 11);
/// assert!(c17.flip_flops().is_empty());
/// ```
///
/// # Panics
///
/// Never panics; the embedded netlist is covered by tests.
#[must_use]
pub fn c17() -> Circuit {
    bench::parse(C17_BENCH, "c17")
        .unwrap_or_else(|e| unreachable!("embedded c17 netlist is valid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn s27_statistics() {
        let c = s27();
        assert_eq!(c.len(), 17); // 4 PI + 3 DFF + 10 gates
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.flip_flops().len(), 3);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.observe_points().len(), 4); // 1 PO + 3 PPO
        let gates = c.combinational_nodes().count();
        assert_eq!(gates, 10);
    }

    #[test]
    fn s27_known_function() {
        // With all flip-flops at 0 and inputs G0..G3 = (0,1,0,0):
        // G14 = NOT(G0) = 1, G12 = NOR(G1, G7) = NOR(1,0) = 0,
        // G8 = AND(G14, G6) = AND(1,0) = 0, G15 = OR(G12,G8) = 0,
        // G16 = OR(G3,G8) = 0, G9 = NAND(G16,G15) = 1,
        // G11 = NOR(G5,G9) = NOR(0,1) = 0, G17 = NOT(G11) = 1.
        let c = s27();
        let g1 = c.find("G1").unwrap();
        let vals = c.eval_steady(|id| id == g1);
        assert!(vals[c.find("G17").unwrap().index()]);
        assert!(!vals[c.find("G11").unwrap().index()]);
    }

    #[test]
    fn c17_all_nand() {
        let c = c17();
        for id in c.combinational_nodes() {
            assert_eq!(c.node(id).kind(), GateKind::Nand);
        }
        assert_eq!(c.max_level(), 3);
    }

    #[test]
    fn c17_truth_sample() {
        // N1..N7 all 1: N10 = NAND(1,1)=0, N11=0, N16=NAND(1,0)=1,
        // N19=NAND(0,1)=1, N22=NAND(0,1)=1, N23=NAND(1,1)=0.
        let c = c17();
        let vals = c.eval_steady(|_| true);
        assert!(vals[c.find("N22").unwrap().index()]);
        assert!(!vals[c.find("N23").unwrap().index()]);
    }
}
