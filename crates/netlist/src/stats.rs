use std::fmt;

use crate::Circuit;

/// Summary statistics of a circuit, as reported in the benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of scan flip-flops.
    pub flip_flops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of observation points (primary + pseudo-primary outputs).
    pub observe_points: usize,
    /// Logic depth (maximum combinational level).
    pub depth: u32,
}

impl CircuitStats {
    /// Computes the statistics of `circuit`.
    ///
    /// # Example
    ///
    /// ```
    /// use fastmon_netlist::{library, CircuitStats};
    ///
    /// let stats = CircuitStats::of(&library::s27());
    /// assert_eq!(stats.gates, 10);
    /// assert_eq!(stats.flip_flops, 3);
    /// ```
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        CircuitStats {
            gates: circuit.combinational_nodes().count(),
            flip_flops: circuit.flip_flops().len(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            observe_points: circuit.observe_points().len(),
            depth: circuit.max_level(),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} FFs, {} PIs, {} POs, {} observe points, depth {}",
            self.gates, self.flip_flops, self.inputs, self.outputs, self.observe_points, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn s27_stats() {
        let s = CircuitStats::of(&library::s27());
        assert_eq!(
            s,
            CircuitStats {
                gates: 10,
                flip_flops: 3,
                inputs: 4,
                outputs: 1,
                observe_points: 4,
                depth: s.depth,
            }
        );
        assert!(s.depth >= 3);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn c17_stats() {
        let s = CircuitStats::of(&library::c17());
        assert_eq!(s.gates, 6);
        assert_eq!(s.flip_flops, 0);
        assert_eq!(s.observe_points, 2);
        assert_eq!(s.depth, 3);
    }
}
