use std::fmt;
use std::str::FromStr;

/// The cell types supported by the netlist model.
///
/// The set matches what appears in ISCAS'89 `.bench` files plus explicit
/// constants. Sequential state is limited to D flip-flops ([`GateKind::Dff`]),
/// which is sufficient for the full-scan designs targeted by FAST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input; has no fanins.
    Input,
    /// D flip-flop; exactly one fanin (the D pin). During scan test its
    /// output is a pseudo-primary input and its D pin a pseudo-primary
    /// output.
    Dff,
    /// Non-inverting buffer; one fanin.
    Buf,
    /// Inverter; one fanin.
    Not,
    /// N-input AND (N ≥ 1).
    And,
    /// N-input NAND (N ≥ 1).
    Nand,
    /// N-input OR (N ≥ 1).
    Or,
    /// N-input NOR (N ≥ 1).
    Nor,
    /// N-input XOR (N ≥ 1).
    Xor,
    /// N-input XNOR (N ≥ 1).
    Xnor,
    /// Constant logic 0; no fanins.
    Const0,
    /// Constant logic 1; no fanins.
    Const1,
}

impl GateKind {
    /// All gate kinds, in a fixed order.
    pub const ALL: [GateKind; 12] = [
        GateKind::Input,
        GateKind::Dff,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// Returns `true` for the D flip-flop.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        self == GateKind::Dff
    }

    /// Returns `true` for kinds that take no fanins ([`GateKind::Input`],
    /// constants).
    #[must_use]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` for combinational logic gates (everything that is
    /// neither a source nor a flip-flop).
    #[must_use]
    pub fn is_combinational(self) -> bool {
        !self.is_source() && !self.is_sequential()
    }

    /// Whether `n` fanins are legal for this kind.
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Dff | GateKind::Buf | GateKind::Not => n == 1,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 1,
        }
    }

    /// Returns `true` if the gate's output is the complement of the
    /// corresponding non-inverting function (NOT, NAND, NOR, XNOR).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// Evaluates the logic function on boolean inputs.
    ///
    /// For [`GateKind::Input`] and [`GateKind::Dff`] the single "input" is
    /// passed through unchanged (a flip-flop in the combinational view simply
    /// presents its state). Constants ignore `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has an arity that [`GateKind::arity_ok`] rejects,
    /// except for `Input`/`Dff` where a single value is expected.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Input | GateKind::Dff | GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "{self} expects exactly one value");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT expects exactly one value");
                !inputs[0]
            }
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A controlling value at any input fixes the output regardless of the
    /// other inputs (0 for AND/NAND, 1 for OR/NOR). XOR-class and single-input
    /// gates have none.
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        };
        f.write_str(s)
    }
}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "INPUT" => GateKind::Input,
            "DFF" => GateKind::Dff,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "CONST0" | "GND" => GateKind::Const0,
            "CONST1" | "VDD" => GateKind::Const1,
            _ => return Err(ParseGateKindError { text: s.to_owned() }),
        })
    }
}

/// Error returned when a gate-kind keyword is not recognized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    text: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.text)
    }
}

impl std::error::Error for ParseGateKindError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        assert!(GateKind::And.eval(&[true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
    }

    #[test]
    fn eval_wide_gates() {
        let ins = [true, true, true, false];
        assert!(!GateKind::And.eval(&ins));
        assert!(GateKind::Nand.eval(&ins));
        assert!(GateKind::Or.eval(&ins));
        assert!(!GateKind::Nor.eval(&ins));
        // odd number of ones -> XOR is true
        assert!(GateKind::Xor.eval(&ins));
        assert!(!GateKind::Xnor.eval(&ins));
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::Dff.arity_ok(1));
        assert!(!GateKind::Dff.arity_ok(2));
        assert!(GateKind::And.arity_ok(5));
        assert!(!GateKind::And.arity_ok(0));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
    }

    #[test]
    fn parse_round_trip() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.to_string().parse().expect("round trip");
            assert_eq!(parsed, kind);
        }
        assert_eq!("buff".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("inv".parse::<GateKind>().unwrap(), GateKind::Not);
        assert!("FOO".parse::<GateKind>().is_err());
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Xor.is_inverting());
        assert!(GateKind::Xnor.is_inverting());
    }

    #[test]
    fn classification_partitions() {
        for kind in GateKind::ALL {
            let n = [
                kind.is_source(),
                kind.is_sequential(),
                kind.is_combinational(),
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(n, 1, "{kind} must be in exactly one class");
        }
    }
}
