//! Property tests for the circuit builder: randomly generated well-formed
//! specs must build and round-trip through `.bench` text, and randomly
//! broken specs must surface the matching typed [`NetlistError`] instead
//! of panicking.

use fastmon_netlist::{bench, CircuitBuilder, GateKind, NetlistError};
use proptest::prelude::*;

/// Deterministically expands a compact random spec into a layered DAG:
/// `n_inputs` primary inputs followed by gates whose fanins only reference
/// earlier nodes (so the result is acyclic by construction).
fn build_spec(n_inputs: usize, gate_picks: &[(u32, u32, u32)]) -> CircuitBuilder {
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut b = CircuitBuilder::new("prop");
    for i in 0..n_inputs {
        b.add(format!("i{i}"), GateKind::Input, &[]);
    }
    let mut names: Vec<String> = (0..n_inputs).map(|i| format!("i{i}")).collect();
    for (g, &(kind_pick, fanin_a, fanin_b)) in gate_picks.iter().enumerate() {
        let kind = kinds[kind_pick as usize % kinds.len()];
        let a = names[fanin_a as usize % names.len()].clone();
        let name = format!("g{g}");
        if matches!(kind, GateKind::Not | GateKind::Buf) {
            b.add(&name, kind, &[a.as_str()]);
        } else {
            let c = names[fanin_b as usize % names.len()].clone();
            b.add(&name, kind, &[a.as_str(), c.as_str()]);
        }
        names.push(name);
    }
    let last = names.len() - 1;
    b.mark_output(&names[last]);
    b
}

fn picks() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0..7u32, 0..64u32, 0..64u32), 1..24)
}

proptest! {
    #[test]
    fn well_formed_specs_build_and_round_trip(
        n_inputs in 1..6usize,
        gates in picks(),
    ) {
        let circuit = build_spec(n_inputs, &gates)
            .finish()
            .expect("layered DAG spec always builds");
        prop_assert_eq!(circuit.len(), n_inputs + gates.len());

        let text = bench::to_string(&circuit);
        let reparsed = bench::parse(&text, circuit.name()).expect("round trip parses");
        prop_assert_eq!(reparsed.len(), circuit.len());
        for (id, node) in circuit.iter() {
            let other = reparsed.node(id);
            prop_assert_eq!(node.name(), other.name());
            prop_assert_eq!(node.kind(), other.kind());
            prop_assert_eq!(node.fanins(), other.fanins());
        }
    }

    #[test]
    fn undriven_reference_is_a_typed_error(
        n_inputs in 1..6usize,
        gates in picks(),
    ) {
        let mut b = build_spec(n_inputs, &gates);
        b.add("bad", GateKind::And, &["i0", "never_driven"]);
        b.mark_output("bad");
        let err = b.finish().expect_err("dangling fanin must be rejected");
        prop_assert!(
            matches!(&err, NetlistError::UndrivenNet { net } if net == "never_driven"),
            "got {:?}", err
        );
    }

    #[test]
    fn duplicate_driver_is_a_typed_error(
        n_inputs in 1..6usize,
        gates in picks(),
    ) {
        let mut b = build_spec(n_inputs, &gates);
        // g0 always exists; driving it again must be rejected
        b.add("g0", GateKind::Or, &["i0"]);
        let err = b.finish().expect_err("double-driven net must be rejected");
        prop_assert!(
            matches!(&err, NetlistError::DuplicateDriver { net } if net == "g0"),
            "got {:?}", err
        );
    }

    #[test]
    fn bad_arity_is_a_typed_error(
        n_inputs in 1..6usize,
        gates in picks(),
    ) {
        let mut b = build_spec(n_inputs, &gates);
        b.add("bad_not", GateKind::Not, &["i0", "g0"]);
        let err = b.finish().expect_err("2-input NOT must be rejected");
        prop_assert!(
            matches!(&err, NetlistError::BadArity { node, got: 2, .. } if node == "bad_not"),
            "got {:?}", err
        );
    }
}
