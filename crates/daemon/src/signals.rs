//! SIGTERM/SIGINT → graceful-drain flag.
//!
//! The workspace carries no `libc` dependency (offline build), so the
//! handler is installed straight against the C ABI, the same way
//! `fastmon_bench::rss` declares `getrusage`. The handler body is a
//! single atomic store — the only thing that is async-signal-safe here —
//! and the daemon's accept loop polls [`drain_requested`] between
//! accepts.
//!
//! On non-Unix targets installation is a no-op and the flag can only be
//! set programmatically (the in-process test path).

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// `SIGINT` signal number.
pub const SIGINT: i32 = 2;
/// `SIGTERM` signal number.
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the drain handler for `SIGTERM` and `SIGINT`. Idempotent.
pub fn install_drain_handlers() {
    #[cfg(unix)]
    {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` whose body is a
        // single atomic store (async-signal-safe), and SIGTERM/SIGINT are
        // catchable signals.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// True once a drain signal has been delivered (or
/// [`request_drain`] was called).
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Programmatic equivalent of delivering `SIGTERM` — used by in-process
/// tests that cannot signal themselves without killing the test runner.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}
