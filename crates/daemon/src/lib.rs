//! `fastmond`: a crash-surviving multi-tenant campaign daemon for the
//! fastmon HDF test flow.
//!
//! Clients submit campaign jobs (circuit + optional SDF + target
//! coverage + deadline) over a newline-JSON socket protocol
//! ([`proto`]), jobs run through the checkpointed resumable analyze
//! path on a bounded, admission-controlled, tenant-fair queue
//! ([`queue`]), and every job streams progress records back and lands a
//! result file keyed by its campaign fingerprint ([`job`], [`server`]).
//!
//! Robustness contract:
//!
//! - `kill -9` mid-campaign loses at most one band of work: on restart
//!   the same submission resumes from the last durable checkpoint and
//!   produces a bit-identical `DetectionAnalysis`
//!   (`result_fingerprint` equality, exercised by the chaos soak in
//!   `tests/soak.rs`).
//! - SIGTERM drains gracefully ([`signals`]): admissions stop, running
//!   campaigns stop at their next durable band checkpoint, queued jobs
//!   get a `drained` terminal record, the process exits 0.
//! - A full queue is a typed reject, never a blocked accept loop.
//! - Worker panics are contained per job; the daemon keeps serving.
//! - Checkpoint directories are lock-protected against concurrent
//!   daemons and garbage-collected conservatively (live set + held
//!   locks + grace period).
//! - Live telemetry: the `observe` op snapshots per-tenant queue
//!   lanes, per-job band progress with an ETA, and every latency
//!   histogram; `watch` streams those snapshots periodically; failed
//!   and panicked jobs carry a bounded flight-recorder tail
//!   ([`flight`]) in their terminal record and dump it to a
//!   post-mortem JSONL file. `fastmon-top` renders `observe` live.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod flight;
pub mod job;
pub mod proto;
pub mod queue;
pub mod server;
pub mod shard;
pub mod signals;

pub use flight::{FlightEvent, FlightRecorder};
pub use job::{run_job, JobError, JobEvent, JobOutcome};
pub use proto::{
    parse_request, CircuitSpec, JobRequest, ProtoError, Request, MAX_LINE_BYTES, PROTO_VERSION,
};
pub use queue::{AdmitError, JobQueue};
pub use server::{Daemon, DaemonConfig, DaemonHandle};
