//! Supervised multi-process shard execution for daemon jobs.
//!
//! A job submitted with `"shard_procs":true` does not run its fault
//! shards as in-process slices: the daemon lands the full [`JobRequest`]
//! as `shard-spec.json` inside the job's locked checkpoint directory and
//! re-executes its own binary once per shard (`fastmond --shard-worker
//! i/n`), with the [`fastmon_core::shardsup`] supervisor babysitting the
//! children — newline-JSON heartbeats over the stdout pipe, stall kills,
//! crash respawns with capped exponential backoff, a `/proc`-based RSS
//! watchdog with graceful eviction, and straggler re-dispatch. Each
//! child rebuilds the identical campaign from the spec file (the
//! [`crate::proto::to_submit_line`] round-trip pins the wire format),
//! resumes from its own `shard-i-of-n.ckpt` and lands
//! `shard-i-of-n.result`; the supervisor merges the landed results into
//! an analysis that is bit-identical to the in-process run.
//!
//! Supervisor observations are forwarded as [`JobEvent::Shard`] rows, so
//! the server's flight recorder and the `observe` snapshot see per-shard
//! progress and respawn counts without touching the worker pipes.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use fastmon_atpg::TestSet;
use fastmon_core::shardsup::{self, EXIT_EVICTED};
use fastmon_core::{
    CampaignProgress, DetectionAnalysis, FlowConfig, FlowError, HdfTestFlow, ShardSpec,
    ShardsupError, SupervisorConfig, SupervisorEvent,
};
use fastmon_obs::events::shard as shard_events;
use fastmon_obs::json::Value;

use crate::job::{build_circuit, JobError, JobEvent};
use crate::proto::{self, JobRequest, Request};

/// The job spec file a supervised worker rebuilds its campaign from,
/// landed inside the job's locked checkpoint directory (so the
/// checkpoint GC's lock check protects it alongside the shard files).
pub const SPEC_FILE: &str = "shard-spec.json";
/// Directory holding the spec and the shard checkpoint/result files.
const ENV_DIR: &str = "FASTMOND_SHARD_DIR";
/// Overrides the worker executable (tests point it at the built
/// `fastmond`; the default — the current executable — would re-enter the
/// test harness instead).
pub const ENV_WORKER_BIN: &str = "FASTMOND_SHARD_WORKER_BIN";

/// Routes a process that was exec'd as a shard worker into the worker
/// loop. `fastmond`'s `main` calls this before argument parsing: when
/// `--shard-worker i/n` is on the command line the function never
/// returns — it runs the shard and exits.
pub fn maybe_run_worker() {
    let mut args = std::env::args().skip(1);
    let mut raw = None;
    while let Some(arg) = args.next() {
        if arg == "--shard-worker" {
            raw = args.next();
            break;
        }
    }
    let Some(raw) = raw else { return };
    match ShardSpec::parse(&raw) {
        Ok(spec) => worker_main(spec),
        Err(e) => {
            eprintln!("[shard-worker] {e}");
            std::process::exit(2);
        }
    }
}

/// Emits a `shard_error` heartbeat (so the supervisor's event stream
/// carries the reason, not just a nonzero exit) and dies.
fn worker_fail(spec: ShardSpec, message: &str) -> ! {
    println!("{}", shard_events::error(spec.shard, spec.shards, message));
    let _ = std::io::Write::flush(&mut std::io::stdout());
    eprintln!("[shard-worker {spec}] {message}");
    std::process::exit(1);
}

fn read_spec(spec: ShardSpec, dir: &Path) -> Box<JobRequest> {
    let path = dir.join(SPEC_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => worker_fail(spec, &format!("cannot read {}: {e}", path.display())),
    };
    match proto::parse_request(text.trim()) {
        Ok(Request::Submit(req)) => req,
        Ok(_) => worker_fail(spec, &format!("{} is not a submit line", path.display())),
        Err(e) => worker_fail(spec, &format!("bad spec {}: {e}", path.display())),
    }
}

/// The worker process: rebuild the campaign from the landed spec, run
/// this shard to a durable result file, stream band-granularity
/// heartbeats on stdout. Exit codes: `0` landed, [`EXIT_EVICTED`]
/// cooperative stop with the checkpoint resumable, `1` error, `2`
/// unusable configuration.
fn worker_main(spec: ShardSpec) -> ! {
    let ShardSpec { shard, shards } = spec;
    // Handlers go in before any expensive work: a SIGTERM that lands
    // during circuit generation or ATPG must set the drain flag, not
    // kill the process with the default disposition (which the
    // supervisor would charge as a crash instead of an eviction).
    let token = fastmon_obs::CancelToken::new();
    crate::signals::install_drain_handlers();
    {
        let token = token.clone();
        std::thread::spawn(move || loop {
            if crate::signals::drain_requested() {
                token.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    let Some(dir) = std::env::var_os(ENV_DIR).map(PathBuf::from) else {
        worker_fail(spec, &format!("{ENV_DIR} is not set"));
    };
    let req = read_spec(spec, &dir);
    if req.shards != shards {
        worker_fail(
            spec,
            &format!("spec says {} shards, launched as {spec}", req.shards),
        );
    }
    let circuit = match build_circuit(&req.circuit) {
        Ok(c) => c,
        Err(e) => worker_fail(spec, &e.to_string()),
    };
    let config = FlowConfig {
        seed: req.seed,
        threads: req.threads,
        max_faults: req.max_faults,
        ..FlowConfig::default()
    };
    let prepared = match &req.sdf {
        Some(text) => fastmon_timing::sdf::parse(text, &circuit, config.sigma_rel)
            .map_err(FlowError::from)
            .and_then(|annot| HdfTestFlow::try_prepare_with_annotation(&circuit, &config, annot)),
        None => HdfTestFlow::try_prepare(&circuit, &config),
    };
    let flow = match prepared {
        Ok(f) => f,
        Err(e) => worker_fail(spec, &e.to_string()),
    };
    let patterns = match flow.try_generate_patterns(req.pattern_budget) {
        Ok(p) => p,
        Err(e) => worker_fail(spec, &format!("pattern generation failed: {e}")),
    };

    // The token is attached only now — after ATPG — and the campaign
    // observes it strictly *after* each band checkpoint, so even an
    // eviction signal that arrived before the campaign started still
    // banks at least one band of durable progress per evict/readmit
    // cycle. That ordering is what makes RSS eviction livelock-free.
    let flow = flow.with_cancel(token);

    let total = patterns.len();
    let outcome = flow.run_shard_to_result(&patterns, shard, shards, &dir, &mut |progress| {
        let line = match progress {
            CampaignProgress::Resumed { next_pattern, .. } => {
                shard_events::resumed(shard, shards, next_pattern, total)
            }
            CampaignProgress::BandCheckpointed { next_pattern, .. } => {
                shard_events::heartbeat(shard, shards, next_pattern, total)
            }
        };
        println!("{line}");
    });
    match outcome {
        Ok(fingerprint) => {
            println!("{}", shard_events::done(shard, shards, fingerprint));
            let _ = std::io::Write::flush(&mut std::io::stdout());
            std::process::exit(0);
        }
        Err(FlowError::Cancelled { phase }) => {
            eprintln!("[shard-worker {spec}] cancelled during {phase}; checkpoint is resumable");
            std::process::exit(EXIT_EVICTED);
        }
        Err(e) => worker_fail(spec, &e.to_string()),
    }
}

/// Lands the job spec atomically (tmp + rename) so a worker racing a
/// supervisor restart never reads a half-written file.
fn write_spec(dir: &Path, req: &JobRequest) -> Result<(), JobError> {
    let io = |e: std::io::Error| JobError::Io {
        context: "write shard spec",
        message: e.to_string(),
    };
    let path = dir.join(SPEC_FILE);
    let tmp = dir.join(format!("{SPEC_FILE}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, format!("{}\n", proto::to_submit_line(req))).map_err(io)?;
    std::fs::rename(&tmp, &path).map_err(io)
}

/// Runs a `"shard_procs":true` job's campaign as `req.shards` supervised
/// child processes under the job's locked checkpoint directory and
/// merges the landed results (bit-identical to the in-process run).
///
/// Supervisor observations stream out as [`JobEvent::Shard`]; the
/// supervisor inherits the flow's cancel token, so a daemon drain
/// SIGTERMs the children and surfaces as a resumable `cancelled` job.
/// Its counters land in the flow's registry (`robustness.shardsup.*`),
/// which [`crate::job::run_job`] absorbs into the daemon registry.
pub(crate) fn run_supervised(
    flow: &HdfTestFlow<'_>,
    patterns: &TestSet,
    req: &JobRequest,
    dir: &Path,
    on_event: &mut dyn FnMut(JobEvent),
) -> Result<DetectionAnalysis, JobError> {
    let shards = req.shards;
    let sup_config = SupervisorConfig::from_env(shards).map_err(|e| match e {
        // An unusable FASTMON_SHARD_* knob is a configuration problem of
        // the submission environment — typed like any other bad spec.
        ShardsupError::Config { .. } => JobError::Spec {
            message: e.to_string(),
        },
        other => JobError::Shardsup(other),
    })?;
    write_spec(dir, req)?;
    let exe = match std::env::var_os(ENV_WORKER_BIN).map(PathBuf::from) {
        Some(p) => p,
        None => std::env::current_exe().map_err(|e| {
            JobError::Shardsup(ShardsupError::Launch {
                shard: 0,
                message: format!("cannot determine the worker executable: {e}"),
            })
        })?,
    };

    let mut launch = |shard: usize, attempt: u32| -> std::io::Result<Child> {
        let mut cmd = Command::new(&exe);
        cmd.arg("--shard-worker")
            .arg(format!("{shard}/{shards}"))
            .env(ENV_DIR, dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if attempt > 0 {
            // Failpoints are chaos injections for first attempts only: a
            // respawn is the recovery path under test, not a new target.
            cmd.env_remove("FASTMON_FAILPOINTS");
            cmd.env_remove("FASTMON_SHARD_HANG");
        }
        cmd.spawn()
    };
    let mut is_complete = |shard: usize| flow.shard_result_landed(patterns, shard, shards, dir);

    // Per-shard accounting the observe snapshot renders: last reported
    // progress and charged respawns, carried on every forwarded event.
    let mut respawns = vec![0u64; shards];
    let mut progress = vec![(0u64, 0u64); shards];
    let mut forward = |event: SupervisorEvent| {
        let (shard, kind) = match &event {
            SupervisorEvent::Spawned { shard, attempt, .. } => {
                respawns[*shard] = u64::from(*attempt);
                (*shard, "spawned")
            }
            SupervisorEvent::Heartbeat { shard, value, .. } => {
                let field = |key| value.get(key).and_then(Value::as_u64);
                if let (Some(next), Some(total)) = (field("next_pattern"), field("total_patterns"))
                {
                    progress[*shard] = (next, total);
                }
                let kind = match value.get("event").and_then(Value::as_str) {
                    Some("shard_resumed") => "resumed",
                    _ => "heartbeat",
                };
                (*shard, kind)
            }
            SupervisorEvent::Stalled { shard, .. } => (*shard, "stalled"),
            SupervisorEvent::Crashed { shard, .. } => (*shard, "crashed"),
            SupervisorEvent::Backoff { shard, .. } => (*shard, "backoff"),
            SupervisorEvent::RssEvicted { shard, .. } => (*shard, "rss_evicted"),
            SupervisorEvent::Readmitted { shard, .. } => (*shard, "readmitted"),
            SupervisorEvent::StragglerRedispatched { shard, .. } => (*shard, "straggler"),
            SupervisorEvent::Completed { shard, .. } => (*shard, "completed"),
            _ => return,
        };
        let (next_pattern, total_patterns) = progress[shard];
        on_event(JobEvent::Shard {
            shard,
            kind,
            respawns: respawns[shard],
            next_pattern,
            total_patterns,
        });
    };

    shardsup::run(
        &sup_config,
        &mut launch,
        &mut is_complete,
        &mut forward,
        flow.cancel_token(),
        Some(flow.metrics()),
    )
    .map_err(|e| match e {
        // A drain/deadline cancellation keeps the single-shard contract:
        // terminal status "cancelled", checkpoints resumable.
        ShardsupError::Cancelled { phase } => JobError::Flow(FlowError::Cancelled { phase }),
        other => JobError::Shardsup(other),
    })?;

    flow.merge_shard_results(patterns, shards, dir)
        .map_err(JobError::Flow)
}
