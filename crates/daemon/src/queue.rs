//! Bounded multi-tenant job queue with admission control.
//!
//! Submission never blocks: a full queue is a typed
//! [`AdmitError::QueueFull`] the connection handler turns into a reject
//! record, so a misbehaving client cannot wedge the accept loop. Workers
//! pop round-robin across tenants, so one tenant flooding the queue
//! cannot starve another — a tenant with one queued job waits behind at
//! most one job per other tenant, not behind the flood.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a submission was refused at admission time.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmitError {
    /// The queue is at capacity.
    QueueFull {
        /// The configured capacity.
        limit: usize,
    },
    /// The daemon is draining and no longer admits work.
    Draining,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { limit } => {
                write!(f, "queue full ({limit} jobs queued)")
            }
            AdmitError::Draining => write!(f, "daemon is draining"),
        }
    }
}

impl std::error::Error for AdmitError {}

impl AdmitError {
    /// Stable machine-readable discriminant for reject records.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::Draining => "draining",
        }
    }
}

/// A queued tenant's lane state, as reported by
/// [`JobQueue::tenant_depths`]. Lanes persist once a tenant has ever
/// submitted (the round-robin cursor needs stable indices), so a depth
/// of 0 means "known tenant, nothing queued right now".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantDepth {
    /// Tenant name.
    pub tenant: String,
    /// Jobs currently queued in this lane.
    pub queued: usize,
    /// How long the head-of-lane job has been waiting (`None` when the
    /// lane is empty).
    pub oldest_wait: Option<Duration>,
}

struct Lane<T> {
    tenant: String,
    /// Each job carries its enqueue instant so pops can report
    /// queue-wait latency and `tenant_depths` the oldest-queued age.
    jobs: VecDeque<(T, Instant)>,
}

struct State<T> {
    /// One lane per tenant that has ever submitted; empty lanes stay in
    /// place so the round-robin cursor remains stable.
    lanes: Vec<Lane<T>>,
    /// Next lane the round-robin pop inspects.
    cursor: usize,
    /// Total queued jobs across all lanes.
    len: usize,
    draining: bool,
}

/// A bounded FIFO-per-tenant queue with round-robin dispatch.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    limit: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `limit` queued jobs in total.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                draining: false,
            }),
            available: Condvar::new(),
            limit,
        }
    }

    /// Admits a job for `tenant`, or refuses with a typed error. Never
    /// blocks.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QueueFull`] at capacity, [`AdmitError::Draining`]
    /// once [`JobQueue::start_drain`] has run.
    pub fn submit(&self, tenant: &str, job: T) -> Result<usize, AdmitError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.draining {
            return Err(AdmitError::Draining);
        }
        if state.len >= self.limit {
            return Err(AdmitError::QueueFull { limit: self.limit });
        }
        let entry = (job, Instant::now());
        match state.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => lane.jobs.push_back(entry),
            None => state.lanes.push(Lane {
                tenant: tenant.to_string(),
                jobs: VecDeque::from([entry]),
            }),
        }
        state.len += 1;
        let len = state.len;
        drop(state);
        self.available.notify_one();
        Ok(len)
    }

    /// Blocks for the next job, visiting tenants round-robin. Returns
    /// `None` once the queue is draining and empty — the worker's signal
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        self.pop_timed().map(|(job, _)| job)
    }

    /// [`JobQueue::pop`], additionally reporting how long the popped job
    /// sat queued (the daemon's queue-wait latency histogram feeds from
    /// this).
    pub fn pop_timed(&self) -> Option<(T, Duration)> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.len > 0 {
                let lanes = state.lanes.len();
                for step in 0..lanes {
                    let idx = (state.cursor + step) % lanes;
                    if let Some((job, enqueued)) = state.lanes[idx].jobs.pop_front() {
                        state.cursor = (idx + 1) % lanes;
                        state.len -= 1;
                        return Some((job, enqueued.elapsed()));
                    }
                }
                unreachable!("len > 0 but every lane was empty");
            }
            if state.draining {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Per-tenant lane depths and oldest-queued ages, in lane (first
    /// submission) order.
    #[must_use]
    pub fn tenant_depths(&self) -> Vec<TenantDepth> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state
            .lanes
            .iter()
            .map(|lane| TenantDepth {
                tenant: lane.tenant.clone(),
                queued: lane.jobs.len(),
                oldest_wait: lane.jobs.front().map(|(_, enqueued)| enqueued.elapsed()),
            })
            .collect()
    }

    /// Stops admissions and wakes all blocked workers. Jobs already
    /// queued are still handed out (the server decides whether to run or
    /// refuse them).
    pub fn start_drain(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .draining = true;
        self.available.notify_all();
    }

    /// Number of jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_bounded_and_typed() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit("a", 1), Ok(1));
        assert_eq!(q.submit("a", 2), Ok(2));
        assert_eq!(q.submit("a", 3), Err(AdmitError::QueueFull { limit: 2 }));
        assert_eq!(
            q.submit("b", 4),
            Err(AdmitError::QueueFull { limit: 2 }),
            "the bound is global, not per-tenant"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.submit("a", 3), Ok(2));
    }

    #[test]
    fn pop_round_robins_across_tenants() {
        let q = JobQueue::new(16);
        for job in ["a1", "a2", "a3", "a4"] {
            q.submit("a", job).unwrap();
        }
        q.submit("b", "b1").unwrap();
        // Tenant b's lone job jumps the flood from tenant a: it waits
        // behind one a-job (the cursor was on a's lane), not four.
        assert_eq!(q.pop(), Some("a1"));
        assert_eq!(q.pop(), Some("b1"));
        assert_eq!(q.pop(), Some("a2"));
        assert_eq!(q.pop(), Some("a3"));
        assert_eq!(q.pop(), Some("a4"));
    }

    #[test]
    fn tenant_depths_and_timed_pops_report_lane_state() {
        let q = JobQueue::new(8);
        q.submit("a", 1).unwrap();
        q.submit("a", 2).unwrap();
        q.submit("b", 3).unwrap();
        let depths = q.tenant_depths();
        assert_eq!(depths.len(), 2);
        assert_eq!(depths[0].tenant, "a");
        assert_eq!(depths[0].queued, 2);
        assert!(depths[0].oldest_wait.is_some());
        assert_eq!(depths[1].tenant, "b");
        assert_eq!(depths[1].queued, 1);

        let (job, wait) = q.pop_timed().unwrap();
        assert_eq!(job, 1);
        assert!(wait >= std::time::Duration::ZERO);
        // Drained lanes stay listed (cursor stability) but report empty.
        q.pop();
        q.pop();
        let depths = q.tenant_depths();
        assert_eq!(depths.len(), 2);
        assert!(depths.iter().all(|d| d.queued == 0));
        assert!(depths.iter().all(|d| d.oldest_wait.is_none()));
    }

    #[test]
    fn drain_rejects_new_work_and_releases_workers() {
        let q = std::sync::Arc::new(JobQueue::<u32>::new(4));
        q.submit("a", 7).unwrap();
        q.start_drain();
        assert_eq!(q.submit("a", 8), Err(AdmitError::Draining));
        assert_eq!(q.pop(), Some(7), "queued work still drains out");
        assert_eq!(q.pop(), None, "then workers are released");

        // A worker blocked in pop() before the drain also wakes.
        let q2 = std::sync::Arc::new(JobQueue::<u32>::new(4));
        let waiter = {
            let q2 = q2.clone();
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.start_drain();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
