//! The `fastmond` server: accept loop, connection handlers, worker pool,
//! graceful drain.
//!
//! Threading model: one nonblocking accept loop polling the drain flag,
//! one thread per connection (bounded by the OS, connections are cheap
//! and mostly blocked on reads), and a fixed worker pool popping the
//! bounded [`JobQueue`]. Submission is admission-controlled — a full
//! queue answers a typed reject record instead of blocking the
//! connection.
//!
//! Drain (SIGTERM / [`DaemonHandle::drain`]): stop accepting, stop
//! admitting, cancel every running job's [`CancelToken`] so campaigns
//! stop at their next durable band checkpoint, hand queued-but-unstarted
//! jobs a `drained` terminal record, then exit 0. Nothing is lost: every
//! cancelled campaign resumes bit-identically from its checkpoint.
//!
//! Worker panics are contained per job with `catch_unwind`: the client
//! gets a `failed` terminal record with `kind:"panic"`, the counter
//! `robustness.daemon.panics_contained` ticks, and the worker thread
//! survives to take the next job.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fastmon_core::CheckpointDir;
use fastmon_obs::{CancelToken, MetricsRegistry, Record};

use crate::flight::FlightRecorder;
use crate::job::{run_job, JobEvent};
use crate::proto::{self, JobRequest, ProtoError, Request, MAX_LINE_BYTES};
use crate::queue::JobQueue;
use crate::signals;

/// How a daemon instance is wired up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Campaign worker threads.
    pub workers: usize,
    /// Queue capacity — submissions beyond this are rejected, not
    /// queued.
    pub queue_limit: usize,
    /// Root of the per-campaign checkpoint directories.
    pub checkpoint_root: PathBuf,
    /// Where completed results land (`<fingerprint>.json`).
    pub results_dir: PathBuf,
    /// GC grace period: checkpoints younger than this are never
    /// collected, protecting queued and freshly-crashed campaigns whose
    /// fingerprints the daemon cannot know yet.
    pub gc_grace: Duration,
    /// Where failed/panicked jobs dump their flight-recorder
    /// post-mortems (`<name>-<job id>.jsonl`).
    pub postmortem_dir: PathBuf,
}

impl DaemonConfig {
    /// A config rooted at `dir` (checkpoints and results underneath),
    /// listening on an ephemeral localhost port.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_limit: 16,
            checkpoint_root: dir.join("checkpoints"),
            results_dir: dir.join("results"),
            gc_grace: Duration::from_secs(900),
            postmortem_dir: dir.join("postmortems"),
        }
    }
}

/// A job as queued: the parsed request plus the event channel back to
/// the submitting connection.
struct QueuedJob {
    req: Box<JobRequest>,
    events: Sender<WorkerMsg>,
}

enum WorkerMsg {
    /// A progress record line.
    Line(String),
    /// The final record line; the connection stops streaming after it.
    Terminal(String),
}

/// Live state of one supervised shard of a `"shard_procs"` job, kept
/// current from forwarded [`JobEvent::Shard`] rows for the `observe`
/// snapshot.
struct ShardRow {
    shard: u64,
    /// Last supervisor observation (`spawned`, `heartbeat`, `stalled`,
    /// `rss_evicted`, `completed`, ...).
    state: &'static str,
    /// Charged respawns so far.
    respawns: u64,
    /// First pattern still unsimulated within the shard's slice.
    next_pattern: u64,
    /// Patterns in the shard's slice (0 until the worker reports).
    total_patterns: u64,
}

/// Live state of one in-flight job, kept current by `run_one`'s event
/// callback so `observe` can report phase/band progress without touching
/// the worker.
struct RunningJob {
    id: u64,
    tenant: String,
    name: String,
    cancel: CancelToken,
    fingerprint: Option<u64>,
    phase: &'static str,
    /// First pattern still unsimulated (0 until the campaign reports).
    next_pattern: u64,
    /// Total patterns in the campaign (0 until known).
    total_patterns: u64,
    /// Band checkpoints that reached disk during *this* run.
    bands_done: u64,
    /// Where this run started simulating (nonzero after a resume) — the
    /// ETA extrapolates from patterns done by this process, not by its
    /// predecessors.
    start_pattern: u64,
    resumed: bool,
    started: Instant,
    /// Per-shard supervisor state (`"shard_procs"` jobs only; empty
    /// otherwise).
    shards: Vec<ShardRow>,
}

struct Running {
    jobs: Vec<RunningJob>,
    next_id: u64,
}

struct Shared {
    queue: JobQueue<QueuedJob>,
    metrics: Arc<MetricsRegistry>,
    running: Mutex<Running>,
    checkpoints: CheckpointDir,
    results_dir: PathBuf,
    gc_grace: Duration,
    postmortems: PathBuf,
    started: Instant,
    drain: AtomicBool,
}

impl Shared {
    fn lock_running(&self) -> std::sync::MutexGuard<'_, Running> {
        self.running.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || signals::drain_requested()
    }

    /// Idempotent: flips the flag, closes admissions, cancels running
    /// campaigns (they stop at their next durable checkpoint).
    fn start_drain(&self) {
        if self.drain.swap(true, Ordering::SeqCst) {
            return;
        }
        self.metrics.daemon.drains.incr();
        self.queue.start_drain();
        for job in &self.lock_running().jobs {
            job.cancel.cancel();
        }
    }

    /// Runs `update` on the live entry for job `id`, if it still exists.
    fn update_job(&self, id: u64, update: impl FnOnce(&mut RunningJob)) {
        let mut running = self.lock_running();
        if let Some(job) = running.jobs.iter_mut().find(|j| j.id == id) {
            update(job);
        }
    }
}

/// A started daemon; dropping the handle does **not** stop it — call
/// [`DaemonHandle::drain`] then [`DaemonHandle::join`].
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry
    /// (`robustness.daemon.*` counters live here).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Requests a graceful drain (same effect as SIGTERM).
    pub fn drain(&self) {
        self.shared.start_drain();
    }

    /// Waits for the accept loop and worker pool to finish. Returns only
    /// after a drain was requested (via [`DaemonHandle::drain`] or a
    /// signal).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The daemon. See [`Daemon::start`].
pub struct Daemon;

impl Daemon {
    /// Binds the listen socket, spawns the worker pool and the accept
    /// loop, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_limit),
            metrics: Arc::new(MetricsRegistry::new()),
            running: Mutex::new(Running {
                jobs: Vec::new(),
                next_id: 0,
            }),
            checkpoints: CheckpointDir::new(config.checkpoint_root),
            results_dir: config.results_dir,
            gc_grace: config.gc_grace,
            postmortems: config.postmortem_dir,
            started: Instant::now(),
            drain: AtomicBool::new(false),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fastmond-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fastmond-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(DaemonHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining() {
            // Signal-delivered drains bypass Shared::start_drain; make
            // sure the queue and running jobs hear about it exactly once.
            shared.start_drain();
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("fastmond-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((job, wait)) = shared.queue.pop_timed() {
        shared.metrics.latency.queue_wait.record_duration(wait);
        if shared.draining() {
            // Queued but never started: refuse cleanly so the client
            // knows to resubmit after restart.
            let line = Record::new()
                .str("event", "terminal")
                .str("status", "drained")
                .str("name", &job.req.name)
                .finish();
            let _ = job.events.send(WorkerMsg::Terminal(line));
            continue;
        }
        run_one(shared, &job);
    }
}

fn run_one(shared: &Arc<Shared>, job: &QueuedJob) {
    // parse_submit already rejects deadlines Duration cannot represent;
    // fall back to an unbounded token rather than trusting that (this
    // runs outside catch_unwind — a panic here would kill the worker).
    let cancel = match job
        .req
        .deadline_secs
        .and_then(|secs| Duration::try_from_secs_f64(secs).ok())
    {
        Some(budget) => CancelToken::with_deadline(budget),
        None => CancelToken::new(),
    };
    let id = {
        let mut running = shared.lock_running();
        running.next_id += 1;
        let id = running.next_id;
        running.jobs.push(RunningJob {
            id,
            tenant: job.req.tenant.clone(),
            name: job.req.name.clone(),
            cancel: cancel.clone(),
            fingerprint: None,
            phase: "queued",
            next_pattern: 0,
            total_patterns: 0,
            bands_done: 0,
            start_pattern: 0,
            resumed: false,
            started: Instant::now(),
            shards: Vec::new(),
        });
        id
    };
    if shared.draining() {
        cancel.cancel();
    }

    let flight = FlightRecorder::new(64);
    flight.note(
        "start",
        format!("tenant={} name={}", job.req.tenant, job.req.name),
    );
    let failpoints_seen = std::cell::Cell::new(fastmon_obs::failpoints::fired_count());
    let fingerprint = std::cell::Cell::new(None::<u64>);
    let send = |line: String| {
        // The client may be gone; the campaign still runs to its result.
        let _ = job.events.send(WorkerMsg::Line(line));
    };
    // Failpoints are process-global; per-band deltas attribute them to
    // the job that observed them, which is exact with one worker and a
    // close approximation under concurrency — good enough for a
    // post-mortem trail.
    let note_failpoints = || {
        let now = fastmon_obs::failpoints::fired_count();
        let before = failpoints_seen.replace(now);
        if now > before {
            flight.note(
                "failpoint",
                format!("fired={} (process total)", now - before),
            );
        }
    };
    let t_run = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut on_event = |event: JobEvent| match event {
            JobEvent::Phase { phase } => {
                flight.note("phase", phase);
                shared.update_job(id, |j| j.phase = phase);
                send(
                    Record::new()
                        .str("event", "phase")
                        .str("name", &job.req.name)
                        .str("phase", phase)
                        .finish(),
                );
            }
            JobEvent::Campaign { fingerprint: fp } => {
                fingerprint.set(Some(fp));
                flight.note("campaign", format!("fingerprint={fp:016x}"));
                shared.update_job(id, |j| j.fingerprint = Some(fp));
                send(
                    Record::new()
                        .str("event", "campaign")
                        .str("name", &job.req.name)
                        .fingerprint("fingerprint", fp)
                        .finish(),
                );
            }
            JobEvent::Resumed {
                next_pattern,
                total_patterns,
                prev_run,
            } => {
                flight.note(
                    "resumed",
                    match prev_run {
                        Some(prev) => {
                            format!("next_pattern={next_pattern} prev_run={prev:016x}")
                        }
                        None => format!("next_pattern={next_pattern}"),
                    },
                );
                shared.update_job(id, |j| {
                    j.resumed = true;
                    j.next_pattern = next_pattern as u64;
                    j.start_pattern = next_pattern as u64;
                    j.total_patterns = total_patterns as u64;
                });
                let mut rec = Record::new()
                    .str("event", "resumed")
                    .str("name", &job.req.name)
                    .u64("next_pattern", next_pattern as u64)
                    .u64("total_patterns", total_patterns as u64);
                if let Some(prev) = prev_run {
                    rec = rec.fingerprint("prev_run", prev);
                }
                send(rec.finish());
            }
            JobEvent::Band {
                next_pattern,
                total_patterns,
            } => {
                note_failpoints();
                flight.note(
                    "band",
                    format!("next_pattern={next_pattern} total_patterns={total_patterns}"),
                );
                shared.update_job(id, |j| {
                    j.next_pattern = next_pattern as u64;
                    j.total_patterns = total_patterns as u64;
                    j.bands_done += 1;
                });
                send(
                    Record::new()
                        .str("event", "band")
                        .str("name", &job.req.name)
                        .u64("next_pattern", next_pattern as u64)
                        .u64("total_patterns", total_patterns as u64)
                        .finish(),
                );
            }
            JobEvent::Shard {
                shard,
                kind,
                respawns,
                next_pattern,
                total_patterns,
            } => {
                // Band-granularity heartbeats are routine; everything
                // else (spawns, stalls, crashes, evictions) is a
                // supervisor decision worth a post-mortem trail entry.
                if kind != "heartbeat" {
                    note_failpoints();
                    flight.note("shard", format!("shard={shard} {kind} respawns={respawns}"));
                }
                shared.update_job(id, |j| {
                    // Upsert keeping the rows sorted by shard index.
                    let pos = j.shards.partition_point(|r| r.shard < shard as u64);
                    if j.shards.get(pos).map(|r| r.shard) != Some(shard as u64) {
                        j.shards.insert(
                            pos,
                            ShardRow {
                                shard: shard as u64,
                                state: "pending",
                                respawns: 0,
                                next_pattern: 0,
                                total_patterns: 0,
                            },
                        );
                    }
                    let row = &mut j.shards[pos];
                    row.state = kind;
                    row.respawns = respawns;
                    if next_pattern > 0 || total_patterns > 0 {
                        row.next_pattern = next_pattern;
                        row.total_patterns = total_patterns;
                    }
                });
                send(
                    Record::new()
                        .str("event", "shard")
                        .str("name", &job.req.name)
                        .u64("shard", shard as u64)
                        .str("kind", kind)
                        .u64("respawns", respawns)
                        .u64("next_pattern", next_pattern)
                        .u64("total_patterns", total_patterns)
                        .finish(),
                );
            }
        };
        run_job(
            &job.req,
            &shared.checkpoints,
            &shared.results_dir,
            &cancel,
            Some(shared.metrics.as_ref()),
            &mut on_event,
        )
    }));
    shared
        .metrics
        .latency
        .job_run
        .record_duration(t_run.elapsed());
    note_failpoints();

    let metrics = &shared.metrics.daemon;
    // (terminal record, terminal status + error kind when the flight
    // recorder should dump a post-mortem)
    let (terminal, crashed) = match result {
        Ok(Ok(outcome)) => {
            metrics.jobs_completed.incr();
            if outcome.resumed {
                metrics.jobs_resumed.incr();
            }
            let line = Record::new()
                .str("event", "terminal")
                .str("status", "completed")
                .str("name", &job.req.name)
                .fingerprint("fingerprint", outcome.fingerprint)
                .fingerprint("result_fingerprint", outcome.result_fingerprint)
                .bool("resumed", outcome.resumed)
                .u64("num_patterns", outcome.num_patterns as u64)
                .u64("num_faults", outcome.num_faults as u64)
                .u64("num_targets", outcome.num_targets as u64)
                .u64("covered", outcome.covered as u64)
                .bool("optimal", outcome.optimal)
                .finish();
            (line, None)
        }
        Ok(Err(err)) => {
            let status = if matches!(err.kind(), "cancelled") {
                metrics.jobs_cancelled.incr();
                "cancelled"
            } else {
                metrics.jobs_failed.incr();
                "failed"
            };
            let message = err.to_string();
            flight.note("error", format!("kind={} {message}", err.kind()));
            let mut rec = Record::new()
                .str("event", "terminal")
                .str("status", status)
                .str("name", &job.req.name)
                .str("kind", err.kind())
                .str("message", &message)
                .bool("resumable", err.resumable());
            let crashed = (status == "failed").then(|| ("failed", err.kind()));
            if crashed.is_some() {
                rec = rec.raw("flight_recorder", &flight.to_json_array());
            }
            (rec.finish(), crashed)
        }
        Err(panic) => {
            metrics.panics_contained.incr();
            metrics.jobs_failed.incr();
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            flight.note("error", format!("panic: {message}"));
            let line = Record::new()
                .str("event", "terminal")
                .str("status", "failed")
                .str("name", &job.req.name)
                .str("kind", "panic")
                .str("message", &message)
                .bool("resumable", true)
                .raw("flight_recorder", &flight.to_json_array())
                .finish();
            (line, Some(("failed", "panic")))
        }
    };
    if let Some((status, kind)) = crashed {
        write_postmortem(shared, job, id, &flight, status, kind);
    }
    let _ = job.events.send(WorkerMsg::Terminal(terminal));

    shared.lock_running().jobs.retain(|j| j.id != id);
}

/// Dumps a crashed job's flight-recorder tail to
/// `<postmortem_dir>/<name>-<job id>.jsonl`. Best-effort: a failed dump
/// is reported on stderr, never escalated.
fn write_postmortem(
    shared: &Shared,
    job: &QueuedJob,
    id: u64,
    flight: &FlightRecorder,
    status: &str,
    kind: &str,
) {
    let safe_name: String = job
        .req
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .take(64)
        .collect();
    let path = shared.postmortems.join(format!("{safe_name}-{id}.jsonl"));
    let header = Record::new()
        .str("event", "postmortem")
        .str("tenant", &job.req.tenant)
        .str("name", &job.req.name)
        .str("status", status)
        .str("kind", kind)
        .str("run", &fastmon_obs::run_id())
        .u64("job_id", id)
        .u64("dropped", flight.dropped())
        .finish();
    if let Err(e) = flight.write_postmortem(&path, &header) {
        eprintln!(
            "warning: could not write post-mortem {}: {e}",
            path.display()
        );
    }
}

enum LineRead {
    Line(String),
    TooLong,
    Draining,
    Closed,
}

/// Reads one `\n`-terminated line, enforcing [`MAX_LINE_BYTES`] and
/// polling the drain flag across read timeouts.
fn read_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return LineRead::Closed;
            }
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return LineRead::Draining;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Closed,
        };
        let (take, done) = match chunk.iter().position(|b| *b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE_BYTES {
            return LineRead::TooLong;
        }
        if done {
            while line.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                line.pop();
            }
            // Invalid UTF-8 is "not JSON", reported like any other
            // garbage line rather than killing the connection.
            return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
        }
    }
}

fn error_record(err: &ProtoError) -> String {
    Record::new()
        .str("event", "error")
        .str("kind", err.kind())
        .str("message", &err.to_string())
        .finish()
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line(&mut reader, shared) {
            LineRead::Line(line) => line,
            LineRead::TooLong => {
                // The stream is no longer line-synchronized; answer and
                // hang up.
                let err = ProtoError::LineTooLong {
                    limit: MAX_LINE_BYTES,
                };
                let _ = write_line(&mut writer, &error_record(&err));
                return;
            }
            LineRead::Draining | LineRead::Closed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let t_parse = Instant::now();
        let parsed = proto::parse_request(&line);
        shared
            .metrics
            .latency
            .proto_parse
            .record_duration(t_parse.elapsed());
        let request = match parsed {
            Ok(req) => req,
            Err(err) => {
                if !write_line(&mut writer, &error_record(&err)) {
                    return;
                }
                continue;
            }
        };
        let t_handle = Instant::now();
        let keep_going = match request {
            Request::Ping => write_line(
                &mut writer,
                &Record::new()
                    .str("event", "pong")
                    .u64("proto", proto::PROTO_VERSION)
                    .finish(),
            ),
            Request::Status => write_line(&mut writer, &status_record(shared)),
            Request::Observe => write_line(&mut writer, &observe_record(shared)),
            Request::Watch { interval_ms, count } => {
                handle_watch(&mut writer, shared, interval_ms, count)
            }
            Request::Gc { min_age_secs } => {
                write_line(&mut writer, &gc_record(shared, min_age_secs))
            }
            Request::Submit(req) => handle_submit(&mut writer, shared, req),
        };
        shared
            .metrics
            .latency
            .proto_handle
            .record_duration(t_handle.elapsed());
        if !keep_going {
            return;
        }
    }
}

/// Per-tenant lane state as a JSON array (shared by `status` and
/// `observe`).
fn tenants_json(shared: &Shared) -> String {
    let mut s = String::from("[");
    for (i, lane) in shared.queue.tenant_depths().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut rec = Record::new()
            .str("tenant", &lane.tenant)
            .u64("queued", lane.queued as u64);
        if let Some(wait) = lane.oldest_wait {
            rec = rec.f64("oldest_wait_secs", wait.as_secs_f64());
        }
        s.push_str(&rec.finish());
    }
    s.push(']');
    s
}

fn status_record(shared: &Shared) -> String {
    let running = shared.lock_running().jobs.len();
    let m = &shared.metrics.daemon;
    Record::new()
        .str("event", "status")
        .u64("proto", proto::PROTO_VERSION)
        .u64("uptime_secs", shared.started.elapsed().as_secs())
        .u64("queued", shared.queue.len() as u64)
        .u64("queue_limit", shared.queue.limit() as u64)
        .u64("running", running as u64)
        .bool("draining", shared.draining())
        .raw("tenants", &tenants_json(shared))
        .u64("jobs_admitted", m.jobs_admitted.get())
        .u64("jobs_rejected", m.jobs_rejected.get())
        .u64("jobs_resumed", m.jobs_resumed.get())
        .u64("jobs_completed", m.jobs_completed.get())
        .u64("jobs_failed", m.jobs_failed.get())
        .u64("jobs_cancelled", m.jobs_cancelled.get())
        .u64("panics_contained", m.panics_contained.get())
        .finish()
}

/// The deep telemetry snapshot behind the `observe` and `watch` ops:
/// queue + tenant lanes, per-job phase/band progress with an ETA, and
/// the full accumulated registry (counters and latency quantiles).
fn observe_record(shared: &Shared) -> String {
    let jobs_json = {
        let running = shared.lock_running();
        let mut s = String::from("[");
        for (i, j) in running.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let elapsed = j.started.elapsed().as_secs_f64();
            let mut rec = Record::new()
                .u64("id", j.id)
                .str("tenant", &j.tenant)
                .str("name", &j.name)
                .str("phase", j.phase)
                .bool("resumed", j.resumed)
                .u64("bands_done", j.bands_done)
                .u64("next_pattern", j.next_pattern)
                .u64("total_patterns", j.total_patterns)
                .f64("elapsed_secs", elapsed);
            if let Some(fp) = j.fingerprint {
                rec = rec.fingerprint("fingerprint", fp);
            }
            if !j.shards.is_empty() {
                let mut rows = String::from("[");
                for (k, r) in j.shards.iter().enumerate() {
                    if k > 0 {
                        rows.push(',');
                    }
                    rows.push_str(
                        &Record::new()
                            .u64("shard", r.shard)
                            .str("state", r.state)
                            .u64("respawns", r.respawns)
                            .u64("next_pattern", r.next_pattern)
                            .u64("total_patterns", r.total_patterns)
                            .finish(),
                    );
                }
                rows.push(']');
                rec = rec.raw("shards", &rows);
            }
            // Extrapolate from what *this* process simulated; patterns
            // inherited from a resumed checkpoint cost it nothing.
            let done = j.next_pattern.saturating_sub(j.start_pattern);
            let remaining = j.total_patterns.saturating_sub(j.next_pattern);
            if done > 0 && remaining > 0 && elapsed > 0.0 {
                #[allow(clippy::cast_precision_loss)]
                let eta = elapsed * remaining as f64 / done as f64;
                rec = rec.f64("eta_secs", eta);
            }
            s.push_str(&rec.finish());
        }
        s.push(']');
        s
    };
    Record::new()
        .str("event", "observe")
        .u64("proto", proto::PROTO_VERSION)
        .u64("uptime_secs", shared.started.elapsed().as_secs())
        .u64("queued", shared.queue.len() as u64)
        .u64("queue_limit", shared.queue.limit() as u64)
        .bool("draining", shared.draining())
        .raw("tenants", &tenants_json(shared))
        .raw("jobs", &jobs_json)
        .raw("counters", &shared.metrics.to_json())
        .raw("latency", &shared.metrics.latency.to_json())
        .finish()
}

/// Streams `observe` snapshots every `interval_ms` until `count` is
/// exhausted (0 = unbounded), the client disconnects, or the daemon
/// drains. Returns `false` when the connection died.
fn handle_watch(writer: &mut TcpStream, shared: &Shared, interval_ms: u64, count: u64) -> bool {
    let mut emitted = 0u64;
    loop {
        if !write_line(writer, &observe_record(shared)) {
            return false;
        }
        emitted += 1;
        if count != 0 && emitted >= count {
            return true;
        }
        // Sleep in short slices so a drain ends the stream promptly.
        let mut left = Duration::from_millis(interval_ms);
        while !left.is_zero() {
            if shared.draining() {
                return true;
            }
            let slice = left.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
        if shared.draining() {
            return true;
        }
    }
}

fn gc_record(shared: &Shared, min_age_secs: Option<u64>) -> String {
    let live: Vec<u64> = shared
        .lock_running()
        .jobs
        .iter()
        .filter_map(|j| j.fingerprint)
        .collect();
    let grace = min_age_secs.map_or(shared.gc_grace, Duration::from_secs);
    match shared.checkpoints.gc(&live, grace) {
        Ok(report) => Record::new()
            .str("event", "gc")
            .u64("removed", report.removed.len() as u64)
            .u64("kept_live", report.kept_live as u64)
            .u64("kept_locked", report.kept_locked as u64)
            .u64("kept_young", report.kept_young as u64)
            .finish(),
        Err(e) => Record::new()
            .str("event", "error")
            .str("kind", "gc")
            .str("message", &e.to_string())
            .finish(),
    }
}

/// Admits (or rejects) a submission, then streams its worker events
/// until the terminal record. Returns `false` when the connection died.
fn handle_submit(writer: &mut TcpStream, shared: &Arc<Shared>, req: Box<JobRequest>) -> bool {
    let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = channel();
    let tenant = req.tenant.clone();
    let name = req.name.clone();
    match shared.queue.submit(&tenant, QueuedJob { req, events: tx }) {
        Err(err) => {
            shared.metrics.daemon.jobs_rejected.incr();
            write_line(
                writer,
                &Record::new()
                    .str("event", "reject")
                    .str("name", &name)
                    .str("kind", err.kind())
                    .str("message", &err.to_string())
                    .finish(),
            )
        }
        Ok(queued) => {
            shared.metrics.daemon.jobs_admitted.incr();
            if !write_line(
                writer,
                &Record::new()
                    .str("event", "admitted")
                    .str("name", &name)
                    .u64("queued", queued as u64)
                    .finish(),
            ) {
                return false;
            }
            loop {
                match rx.recv() {
                    Ok(WorkerMsg::Line(line)) => {
                        if !write_line(writer, &line) {
                            // Client is gone; drop the receiver. The
                            // worker keeps running the campaign to its
                            // durable result.
                            return false;
                        }
                    }
                    Ok(WorkerMsg::Terminal(line)) => return write_line(writer, &line),
                    Err(_) => return false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn client(addr: SocketAddr) -> (std::io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        (std::io::BufReader::new(stream), writer)
    }

    fn send(writer: &mut TcpStream, line: &str) {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }

    fn recv(reader: &mut std::io::BufReader<TcpStream>) -> fastmon_obs::json::Value {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        fastmon_obs::json::parse(line.trim()).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fastmond-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event_of(v: &fastmon_obs::json::Value) -> String {
        v.get("event").and_then(|e| e.as_str()).unwrap().to_string()
    }

    #[test]
    fn ping_status_and_submit_round_trip() {
        let root = tmp("rt");
        let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
        let (mut reader, mut writer) = client(handle.addr());

        send(&mut writer, r#"{"op":"ping"}"#);
        assert_eq!(event_of(&recv(&mut reader)), "pong");

        send(&mut writer, r#"{"op":"status"}"#);
        let status = recv(&mut reader);
        assert_eq!(event_of(&status), "status");
        assert_eq!(status.get("queued").and_then(|v| v.as_u64()), Some(0));

        send(
            &mut writer,
            r#"{"op":"submit","name":"s27-job","circuit":{"kind":"library","name":"s27"}}"#,
        );
        assert_eq!(event_of(&recv(&mut reader)), "admitted");
        let terminal = loop {
            let v = recv(&mut reader);
            if event_of(&v) == "terminal" {
                break v;
            }
        };
        assert_eq!(
            terminal.get("status").and_then(|v| v.as_str()),
            Some("completed")
        );
        assert!(terminal
            .get("result_fingerprint")
            .and_then(|v| v.as_str())
            .is_some());

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_lines_get_typed_error_records_and_the_daemon_survives() {
        let root = tmp("garbage");
        let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
        let (mut reader, mut writer) = client(handle.addr());

        for (line, kind) in [
            ("garbage", "json"),
            ("{\"op\":\"frobnicate\"}", "unknown_op"),
            ("[1,2,3]", "not_an_object"),
            ("{}", "missing_field"),
        ] {
            send(&mut writer, line);
            let v = recv(&mut reader);
            assert_eq!(event_of(&v), "error");
            assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some(kind));
        }
        // still alive afterwards
        send(&mut writer, r#"{"op":"ping"}"#);
        assert_eq!(event_of(&recv(&mut reader)), "pong");

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let root = tmp("admit");
        let mut config = DaemonConfig::at(&root);
        config.workers = 1;
        config.queue_limit = 1;
        let handle = Daemon::start(config).unwrap();

        // A slow-ish job ties up the single worker; the queue then holds
        // one more, and the third submission is rejected.
        let submit = |name: &str| {
            format!(
                r#"{{"op":"submit","name":"{name}","circuit":{{"kind":"profile","name":"s9234","scale":0.05,"seed":7}},"max_faults":40,"pattern_budget":16}}"#
            )
        };
        let (mut r1, mut w1) = client(handle.addr());
        send(&mut w1, &submit("a"));
        assert_eq!(event_of(&recv(&mut r1)), "admitted");
        let (mut r2, mut w2) = client(handle.addr());
        send(&mut w2, &submit("b"));
        assert_eq!(event_of(&recv(&mut r2)), "admitted");
        // Give the worker a moment to start job a so the queue slot is
        // definitely occupied by b.
        std::thread::sleep(Duration::from_millis(100));
        let (mut r3, mut w3) = client(handle.addr());
        send(&mut w3, &submit("c"));
        let v = recv(&mut r3);
        // Either the queue was still full (reject) or the worker already
        // drained it (admitted) — on a loaded machine both are legal;
        // what matters is that the daemon answered without blocking.
        assert!(matches!(event_of(&v).as_str(), "reject" | "admitted"));

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drain_cancels_running_jobs_at_a_checkpoint_boundary() {
        let root = tmp("drain");
        let mut config = DaemonConfig::at(&root);
        config.workers = 1;
        let handle = Daemon::start(config).unwrap();
        let (mut reader, mut writer) = client(handle.addr());
        send(
            &mut writer,
            r#"{"op":"submit","name":"big","circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},"max_faults":150}"#,
        );
        assert_eq!(event_of(&recv(&mut reader)), "admitted");
        // Wait until the campaign is actually running (fingerprint known).
        loop {
            let v = recv(&mut reader);
            if event_of(&v) == "campaign" {
                break;
            }
        }
        handle.drain();
        let terminal = loop {
            let v = recv(&mut reader);
            if event_of(&v) == "terminal" {
                break v;
            }
        };
        let status = terminal.get("status").and_then(|v| v.as_str()).unwrap();
        // Cancelled at the next band boundary — or completed, if the
        // campaign was already past its last band when the drain landed.
        assert!(matches!(status, "cancelled" | "completed"), "got {status}");
        if status == "cancelled" {
            assert_eq!(
                terminal.get("resumable").and_then(|v| v.as_bool()),
                Some(true)
            );
        }
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }
}
