//! The `fastmond` server: accept loop, connection handlers, worker pool,
//! graceful drain.
//!
//! Threading model: one nonblocking accept loop polling the drain flag,
//! one thread per connection (bounded by the OS, connections are cheap
//! and mostly blocked on reads), and a fixed worker pool popping the
//! bounded [`JobQueue`]. Submission is admission-controlled — a full
//! queue answers a typed reject record instead of blocking the
//! connection.
//!
//! Drain (SIGTERM / [`DaemonHandle::drain`]): stop accepting, stop
//! admitting, cancel every running job's [`CancelToken`] so campaigns
//! stop at their next durable band checkpoint, hand queued-but-unstarted
//! jobs a `drained` terminal record, then exit 0. Nothing is lost: every
//! cancelled campaign resumes bit-identically from its checkpoint.
//!
//! Worker panics are contained per job with `catch_unwind`: the client
//! gets a `failed` terminal record with `kind:"panic"`, the counter
//! `robustness.daemon.panics_contained` ticks, and the worker thread
//! survives to take the next job.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use fastmon_core::CheckpointDir;
use fastmon_obs::{CancelToken, MetricsRegistry, Record};

use crate::job::{run_job, JobEvent};
use crate::proto::{self, JobRequest, ProtoError, Request, MAX_LINE_BYTES};
use crate::queue::JobQueue;
use crate::signals;

/// How a daemon instance is wired up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Campaign worker threads.
    pub workers: usize,
    /// Queue capacity — submissions beyond this are rejected, not
    /// queued.
    pub queue_limit: usize,
    /// Root of the per-campaign checkpoint directories.
    pub checkpoint_root: PathBuf,
    /// Where completed results land (`<fingerprint>.json`).
    pub results_dir: PathBuf,
    /// GC grace period: checkpoints younger than this are never
    /// collected, protecting queued and freshly-crashed campaigns whose
    /// fingerprints the daemon cannot know yet.
    pub gc_grace: Duration,
}

impl DaemonConfig {
    /// A config rooted at `dir` (checkpoints and results underneath),
    /// listening on an ephemeral localhost port.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_limit: 16,
            checkpoint_root: dir.join("checkpoints"),
            results_dir: dir.join("results"),
            gc_grace: Duration::from_secs(900),
        }
    }
}

/// A job as queued: the parsed request plus the event channel back to
/// the submitting connection.
struct QueuedJob {
    req: Box<JobRequest>,
    events: Sender<WorkerMsg>,
}

enum WorkerMsg {
    /// A progress record line.
    Line(String),
    /// The final record line; the connection stops streaming after it.
    Terminal(String),
}

struct Running {
    cancels: Vec<(u64, CancelToken)>,
    fingerprints: Vec<u64>,
    next_id: u64,
}

struct Shared {
    queue: JobQueue<QueuedJob>,
    metrics: Arc<MetricsRegistry>,
    running: Mutex<Running>,
    checkpoints: CheckpointDir,
    results_dir: PathBuf,
    gc_grace: Duration,
    drain: AtomicBool,
}

impl Shared {
    fn lock_running(&self) -> std::sync::MutexGuard<'_, Running> {
        self.running.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || signals::drain_requested()
    }

    /// Idempotent: flips the flag, closes admissions, cancels running
    /// campaigns (they stop at their next durable checkpoint).
    fn start_drain(&self) {
        if self.drain.swap(true, Ordering::SeqCst) {
            return;
        }
        self.metrics.daemon.drains.incr();
        self.queue.start_drain();
        for (_, token) in &self.lock_running().cancels {
            token.cancel();
        }
    }
}

/// A started daemon; dropping the handle does **not** stop it — call
/// [`DaemonHandle::drain`] then [`DaemonHandle::join`].
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry
    /// (`robustness.daemon.*` counters live here).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Requests a graceful drain (same effect as SIGTERM).
    pub fn drain(&self) {
        self.shared.start_drain();
    }

    /// Waits for the accept loop and worker pool to finish. Returns only
    /// after a drain was requested (via [`DaemonHandle::drain`] or a
    /// signal).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The daemon. See [`Daemon::start`].
pub struct Daemon;

impl Daemon {
    /// Binds the listen socket, spawns the worker pool and the accept
    /// loop, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_limit),
            metrics: Arc::new(MetricsRegistry::new()),
            running: Mutex::new(Running {
                cancels: Vec::new(),
                fingerprints: Vec::new(),
                next_id: 0,
            }),
            checkpoints: CheckpointDir::new(config.checkpoint_root),
            results_dir: config.results_dir,
            gc_grace: config.gc_grace,
            drain: AtomicBool::new(false),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fastmond-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fastmond-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(DaemonHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shared.draining() {
            // Signal-delivered drains bypass Shared::start_drain; make
            // sure the queue and running jobs hear about it exactly once.
            shared.start_drain();
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("fastmond-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if shared.draining() {
            // Queued but never started: refuse cleanly so the client
            // knows to resubmit after restart.
            let line = Record::new()
                .str("event", "terminal")
                .str("status", "drained")
                .str("name", &job.req.name)
                .finish();
            let _ = job.events.send(WorkerMsg::Terminal(line));
            continue;
        }
        run_one(shared, &job);
    }
}

fn run_one(shared: &Arc<Shared>, job: &QueuedJob) {
    // parse_submit already rejects deadlines Duration cannot represent;
    // fall back to an unbounded token rather than trusting that (this
    // runs outside catch_unwind — a panic here would kill the worker).
    let cancel = match job
        .req
        .deadline_secs
        .and_then(|secs| Duration::try_from_secs_f64(secs).ok())
    {
        Some(budget) => CancelToken::with_deadline(budget),
        None => CancelToken::new(),
    };
    let id = {
        let mut running = shared.lock_running();
        running.next_id += 1;
        let id = running.next_id;
        running.cancels.push((id, cancel.clone()));
        id
    };
    if shared.draining() {
        cancel.cancel();
    }

    let fingerprint = std::cell::Cell::new(None::<u64>);
    let send = |line: String| {
        // The client may be gone; the campaign still runs to its result.
        let _ = job.events.send(WorkerMsg::Line(line));
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut on_event = |event: JobEvent| match event {
            JobEvent::Phase { phase } => send(
                Record::new()
                    .str("event", "phase")
                    .str("name", &job.req.name)
                    .str("phase", phase)
                    .finish(),
            ),
            JobEvent::Campaign { fingerprint: fp } => {
                fingerprint.set(Some(fp));
                shared.lock_running().fingerprints.push(fp);
                send(
                    Record::new()
                        .str("event", "campaign")
                        .str("name", &job.req.name)
                        .fingerprint("fingerprint", fp)
                        .finish(),
                );
            }
            JobEvent::Resumed {
                next_pattern,
                total_patterns,
            } => send(
                Record::new()
                    .str("event", "resumed")
                    .str("name", &job.req.name)
                    .u64("next_pattern", next_pattern as u64)
                    .u64("total_patterns", total_patterns as u64)
                    .finish(),
            ),
            JobEvent::Band {
                next_pattern,
                total_patterns,
            } => send(
                Record::new()
                    .str("event", "band")
                    .str("name", &job.req.name)
                    .u64("next_pattern", next_pattern as u64)
                    .u64("total_patterns", total_patterns as u64)
                    .finish(),
            ),
        };
        run_job(
            &job.req,
            &shared.checkpoints,
            &shared.results_dir,
            &cancel,
            &mut on_event,
        )
    }));

    let metrics = &shared.metrics.daemon;
    let terminal = match result {
        Ok(Ok(outcome)) => {
            metrics.jobs_completed.incr();
            if outcome.resumed {
                metrics.jobs_resumed.incr();
            }
            Record::new()
                .str("event", "terminal")
                .str("status", "completed")
                .str("name", &job.req.name)
                .fingerprint("fingerprint", outcome.fingerprint)
                .fingerprint("result_fingerprint", outcome.result_fingerprint)
                .bool("resumed", outcome.resumed)
                .u64("num_patterns", outcome.num_patterns as u64)
                .u64("num_faults", outcome.num_faults as u64)
                .u64("num_targets", outcome.num_targets as u64)
                .u64("covered", outcome.covered as u64)
                .bool("optimal", outcome.optimal)
                .finish()
        }
        Ok(Err(err)) => {
            let status = if matches!(err.kind(), "cancelled") {
                metrics.jobs_cancelled.incr();
                "cancelled"
            } else {
                metrics.jobs_failed.incr();
                "failed"
            };
            Record::new()
                .str("event", "terminal")
                .str("status", status)
                .str("name", &job.req.name)
                .str("kind", err.kind())
                .str("message", &err.to_string())
                .bool("resumable", err.resumable())
                .finish()
        }
        Err(panic) => {
            metrics.panics_contained.incr();
            metrics.jobs_failed.incr();
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Record::new()
                .str("event", "terminal")
                .str("status", "failed")
                .str("name", &job.req.name)
                .str("kind", "panic")
                .str("message", &message)
                .bool("resumable", true)
                .finish()
        }
    };
    let _ = job.events.send(WorkerMsg::Terminal(terminal));

    let mut running = shared.lock_running();
    running.cancels.retain(|(cid, _)| *cid != id);
    if let Some(fp) = fingerprint.get() {
        if let Some(pos) = running.fingerprints.iter().position(|f| *f == fp) {
            running.fingerprints.swap_remove(pos);
        }
    }
}

enum LineRead {
    Line(String),
    TooLong,
    Draining,
    Closed,
}

/// Reads one `\n`-terminated line, enforcing [`MAX_LINE_BYTES`] and
/// polling the drain flag across read timeouts.
fn read_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return LineRead::Closed;
            }
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return LineRead::Draining;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Closed,
        };
        let (take, done) = match chunk.iter().position(|b| *b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE_BYTES {
            return LineRead::TooLong;
        }
        if done {
            while line.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
                line.pop();
            }
            // Invalid UTF-8 is "not JSON", reported like any other
            // garbage line rather than killing the connection.
            return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
        }
    }
}

fn error_record(err: &ProtoError) -> String {
    Record::new()
        .str("event", "error")
        .str("kind", err.kind())
        .str("message", &err.to_string())
        .finish()
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line(&mut reader, shared) {
            LineRead::Line(line) => line,
            LineRead::TooLong => {
                // The stream is no longer line-synchronized; answer and
                // hang up.
                let err = ProtoError::LineTooLong {
                    limit: MAX_LINE_BYTES,
                };
                let _ = write_line(&mut writer, &error_record(&err));
                return;
            }
            LineRead::Draining | LineRead::Closed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match proto::parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                if !write_line(&mut writer, &error_record(&err)) {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Ping => write_line(
                &mut writer,
                &Record::new()
                    .str("event", "pong")
                    .u64("proto", proto::PROTO_VERSION)
                    .finish(),
            ),
            Request::Status => write_line(&mut writer, &status_record(shared)),
            Request::Gc { min_age_secs } => {
                write_line(&mut writer, &gc_record(shared, min_age_secs))
            }
            Request::Submit(req) => handle_submit(&mut writer, shared, req),
        };
        if !keep_going {
            return;
        }
    }
}

fn status_record(shared: &Shared) -> String {
    let running = shared.lock_running().cancels.len();
    let m = &shared.metrics.daemon;
    Record::new()
        .str("event", "status")
        .u64("proto", proto::PROTO_VERSION)
        .u64("queued", shared.queue.len() as u64)
        .u64("queue_limit", shared.queue.limit() as u64)
        .u64("running", running as u64)
        .bool("draining", shared.draining())
        .u64("jobs_admitted", m.jobs_admitted.get())
        .u64("jobs_rejected", m.jobs_rejected.get())
        .u64("jobs_resumed", m.jobs_resumed.get())
        .u64("jobs_completed", m.jobs_completed.get())
        .u64("jobs_failed", m.jobs_failed.get())
        .u64("jobs_cancelled", m.jobs_cancelled.get())
        .u64("panics_contained", m.panics_contained.get())
        .finish()
}

fn gc_record(shared: &Shared, min_age_secs: Option<u64>) -> String {
    let live = shared.lock_running().fingerprints.clone();
    let grace = min_age_secs.map_or(shared.gc_grace, Duration::from_secs);
    match shared.checkpoints.gc(&live, grace) {
        Ok(report) => Record::new()
            .str("event", "gc")
            .u64("removed", report.removed.len() as u64)
            .u64("kept_live", report.kept_live as u64)
            .u64("kept_locked", report.kept_locked as u64)
            .u64("kept_young", report.kept_young as u64)
            .finish(),
        Err(e) => Record::new()
            .str("event", "error")
            .str("kind", "gc")
            .str("message", &e.to_string())
            .finish(),
    }
}

/// Admits (or rejects) a submission, then streams its worker events
/// until the terminal record. Returns `false` when the connection died.
fn handle_submit(writer: &mut TcpStream, shared: &Arc<Shared>, req: Box<JobRequest>) -> bool {
    let (tx, rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = channel();
    let tenant = req.tenant.clone();
    let name = req.name.clone();
    match shared.queue.submit(&tenant, QueuedJob { req, events: tx }) {
        Err(err) => {
            shared.metrics.daemon.jobs_rejected.incr();
            write_line(
                writer,
                &Record::new()
                    .str("event", "reject")
                    .str("name", &name)
                    .str("kind", err.kind())
                    .str("message", &err.to_string())
                    .finish(),
            )
        }
        Ok(queued) => {
            shared.metrics.daemon.jobs_admitted.incr();
            if !write_line(
                writer,
                &Record::new()
                    .str("event", "admitted")
                    .str("name", &name)
                    .u64("queued", queued as u64)
                    .finish(),
            ) {
                return false;
            }
            loop {
                match rx.recv() {
                    Ok(WorkerMsg::Line(line)) => {
                        if !write_line(writer, &line) {
                            // Client is gone; drop the receiver. The
                            // worker keeps running the campaign to its
                            // durable result.
                            return false;
                        }
                    }
                    Ok(WorkerMsg::Terminal(line)) => return write_line(writer, &line),
                    Err(_) => return false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn client(addr: SocketAddr) -> (std::io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        (std::io::BufReader::new(stream), writer)
    }

    fn send(writer: &mut TcpStream, line: &str) {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }

    fn recv(reader: &mut std::io::BufReader<TcpStream>) -> fastmon_obs::json::Value {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        fastmon_obs::json::parse(line.trim()).unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fastmond-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event_of(v: &fastmon_obs::json::Value) -> String {
        v.get("event").and_then(|e| e.as_str()).unwrap().to_string()
    }

    #[test]
    fn ping_status_and_submit_round_trip() {
        let root = tmp("rt");
        let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
        let (mut reader, mut writer) = client(handle.addr());

        send(&mut writer, r#"{"op":"ping"}"#);
        assert_eq!(event_of(&recv(&mut reader)), "pong");

        send(&mut writer, r#"{"op":"status"}"#);
        let status = recv(&mut reader);
        assert_eq!(event_of(&status), "status");
        assert_eq!(status.get("queued").and_then(|v| v.as_u64()), Some(0));

        send(
            &mut writer,
            r#"{"op":"submit","name":"s27-job","circuit":{"kind":"library","name":"s27"}}"#,
        );
        assert_eq!(event_of(&recv(&mut reader)), "admitted");
        let terminal = loop {
            let v = recv(&mut reader);
            if event_of(&v) == "terminal" {
                break v;
            }
        };
        assert_eq!(
            terminal.get("status").and_then(|v| v.as_str()),
            Some("completed")
        );
        assert!(terminal
            .get("result_fingerprint")
            .and_then(|v| v.as_str())
            .is_some());

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_lines_get_typed_error_records_and_the_daemon_survives() {
        let root = tmp("garbage");
        let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
        let (mut reader, mut writer) = client(handle.addr());

        for (line, kind) in [
            ("garbage", "json"),
            ("{\"op\":\"frobnicate\"}", "unknown_op"),
            ("[1,2,3]", "not_an_object"),
            ("{}", "missing_field"),
        ] {
            send(&mut writer, line);
            let v = recv(&mut reader);
            assert_eq!(event_of(&v), "error");
            assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some(kind));
        }
        // still alive afterwards
        send(&mut writer, r#"{"op":"ping"}"#);
        assert_eq!(event_of(&recv(&mut reader)), "pong");

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let root = tmp("admit");
        let mut config = DaemonConfig::at(&root);
        config.workers = 1;
        config.queue_limit = 1;
        let handle = Daemon::start(config).unwrap();

        // A slow-ish job ties up the single worker; the queue then holds
        // one more, and the third submission is rejected.
        let submit = |name: &str| {
            format!(
                r#"{{"op":"submit","name":"{name}","circuit":{{"kind":"profile","name":"s9234","scale":0.05,"seed":7}},"max_faults":40,"pattern_budget":16}}"#
            )
        };
        let (mut r1, mut w1) = client(handle.addr());
        send(&mut w1, &submit("a"));
        assert_eq!(event_of(&recv(&mut r1)), "admitted");
        let (mut r2, mut w2) = client(handle.addr());
        send(&mut w2, &submit("b"));
        assert_eq!(event_of(&recv(&mut r2)), "admitted");
        // Give the worker a moment to start job a so the queue slot is
        // definitely occupied by b.
        std::thread::sleep(Duration::from_millis(100));
        let (mut r3, mut w3) = client(handle.addr());
        send(&mut w3, &submit("c"));
        let v = recv(&mut r3);
        // Either the queue was still full (reject) or the worker already
        // drained it (admitted) — on a loaded machine both are legal;
        // what matters is that the daemon answered without blocking.
        assert!(matches!(event_of(&v).as_str(), "reject" | "admitted"));

        handle.drain();
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn drain_cancels_running_jobs_at_a_checkpoint_boundary() {
        let root = tmp("drain");
        let mut config = DaemonConfig::at(&root);
        config.workers = 1;
        let handle = Daemon::start(config).unwrap();
        let (mut reader, mut writer) = client(handle.addr());
        send(
            &mut writer,
            r#"{"op":"submit","name":"big","circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},"max_faults":150}"#,
        );
        assert_eq!(event_of(&recv(&mut reader)), "admitted");
        // Wait until the campaign is actually running (fingerprint known).
        loop {
            let v = recv(&mut reader);
            if event_of(&v) == "campaign" {
                break;
            }
        }
        handle.drain();
        let terminal = loop {
            let v = recv(&mut reader);
            if event_of(&v) == "terminal" {
                break v;
            }
        };
        let status = terminal.get("status").and_then(|v| v.as_str()).unwrap();
        // Cancelled at the next band boundary — or completed, if the
        // campaign was already past its last band when the drain landed.
        assert!(matches!(status, "cancelled" | "completed"), "got {status}");
        if status == "cancelled" {
            assert_eq!(
                terminal.get("resumable").and_then(|v| v.as_bool()),
                Some(true)
            );
        }
        handle.join();
        let _ = std::fs::remove_dir_all(&root);
    }
}
