//! One campaign job, end to end: circuit → flow → checkpointed analyze
//! → schedule → landed result.
//!
//! The runner is deliberately oblivious to sockets and threads — it
//! takes a parsed [`JobRequest`], a [`CheckpointDir`], a
//! [`CancelToken`] and an event callback, and either lands a result
//! file or returns a typed [`JobError`]. The server wraps it in
//! `catch_unwind` and owns retry/terminal-status policy.
//!
//! Crash-safety ordering: the result file is written (atomically, via
//! tmp + rename) *before* the checkpoint directory is removed, so a
//! crash between the two leaves both artifacts and a re-run is a cheap
//! resume, never a lost result.

use std::path::Path;

use fastmon_core::{
    CheckpointDir, CheckpointError, FlowConfig, FlowError, HdfTestFlow, JobStore, Solver,
};
use fastmon_netlist::{bench, generate::CircuitProfile, library, Circuit};
use fastmon_obs::{CancelToken, Record};

use crate::proto::{CircuitSpec, JobRequest};

/// Progress events a running job streams back to its client.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// Entered a flow phase (`prepare`, `atpg`, `analyze`, `schedule`).
    Phase {
        /// Phase name.
        phase: &'static str,
    },
    /// The campaign fingerprint is known; checkpoints and the result
    /// file are keyed by it.
    Campaign {
        /// Campaign fingerprint.
        fingerprint: u64,
    },
    /// The campaign resumed from a durable checkpoint.
    Resumed {
        /// First pattern that still needs simulation.
        next_pattern: usize,
        /// Total patterns in the campaign.
        total_patterns: usize,
        /// Trace run id of the interrupted run that wrote the
        /// checkpoint, when its sidecar survived.
        prev_run: Option<u64>,
    },
    /// A band finished and its checkpoint reached disk — this boundary
    /// is a durable resume point.
    Band {
        /// First pattern that still needs simulation.
        next_pattern: usize,
        /// Total patterns in the campaign.
        total_patterns: usize,
    },
    /// Supervised multi-process shard execution progress
    /// (`"shard_procs":true`): one event per supervisor observation,
    /// forwarded from the [`fastmon_core::shardsup`] engine.
    Shard {
        /// Shard index.
        shard: usize,
        /// What happened: `spawned`, `heartbeat`, `resumed`, `stalled`,
        /// `crashed`, `rss_evicted`, `readmitted`, `straggler` or
        /// `completed`.
        kind: &'static str,
        /// Charged respawns for this shard so far.
        respawns: u64,
        /// First pattern still unsimulated within the shard's slice
        /// (0 until the worker reports).
        next_pattern: u64,
        /// Patterns in the shard's slice (0 until known).
        total_patterns: u64,
    },
}

/// What a completed job produced (also landed as
/// `results/<fingerprint>.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Campaign fingerprint (checkpoint/result key).
    pub fingerprint: u64,
    /// Order-independent digest of the full [`DetectionAnalysis`] —
    /// bit-identity is `result_fingerprint` equality.
    ///
    /// [`DetectionAnalysis`]: fastmon_core::DetectionAnalysis
    pub result_fingerprint: u64,
    /// Whether the campaign resumed from a checkpoint.
    pub resumed: bool,
    /// Patterns simulated.
    pub num_patterns: usize,
    /// Candidate faults simulated.
    pub num_faults: usize,
    /// Size of the target set `Φ_tar`.
    pub num_targets: usize,
    /// Targets covered by the selected frequencies.
    pub covered: usize,
    /// Selected capture periods, ascending.
    pub periods: Vec<f64>,
    /// Whether the ILP proved optimality.
    pub optimal: bool,
}

/// Why a job failed. `Locked` and `Flow(Cancelled)` leave a durable
/// checkpoint behind — the job is resumable, not lost.
#[derive(Debug)]
#[non_exhaustive]
pub enum JobError {
    /// The request references an unknown circuit or cannot be built.
    Spec {
        /// What was wrong.
        message: String,
    },
    /// Another live daemon process holds this campaign's checkpoint.
    Locked {
        /// PID of the lock holder (0 = unreadable lock file).
        holder_pid: u32,
    },
    /// The flow itself failed (includes cancellation and injected
    /// faults).
    Flow(FlowError),
    /// The multi-process shard supervisor failed (a shard exhausted its
    /// respawn budget, a worker could not be launched). The per-shard
    /// checkpoints under the job directory stay valid for a resume.
    Shardsup(fastmon_core::ShardsupError),
    /// The result file could not be landed.
    Io {
        /// Operation that failed.
        context: &'static str,
        /// OS diagnostic.
        message: String,
    },
}

impl JobError {
    /// Stable machine-readable discriminant for terminal records.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Spec { .. } => "spec",
            JobError::Locked { .. } => "locked",
            JobError::Flow(FlowError::Cancelled { .. }) => "cancelled",
            JobError::Flow(_) => "flow",
            JobError::Shardsup(_) => "shardsup",
            JobError::Io { .. } => "io",
        }
    }

    /// Whether a durable checkpoint may exist for a retry to resume
    /// from.
    #[must_use]
    pub fn resumable(&self) -> bool {
        !matches!(self, JobError::Spec { .. })
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Spec { message } => write!(f, "bad job spec: {message}"),
            JobError::Locked { holder_pid } => {
                write!(f, "campaign checkpoint is locked by pid {holder_pid}")
            }
            JobError::Flow(e) => write!(f, "{e}"),
            JobError::Shardsup(e) => write!(f, "shard supervisor: {e}"),
            JobError::Io { context, message } => write!(f, "{context}: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<FlowError> for JobError {
    fn from(e: FlowError) -> Self {
        JobError::Flow(e)
    }
}

fn spec_err(message: impl Into<String>) -> JobError {
    JobError::Spec {
        message: message.into(),
    }
}

pub(crate) fn build_circuit(spec: &CircuitSpec) -> Result<Circuit, JobError> {
    match spec {
        CircuitSpec::Library { name } => match name.as_str() {
            "s27" => Ok(library::s27()),
            "c17" => Ok(library::c17()),
            other => Err(spec_err(format!(
                "unknown library circuit '{other}' (s27|c17)"
            ))),
        },
        CircuitSpec::Profile { name, scale, seed } => CircuitProfile::named(name)
            .ok_or_else(|| spec_err(format!("unknown circuit profile '{name}'")))?
            .scaled(*scale)
            .generate(*seed)
            .map_err(|e| spec_err(format!("profile generation failed: {e}"))),
        CircuitSpec::Bench { text } => {
            bench::parse(text, "bench").map_err(|e| spec_err(format!("bad .bench text: {e}")))
        }
    }
}

fn acquire(dirs: &CheckpointDir, fingerprint: u64) -> Result<JobStore, JobError> {
    match dirs.acquire(fingerprint) {
        Ok(store) => Ok(store),
        Err(CheckpointError::Locked { holder_pid }) => Err(JobError::Locked { holder_pid }),
        Err(e) => Err(JobError::Flow(e.into())),
    }
}

fn land_result(results_dir: &Path, req: &JobRequest, outcome: &JobOutcome) -> Result<(), JobError> {
    let io = |context: &'static str| {
        move |e: std::io::Error| JobError::Io {
            context,
            message: e.to_string(),
        }
    };
    std::fs::create_dir_all(results_dir).map_err(io("create results dir"))?;
    let mut periods = String::from("[");
    for (i, p) in outcome.periods.iter().enumerate() {
        if i > 0 {
            periods.push(',');
        }
        periods.push_str(&format!("{p}"));
    }
    periods.push(']');
    let line = Record::new()
        .str("tenant", &req.tenant)
        .str("name", &req.name)
        .fingerprint("fingerprint", outcome.fingerprint)
        .fingerprint("result_fingerprint", outcome.result_fingerprint)
        .bool("resumed", outcome.resumed)
        .u64("num_patterns", outcome.num_patterns as u64)
        .u64("num_faults", outcome.num_faults as u64)
        .u64("num_targets", outcome.num_targets as u64)
        .u64("covered", outcome.covered as u64)
        .raw("periods", &periods)
        .bool("optimal", outcome.optimal)
        .finish();
    let path = results_dir.join(format!("{:016x}.json", outcome.fingerprint));
    let tmp = results_dir.join(format!(
        "{:016x}.json.tmp.{}",
        outcome.fingerprint,
        std::process::id()
    ));
    std::fs::write(&tmp, format!("{line}\n")).map_err(io("write result"))?;
    std::fs::rename(&tmp, &path).map_err(io("land result"))?;
    Ok(())
}

/// Runs one campaign job to completion, landing its result under
/// `results_dir` and releasing the checkpoint directory on success.
///
/// When `metrics` is given, the job's own registry (counters *and*
/// latency histograms — band durations, checkpoint save/load) is
/// absorbed into it after the flow finishes, on success and failure
/// alike, so a long-lived daemon registry accumulates every job's
/// telemetry.
///
/// # Errors
///
/// See [`JobError`]; everything except `Spec` leaves the on-disk
/// checkpoint state valid for a later resume.
pub fn run_job(
    req: &JobRequest,
    dirs: &CheckpointDir,
    results_dir: &Path,
    cancel: &CancelToken,
    metrics: Option<&fastmon_obs::MetricsRegistry>,
    on_event: &mut dyn FnMut(JobEvent),
) -> Result<JobOutcome, JobError> {
    on_event(JobEvent::Phase { phase: "prepare" });
    let circuit = build_circuit(&req.circuit)?;
    let config = FlowConfig {
        seed: req.seed,
        threads: req.threads,
        max_faults: req.max_faults,
        ..FlowConfig::default()
    };
    let flow = match &req.sdf {
        Some(text) => {
            let annot = fastmon_timing::sdf::parse(text, &circuit, config.sigma_rel)
                .map_err(FlowError::from)?;
            HdfTestFlow::try_prepare_with_annotation(&circuit, &config, annot)?
        }
        None => HdfTestFlow::try_prepare(&circuit, &config)?,
    }
    .with_cancel(cancel.clone());

    let result = run_flow(&flow, req, dirs, results_dir, on_event);
    if let Some(sink) = metrics {
        sink.absorb(flow.metrics());
    }
    result
}

/// Everything after `prepare`: ATPG, checkpointed analyze, schedule,
/// land. Split out so [`run_job`] can absorb the flow's registry on
/// every exit path.
fn run_flow(
    flow: &HdfTestFlow<'_>,
    req: &JobRequest,
    dirs: &CheckpointDir,
    results_dir: &Path,
    on_event: &mut dyn FnMut(JobEvent),
) -> Result<JobOutcome, JobError> {
    on_event(JobEvent::Phase { phase: "atpg" });
    let patterns = flow.try_generate_patterns(req.pattern_budget)?;
    let fingerprint = flow.campaign_fingerprint(&patterns);
    on_event(JobEvent::Campaign { fingerprint });

    on_event(JobEvent::Phase { phase: "analyze" });
    let store = acquire(dirs, fingerprint)?;
    let resumed = std::cell::Cell::new(false);
    let analysis = if req.shard_procs {
        // Each shard runs as its own supervised child OS process;
        // per-shard checkpoint and result files still live inside the
        // job's own (locked) checkpoint directory, so GC and crash
        // recovery see exactly the in-process layout. Children report
        // over a pipe, so this branch streams JobEvent::Shard rows
        // instead of Band events.
        let mut wrapped = |e: JobEvent| {
            if matches!(
                e,
                JobEvent::Shard {
                    kind: "resumed",
                    ..
                }
            ) {
                resumed.set(true);
            }
            on_event(e);
        };
        crate::shard::run_supervised(flow, &patterns, req, store.dir(), &mut wrapped)?
    } else {
        let mut observe = |p: fastmon_core::CampaignProgress| match p {
            fastmon_core::CampaignProgress::Resumed {
                next_pattern,
                total_patterns,
                prev_run,
            } => {
                resumed.set(true);
                on_event(JobEvent::Resumed {
                    next_pattern,
                    total_patterns,
                    prev_run,
                });
            }
            fastmon_core::CampaignProgress::BandCheckpointed {
                next_pattern,
                total_patterns,
            } => on_event(JobEvent::Band {
                next_pattern,
                total_patterns,
            }),
        };
        if req.shards > 1 {
            // Per-shard checkpoints live inside the job's own (locked)
            // checkpoint directory, so crash recovery, GC and the
            // results landing order work exactly as in the single-shard
            // path. The merged analysis is bit-identical to an
            // unsharded run, so the landed result_fingerprint does not
            // depend on the shard count.
            let mut sharded = |_shard: usize, p: fastmon_core::CampaignProgress| observe(p);
            flow.analyze_sharded_resumable_observed(
                &patterns,
                req.shards,
                store.dir(),
                &mut sharded,
            )?
        } else {
            flow.analyze_resumable_observed(&patterns, store.store(), &mut observe)?
        }
    };

    on_event(JobEvent::Phase { phase: "schedule" });
    let schedule = flow
        .try_schedule_with_coverage(&analysis, Solver::Ilp, req.coverage)
        .map_err(FlowError::from)?;

    let outcome = JobOutcome {
        fingerprint,
        result_fingerprint: analysis.result_fingerprint(),
        resumed: resumed.get(),
        num_patterns: analysis.num_patterns,
        num_faults: analysis.faults.len(),
        num_targets: analysis.targets.len(),
        covered: schedule.selection.covered.len(),
        periods: schedule.selection.periods.clone(),
        optimal: schedule.selection.optimal,
    };
    land_result(results_dir, req, &outcome)?;
    store.complete().map_err(|e| JobError::Flow(e.into()))?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fastmond-job-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn s27_request() -> JobRequest {
        JobRequest {
            tenant: "t".into(),
            name: "j".into(),
            circuit: CircuitSpec::Library { name: "s27".into() },
            sdf: None,
            coverage: 1.0,
            deadline_secs: None,
            pattern_budget: None,
            max_faults: None,
            seed: 1,
            threads: 1,
            shards: 1,
            shard_procs: false,
        }
    }

    #[test]
    fn runs_a_library_job_and_lands_the_result() {
        let root = tmp("run");
        let dirs = CheckpointDir::new(root.join("ckpt"));
        let results = root.join("results");
        let cancel = CancelToken::new();
        let mut events = Vec::new();
        let outcome = run_job(&s27_request(), &dirs, &results, &cancel, None, &mut |e| {
            events.push(e);
        })
        .unwrap();
        assert!(!outcome.resumed);
        assert!(outcome.num_patterns > 0);
        assert!(outcome.covered <= outcome.num_targets);
        // the result landed, keyed by fingerprint
        let path = results.join(format!("{:016x}.json", outcome.fingerprint));
        let text = std::fs::read_to_string(&path).unwrap();
        let value = fastmon_obs::json::parse(text.trim()).unwrap();
        assert_eq!(
            value.get("result_fingerprint").and_then(|v| v.as_str()),
            Some(format!("{:016x}", outcome.result_fingerprint).as_str())
        );
        // the checkpoint directory was released
        assert!(!dirs.dir_for(outcome.fingerprint).exists());
        // phases streamed in order, fingerprint announced before analyze
        let phases: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::Phase { phase } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(phases, ["prepare", "atpg", "analyze", "schedule"]);
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Campaign { fingerprint } if *fingerprint == outcome.fingerprint)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn identical_requests_are_bit_identical() {
        let root = tmp("bitid");
        let dirs = CheckpointDir::new(root.join("ckpt"));
        let cancel = CancelToken::new();
        let a = run_job(
            &s27_request(),
            &dirs,
            &root.join("r1"),
            &cancel,
            None,
            &mut |_| {},
        )
        .unwrap();
        let b = run_job(
            &s27_request(),
            &dirs,
            &root.join("r2"),
            &cancel,
            None,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.result_fingerprint, b.result_fingerprint);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_jobs_land_the_same_result_fingerprint() {
        let root = tmp("shards");
        let dirs = CheckpointDir::new(root.join("ckpt"));
        let cancel = CancelToken::new();
        let serial = run_job(
            &s27_request(),
            &dirs,
            &root.join("r1"),
            &cancel,
            None,
            &mut |_| {},
        )
        .unwrap();
        let mut req = s27_request();
        req.shards = 3;
        let mut bands = 0usize;
        let sharded = run_job(&req, &dirs, &root.join("r2"), &cancel, None, &mut |e| {
            if matches!(e, JobEvent::Band { .. }) {
                bands += 1;
            }
        })
        .unwrap();
        assert_eq!(sharded.fingerprint, serial.fingerprint);
        assert_eq!(sharded.result_fingerprint, serial.result_fingerprint);
        assert_eq!(sharded.num_faults, serial.num_faults);
        assert!(bands > 0, "sharded jobs must still stream band progress");
        // the job's checkpoint directory (with its per-shard files) was
        // released on success
        assert!(!dirs.dir_for(sharded.fingerprint).exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_specs_are_typed_and_not_resumable() {
        let root = tmp("spec");
        let dirs = CheckpointDir::new(root.join("ckpt"));
        let cancel = CancelToken::new();
        let mut req = s27_request();
        req.circuit = CircuitSpec::Library {
            name: "nope".into(),
        };
        let err = run_job(&req, &dirs, &root.join("r"), &cancel, None, &mut |_| {}).unwrap_err();
        assert_eq!(err.kind(), "spec");
        assert!(!err.resumable());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelled_jobs_report_cancelled_and_stay_resumable() {
        let root = tmp("cancel");
        let dirs = CheckpointDir::new(root.join("ckpt"));
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = run_job(
            &s27_request(),
            &dirs,
            &root.join("r"),
            &cancel,
            None,
            &mut |_| {},
        )
        .unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.resumable());
        let _ = std::fs::remove_dir_all(&root);
    }
}
