//! The `fastmond` wire protocol: newline-delimited JSON.
//!
//! A client sends one JSON object per line and receives a stream of JSON
//! object lines back (built with [`fastmon_obs::Record`], parsed with
//! [`fastmon_obs::json`] — no serde, offline build). Request parsing is
//! total: any line maps to either a [`Request`] or a typed
//! [`ProtoError`], never a panic, and the daemon answers every malformed
//! line with a well-formed `{"event":"error",...}` record — the contract
//! the protocol fuzz suite enforces.
//!
//! # Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"status"}
//! {"op":"observe"}                     // deep telemetry snapshot
//! {"op":"watch","interval_ms":1000,"count":10}   // periodic snapshots
//! {"op":"gc"}                          // optional "min_age_secs": n
//! {"op":"submit","proto":1,"tenant":"t0","name":"job-3",
//!  "circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},
//!  "coverage":0.95,"deadline_secs":30,"pattern_budget":64,
//!  "max_faults":150,"seed":1,"threads":2,"shards":4,
//!  "sdf":"(DELAYFILE ...)"}
//! ```
//!
//! `circuit.kind` is `library` (named in-tree netlist), `profile`
//! (synthetic paper-suite generator) or `bench` (inline `.bench` text);
//! `sdf` optionally replaces the synthesized delay model with parsed SDF
//! delays. `"shard_procs":true` additionally runs each shard as its own
//! supervised child OS process (see [`crate::shard`]). Everything except
//! `op` and `circuit` has a default.

use fastmon_obs::json::{self, Value};
use fastmon_obs::Record;

/// Protocol version spoken by this build.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on one request line (1 MiB — roomy enough for inline
/// `.bench`/SDF text, small enough that a garbage firehose cannot balloon
/// daemon memory).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How a submitted job names its circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSpec {
    /// An in-tree library netlist (`s27`, `c17`).
    Library {
        /// Library circuit name.
        name: String,
    },
    /// A synthetic paper-suite profile, optionally scaled.
    Profile {
        /// Profile name (`s9234`, `p100k`, ...).
        name: String,
        /// Size factor applied via `CircuitProfile::scaled`.
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Inline ISCAS `.bench` netlist text.
    Bench {
        /// The `.bench` source.
        text: String,
    },
}

/// A campaign job as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Tenant for fair scheduling (jobs round-robin across tenants).
    pub tenant: String,
    /// Client-chosen job label, echoed in every event.
    pub name: String,
    /// Circuit under test.
    pub circuit: CircuitSpec,
    /// Optional SDF text replacing the synthesized delay model.
    pub sdf: Option<String>,
    /// Target coverage for schedule optimization, in `(0, 1]`.
    pub coverage: f64,
    /// Optional per-job deadline (cooperative, observed at band
    /// boundaries after the checkpoint flush).
    pub deadline_secs: Option<f64>,
    /// Optional ATPG pattern budget.
    pub pattern_budget: Option<usize>,
    /// Optional fault-sampling cap.
    pub max_faults: Option<usize>,
    /// Flow seed (delays, sampling, ATPG).
    pub seed: u64,
    /// Campaign worker threads (0 = all cores).
    pub threads: usize,
    /// Fault-set shards (1 = single campaign). With `shards > 1` the
    /// candidate fault set is partitioned into contiguous slices, each
    /// slice runs as its own resumable sub-campaign, and the merged
    /// result is bit-identical to the unsharded run.
    pub shards: usize,
    /// Execute each shard as a supervised child OS process instead of an
    /// in-process slice: per-shard crash/stall/RSS isolation with
    /// respawn-and-resume (see [`crate::shard`]). The merged result is
    /// still bit-identical to the unsharded run.
    pub shard_procs: bool,
}

/// Lower bound on a `watch` interval — protects the daemon from a
/// client-requested busy loop.
pub const MIN_WATCH_INTERVAL_MS: u64 = 50;

/// Upper bound on a `watch` interval (an hour between snapshots is a
/// config mistake, not a cadence).
pub const MAX_WATCH_INTERVAL_MS: u64 = 3_600_000;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a campaign job.
    Submit(Box<JobRequest>),
    /// Report queue/worker/metrics state.
    Status,
    /// Liveness probe.
    Ping,
    /// One deep telemetry snapshot: per-tenant lanes, per-job band
    /// progress + ETA, full counters and latency quantiles.
    Observe,
    /// Stream periodic `observe` snapshots over this connection.
    Watch {
        /// Milliseconds between snapshots (clamped to
        /// [`MIN_WATCH_INTERVAL_MS`]..=[`MAX_WATCH_INTERVAL_MS`] at
        /// parse time).
        interval_ms: u64,
        /// Snapshots to emit; 0 = until disconnect or drain.
        count: u64,
    },
    /// Run a checkpoint GC sweep now, optionally overriding the grace
    /// period.
    Gc {
        /// Grace-period override in seconds (`None` = daemon config).
        min_age_secs: Option<u64>,
    },
}

/// Why a request line was rejected. Every variant renders as a typed
/// error record; none of them kill the connection except
/// [`ProtoError::LineTooLong`] (the stream is no longer line-synchronized
/// past an overlong line).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong {
        /// The enforced limit.
        limit: usize,
    },
    /// The line is not valid JSON (includes truncated documents and
    /// invalid UTF-8).
    Json {
        /// Parser diagnostic.
        message: String,
    },
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    MissingField {
        /// The missing field.
        field: &'static str,
    },
    /// A field is present but unusable.
    BadField {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// `op` names no known operation.
    UnknownOp {
        /// The unknown operation.
        op: String,
    },
    /// The client speaks a different protocol version.
    UnsupportedVersion {
        /// Version the client sent.
        got: u64,
    },
}

impl ProtoError {
    /// Stable machine-readable discriminant for error records.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoError::LineTooLong { .. } => "line_too_long",
            ProtoError::Json { .. } => "json",
            ProtoError::NotAnObject => "not_an_object",
            ProtoError::MissingField { .. } => "missing_field",
            ProtoError::BadField { .. } => "bad_field",
            ProtoError::UnknownOp { .. } => "unknown_op",
            ProtoError::UnsupportedVersion { .. } => "unsupported_version",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::LineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            ProtoError::Json { message } => write!(f, "invalid JSON: {message}"),
            ProtoError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtoError::MissingField { field } => write!(f, "missing field '{field}'"),
            ProtoError::BadField { field, reason } => {
                write!(f, "bad field '{field}': {reason}")
            }
            ProtoError::UnknownOp { op } => write!(f, "unknown op '{op}'"),
            ProtoError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "protocol version {got} is not supported (this daemon speaks {PROTO_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

fn bad(field: &'static str, reason: impl Into<String>) -> ProtoError {
    ProtoError::BadField {
        field,
        reason: reason.into(),
    }
}

fn opt_str(obj: &Value, field: &'static str) -> Result<Option<String>, ProtoError> {
    match obj.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| bad(field, "expected a string")),
    }
}

fn opt_u64(obj: &Value, field: &'static str) -> Result<Option<u64>, ProtoError> {
    match obj.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(field, "expected a non-negative integer")),
    }
}

fn opt_f64(obj: &Value, field: &'static str) -> Result<Option<f64>, ProtoError> {
    match obj.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .map(Some)
            .ok_or_else(|| bad(field, "expected a finite number")),
    }
}

fn opt_usize(obj: &Value, field: &'static str) -> Result<Option<usize>, ProtoError> {
    opt_u64(obj, field)?
        .map(|v| usize::try_from(v).map_err(|_| bad(field, "out of range")))
        .transpose()
}

fn opt_bool(obj: &Value, field: &'static str) -> Result<Option<bool>, ProtoError> {
    match obj.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(field, "expected a boolean")),
    }
}

fn parse_circuit(obj: &Value) -> Result<CircuitSpec, ProtoError> {
    let circuit = obj
        .get("circuit")
        .ok_or(ProtoError::MissingField { field: "circuit" })?;
    if circuit.as_obj().is_none() {
        return Err(bad("circuit", "expected an object"));
    }
    let kind = opt_str(circuit, "kind")?.ok_or(ProtoError::MissingField { field: "kind" })?;
    match kind.as_str() {
        "library" => Ok(CircuitSpec::Library {
            name: opt_str(circuit, "name")?.ok_or(ProtoError::MissingField { field: "name" })?,
        }),
        "profile" => {
            let scale = opt_f64(circuit, "scale")?.unwrap_or(1.0);
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(bad("scale", "expected a factor in (0, 1]"));
            }
            Ok(CircuitSpec::Profile {
                name: opt_str(circuit, "name")?
                    .ok_or(ProtoError::MissingField { field: "name" })?,
                scale,
                seed: opt_u64(circuit, "seed")?.unwrap_or(1),
            })
        }
        "bench" => Ok(CircuitSpec::Bench {
            text: opt_str(circuit, "text")?.ok_or(ProtoError::MissingField { field: "text" })?,
        }),
        other => Err(bad(
            "kind",
            format!("unknown circuit kind '{other}' (library|profile|bench)"),
        )),
    }
}

fn parse_submit(obj: &Value) -> Result<JobRequest, ProtoError> {
    let coverage = opt_f64(obj, "coverage")?.unwrap_or(1.0);
    if !(coverage > 0.0 && coverage <= 1.0) {
        return Err(bad("coverage", "expected a target in (0, 1]"));
    }
    let deadline_secs = opt_f64(obj, "deadline_secs")?;
    // `Duration::from_secs_f64` panics for negative, NaN or > u64::MAX
    // seconds; reject here so a worker never has to build a deadline it
    // cannot represent.
    if deadline_secs.is_some_and(|d| std::time::Duration::try_from_secs_f64(d).is_err()) {
        return Err(bad(
            "deadline_secs",
            "expected a non-negative number of seconds within duration range",
        ));
    }
    Ok(JobRequest {
        tenant: opt_str(obj, "tenant")?.unwrap_or_else(|| "default".to_string()),
        name: opt_str(obj, "name")?.unwrap_or_else(|| "job".to_string()),
        circuit: parse_circuit(obj)?,
        sdf: opt_str(obj, "sdf")?,
        coverage,
        deadline_secs,
        pattern_budget: opt_usize(obj, "pattern_budget")?,
        max_faults: opt_usize(obj, "max_faults")?,
        seed: opt_u64(obj, "seed")?.unwrap_or(1),
        threads: opt_usize(obj, "threads")?.unwrap_or(1),
        shards: match opt_usize(obj, "shards")?.unwrap_or(1) {
            0 => return Err(bad("shards", "expected at least 1")),
            n if n > fastmon_core::MAX_SHARDS => {
                return Err(bad(
                    "shards",
                    format!("expected at most {}", fastmon_core::MAX_SHARDS),
                ))
            }
            n => n,
        },
        shard_procs: opt_bool(obj, "shard_procs")?.unwrap_or(false),
    })
}

/// Serializes a [`JobRequest`] back into the exact `submit` line
/// [`parse_request`] accepts: `parse_request(&to_submit_line(r))` always
/// round-trips to an equal request. The daemon lands this line as the
/// job spec supervised shard workers rebuild their campaign from
/// ([`crate::shard`]) — any drift between serializer and parser would
/// show up there as a fingerprint mismatch, so the round-trip is pinned
/// by a unit test instead.
#[must_use]
pub fn to_submit_line(req: &JobRequest) -> String {
    let circuit = match &req.circuit {
        CircuitSpec::Library { name } => Record::new()
            .str("kind", "library")
            .str("name", name)
            .finish(),
        CircuitSpec::Profile { name, scale, seed } => Record::new()
            .str("kind", "profile")
            .str("name", name)
            .f64("scale", *scale)
            .u64("seed", *seed)
            .finish(),
        CircuitSpec::Bench { text } => Record::new()
            .str("kind", "bench")
            .str("text", text)
            .finish(),
    };
    let mut rec = Record::new()
        .str("op", "submit")
        .u64("proto", PROTO_VERSION)
        .str("tenant", &req.tenant)
        .str("name", &req.name)
        .raw("circuit", &circuit)
        .f64("coverage", req.coverage)
        .u64("seed", req.seed)
        .u64("threads", req.threads as u64)
        .u64("shards", req.shards as u64)
        .bool("shard_procs", req.shard_procs);
    if let Some(d) = req.deadline_secs {
        rec = rec.f64("deadline_secs", d);
    }
    if let Some(b) = req.pattern_budget {
        rec = rec.u64("pattern_budget", b as u64);
    }
    if let Some(m) = req.max_faults {
        rec = rec.u64("max_faults", m as u64);
    }
    if let Some(sdf) = &req.sdf {
        rec = rec.str("sdf", sdf);
    }
    rec.finish()
}

/// Parses one request line. Total: any input yields a [`Request`] or a
/// typed [`ProtoError`] — this function is the surface the protocol fuzz
/// suite hammers with garbage.
///
/// # Errors
///
/// Every way a line can be malformed maps to a distinct [`ProtoError`]
/// variant; see the enum docs.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtoError::LineTooLong {
            limit: MAX_LINE_BYTES,
        });
    }
    let value = json::parse(line).map_err(|message| ProtoError::Json { message })?;
    if value.as_obj().is_none() {
        return Err(ProtoError::NotAnObject);
    }
    if let Some(got) = opt_u64(&value, "proto")? {
        if got != PROTO_VERSION {
            return Err(ProtoError::UnsupportedVersion { got });
        }
    }
    let op = opt_str(&value, "op")?.ok_or(ProtoError::MissingField { field: "op" })?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "observe" => Ok(Request::Observe),
        "watch" => {
            let interval_ms = opt_u64(&value, "interval_ms")?.unwrap_or(1000);
            if !(MIN_WATCH_INTERVAL_MS..=MAX_WATCH_INTERVAL_MS).contains(&interval_ms) {
                return Err(bad(
                    "interval_ms",
                    format!("expected {MIN_WATCH_INTERVAL_MS}..={MAX_WATCH_INTERVAL_MS}"),
                ));
            }
            Ok(Request::Watch {
                interval_ms,
                count: opt_u64(&value, "count")?.unwrap_or(0),
            })
        }
        "gc" => Ok(Request::Gc {
            min_age_secs: opt_u64(&value, "min_age_secs")?,
        }),
        "submit" => Ok(Request::Submit(Box::new(parse_submit(&value)?))),
        other => Err(ProtoError::UnknownOp {
            op: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_requests() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"status"}"#), Ok(Request::Status));
        assert_eq!(
            parse_request(r#"{"op":"gc","min_age_secs":0}"#),
            Ok(Request::Gc {
                min_age_secs: Some(0)
            })
        );
        assert_eq!(parse_request(r#"{"op":"observe"}"#), Ok(Request::Observe));
        assert_eq!(
            parse_request(r#"{"op":"watch"}"#),
            Ok(Request::Watch {
                interval_ms: 1000,
                count: 0
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"watch","interval_ms":250,"count":5}"#),
            Ok(Request::Watch {
                interval_ms: 250,
                count: 5
            })
        );
        let req = parse_request(
            r#"{"op":"submit","proto":1,"tenant":"t0","name":"j1",
                "circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},
                "coverage":0.95,"deadline_secs":30,"pattern_budget":64,
                "max_faults":150,"seed":3,"threads":2,"shards":4}"#,
        )
        .unwrap();
        let Request::Submit(job) = req else {
            panic!("expected submit")
        };
        assert_eq!(job.tenant, "t0");
        assert_eq!(
            job.circuit,
            CircuitSpec::Profile {
                name: "s9234".into(),
                scale: 0.05,
                seed: 7
            }
        );
        assert_eq!(job.coverage, 0.95);
        assert_eq!(job.deadline_secs, Some(30.0));
        assert_eq!(job.pattern_budget, Some(64));
        assert_eq!(job.threads, 2);
        assert_eq!(job.shards, 4);
        assert!(!job.shard_procs);
    }

    #[test]
    fn shard_procs_parses_strictly() {
        let line = |v: &str| {
            format!(
                r#"{{"op":"submit","shard_procs":{v},"circuit":{{"kind":"library","name":"s27"}}}}"#
            )
        };
        for (v, want) in [("true", true), ("false", false), ("null", false)] {
            let Request::Submit(job) = parse_request(&line(v)).unwrap() else {
                panic!("expected submit")
            };
            assert_eq!(job.shard_procs, want, "shard_procs {v}");
        }
        // anything but a boolean is a typed rejection, not a coercion
        for v in ["1", "\"yes\"", "[true]"] {
            assert_eq!(parse_request(&line(v)).unwrap_err().kind(), "bad_field");
        }
        // the shard count is capped where the supervisor's own limit is
        let over = format!(
            r#"{{"op":"submit","shards":{},"circuit":{{"kind":"library","name":"s27"}}}}"#,
            fastmon_core::MAX_SHARDS + 1
        );
        assert_eq!(parse_request(&over).unwrap_err().kind(), "bad_field");
    }

    #[test]
    fn submit_lines_round_trip_through_the_serializer() {
        let requests = [
            JobRequest {
                tenant: "default".into(),
                name: "job".into(),
                circuit: CircuitSpec::Library { name: "s27".into() },
                sdf: None,
                coverage: 1.0,
                deadline_secs: None,
                pattern_budget: None,
                max_faults: None,
                seed: 1,
                threads: 1,
                shards: 1,
                shard_procs: false,
            },
            JobRequest {
                tenant: "t \"quoted\"\n".into(),
                name: "j1".into(),
                circuit: CircuitSpec::Profile {
                    name: "s9234".into(),
                    scale: 0.072_951,
                    seed: 7,
                },
                sdf: None,
                coverage: 0.95,
                deadline_secs: Some(30.5),
                pattern_budget: Some(64),
                max_faults: Some(150),
                seed: 3,
                threads: 2,
                shards: 4,
                shard_procs: true,
            },
            JobRequest {
                tenant: "t".into(),
                name: "bench".into(),
                circuit: CircuitSpec::Bench {
                    text: "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n".into(),
                },
                sdf: Some("(DELAYFILE \"x\")".into()),
                coverage: 0.5,
                deadline_secs: Some(1e9),
                pattern_budget: None,
                max_faults: Some(1),
                // largest exactly-representable JSON number (the wire
                // format is f64-backed)
                seed: (1 << 53) - 1,
                threads: 0,
                shards: fastmon_core::MAX_SHARDS,
                shard_procs: true,
            },
        ];
        for req in requests {
            let line = to_submit_line(&req);
            let parsed = parse_request(&line)
                .unwrap_or_else(|e| panic!("serialized line must parse: {e}\n{line}"));
            assert_eq!(parsed, Request::Submit(Box::new(req)), "line {line}");
        }
    }

    #[test]
    fn defaults_fill_every_optional_field() {
        let req =
            parse_request(r#"{"op":"submit","circuit":{"kind":"library","name":"s27"}}"#).unwrap();
        let Request::Submit(job) = req else {
            panic!("expected submit")
        };
        assert_eq!(job.tenant, "default");
        assert_eq!(job.coverage, 1.0);
        assert_eq!(job.deadline_secs, None);
        assert_eq!(job.seed, 1);
        assert_eq!(job.threads, 1);
        assert_eq!(job.shards, 1);
        assert!(job.sdf.is_none());
    }

    #[test]
    fn malformed_lines_map_to_typed_errors() {
        let kind = |line: &str| parse_request(line).unwrap_err().kind();
        assert_eq!(kind(""), "json");
        assert_eq!(kind("{"), "json");
        assert_eq!(kind("garbage"), "json");
        assert_eq!(kind("[1,2]"), "not_an_object");
        assert_eq!(kind("42"), "not_an_object");
        assert_eq!(kind("{}"), "missing_field");
        assert_eq!(kind(r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(kind(r#"{"op":42}"#), "bad_field");
        assert_eq!(kind(r#"{"op":"submit"}"#), "missing_field");
        assert_eq!(kind(r#"{"op":"submit","circuit":7}"#), "bad_field");
        assert_eq!(
            kind(r#"{"op":"submit","circuit":{"kind":"wat","name":"x"}}"#),
            "bad_field"
        );
        assert_eq!(
            kind(r#"{"op":"submit","proto":2,"circuit":{"kind":"library","name":"s27"}}"#),
            "unsupported_version"
        );
        // the version gate applies to every op, not just submit
        assert_eq!(kind(r#"{"op":"ping","proto":99}"#), "unsupported_version");
        assert_eq!(kind(r#"{"op":"observe","proto":9}"#), "unsupported_version");
        assert_eq!(kind(r#"{"op":"watch","proto":9}"#), "unsupported_version");
        // watch intervals outside the clamp are rejected, not silently
        // adjusted
        assert_eq!(kind(r#"{"op":"watch","interval_ms":1}"#), "bad_field");
        assert_eq!(
            kind(r#"{"op":"watch","interval_ms":99999999}"#),
            "bad_field"
        );
        assert_eq!(
            parse_request(r#"{"op":"ping","proto":1}"#),
            Ok(Request::Ping)
        );
        assert_eq!(
            kind(r#"{"op":"submit","coverage":1.5,"circuit":{"kind":"library","name":"s27"}}"#),
            "bad_field"
        );
        assert_eq!(
            kind(r#"{"op":"submit","coverage":0,"circuit":{"kind":"library","name":"s27"}}"#),
            "bad_field"
        );
        // deadlines Duration cannot represent (negative or > u64::MAX
        // seconds) are rejected at the edge, not at token construction
        for deadline in ["-1", "1e30", "1e300"] {
            let line = format!(
                r#"{{"op":"submit","deadline_secs":{deadline},"circuit":{{"kind":"library","name":"s27"}}}}"#
            );
            assert_eq!(kind(&line), "bad_field", "deadline_secs {deadline}");
        }
        // a zero shard count is a request for no campaign at all
        assert_eq!(
            kind(r#"{"op":"submit","shards":0,"circuit":{"kind":"library","name":"s27"}}"#),
            "bad_field"
        );
        // a huge but representable deadline stays accepted
        assert!(parse_request(
            r#"{"op":"submit","deadline_secs":1e9,"circuit":{"kind":"library","name":"s27"}}"#
        )
        .is_ok());
        let oversized = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        assert_eq!(kind(&oversized), "line_too_long");
        // every error Displays and carries a stable kind
        for line in ["", "[", "{}", r#"{"op":"nope"}"#] {
            let err = parse_request(line).unwrap_err();
            assert!(!err.to_string().is_empty());
            assert!(!err.kind().is_empty());
        }
    }
}
