//! `fastmond` — the fastmon campaign daemon.
//!
//! ```text
//! fastmond [--listen ADDR] [--workers N] [--queue-limit N]
//!          [--checkpoint-root DIR] [--results-dir DIR]
//!          [--addr-file PATH] [--gc-grace-secs N]
//!          [--postmortem-dir DIR]
//! ```
//!
//! Failpoints are armed eagerly from `FASTMON_FAILPOINTS`: a malformed
//! spec is a fatal configuration error at startup (exit 2), not a
//! silently disabled schedule. SIGTERM/SIGINT drain gracefully and the
//! process exits 0.

use std::process::ExitCode;
use std::time::Duration;

use fastmon_daemon::server::{Daemon, DaemonConfig};
use fastmon_daemon::signals;

struct Args {
    config: DaemonConfig,
    addr_file: Option<std::path::PathBuf>,
}

fn usage() -> &'static str {
    "usage: fastmond [--listen ADDR] [--workers N] [--queue-limit N] \
     [--checkpoint-root DIR] [--results-dir DIR] [--addr-file PATH] \
     [--gc-grace-secs N] [--postmortem-dir DIR]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = DaemonConfig::at("fastmond-state");
    let mut addr_file = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--listen" => config.listen = value("--listen")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-limit" => {
                config.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?;
            }
            "--checkpoint-root" => config.checkpoint_root = value("--checkpoint-root")?.into(),
            "--results-dir" => config.results_dir = value("--results-dir")?.into(),
            "--addr-file" => addr_file = Some(value("--addr-file")?.into()),
            "--postmortem-dir" => config.postmortem_dir = value("--postmortem-dir")?.into(),
            "--gc-grace-secs" => {
                config.gc_grace = Duration::from_secs(
                    value("--gc-grace-secs")?
                        .parse()
                        .map_err(|e| format!("--gc-grace-secs: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args { config, addr_file })
}

fn main() -> ExitCode {
    // A process exec'd as `fastmond --shard-worker i/n` is a supervised
    // shard of a `"shard_procs"` job, not a daemon — route it before any
    // daemon setup (it arms its own failpoints lazily from the env).
    fastmon_daemon::shard::maybe_run_worker();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("fastmond: {message}");
            return ExitCode::from(2);
        }
    };

    // Malformed chaos specs are a startup error, not a silent no-op.
    match fastmon_obs::failpoints::arm_from_env() {
        Ok(true) => eprintln!("fastmond: failpoints armed from FASTMON_FAILPOINTS"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("fastmond: bad FASTMON_FAILPOINTS: {e}");
            return ExitCode::from(2);
        }
    }

    signals::install_drain_handlers();

    let handle = match Daemon::start(args.config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fastmond: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();
    println!("fastmond: listening on {addr}");

    // Land the address atomically so a client polling the file never
    // reads a partial write.
    if let Some(path) = &args.addr_file {
        let tmp = path.with_extension("tmp");
        let landed =
            std::fs::write(&tmp, format!("{addr}\n")).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = landed {
            eprintln!("fastmond: cannot write --addr-file {}: {e}", path.display());
            handle.drain();
            handle.join();
            return ExitCode::FAILURE;
        }
    }

    handle.join();
    println!("fastmond: drained, exiting");
    ExitCode::SUCCESS
}
