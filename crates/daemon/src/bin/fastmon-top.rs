//! `fastmon-top` — a live terminal view of a running `fastmond`.
//!
//! ```text
//! fastmon-top (--addr ADDR | --addr-file PATH)
//!             [--interval-ms N] [--iterations N] [--once]
//! ```
//!
//! Polls the daemon's `observe` op over the newline-JSON protocol and
//! renders a refreshing dashboard: queue + drain state, per-tenant lane
//! depths, per-job phase/band progress with ETAs, and the latency
//! histogram quantile table. `--once` prints a single snapshot with no
//! screen clearing (handy for scripts and bug reports); `--iterations N`
//! stops after N refreshes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use fastmon_obs::json::{self, Value};

struct Args {
    addr: Option<String>,
    addr_file: Option<std::path::PathBuf>,
    interval: Duration,
    /// 0 = run until interrupted.
    iterations: u64,
    once: bool,
}

fn usage() -> &'static str {
    "usage: fastmon-top (--addr ADDR | --addr-file PATH) \
     [--interval-ms N] [--iterations N] [--once]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        addr_file: None,
        interval: Duration::from_millis(1000),
        iterations: 0,
        once: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--addr-file" => args.addr_file = Some(value("--addr-file")?.into()),
            "--interval-ms" => {
                args.interval = Duration::from_millis(
                    value("--interval-ms")?
                        .parse()
                        .map_err(|e| format!("--interval-ms: {e}"))?,
                );
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--once" => args.once = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if args.addr.is_none() && args.addr_file.is_none() {
        return Err(format!("need --addr or --addr-file\n{}", usage()));
    }
    Ok(args)
}

fn resolve_addr(args: &Args) -> Result<String, String> {
    if let Some(addr) = &args.addr {
        return Ok(addr.clone());
    }
    let Some(path) = &args.addr_file else {
        return Err("need --addr or --addr-file".to_string());
    };
    std::fs::read_to_string(path)
        .map(|s| s.trim().to_string())
        .map_err(|e| format!("cannot read --addr-file {}: {e}", path.display()))
}

/// One polling connection; reconnects transparently if the daemon
/// restarted between refreshes.
struct Poller {
    addr: String,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
}

impl Poller {
    fn connect(addr: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok((BufReader::new(stream), writer))
    }

    fn observe_once(conn: &mut (BufReader<TcpStream>, TcpStream)) -> Result<Value, String> {
        conn.1
            .write_all(b"{\"op\":\"observe\"}\n")
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = conn
            .0
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        json::parse(line.trim()).map_err(|e| format!("bad observe record: {e}"))
    }

    fn observe(&mut self) -> Result<Value, String> {
        if self.conn.is_none() {
            self.conn =
                Some(Self::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?);
        }
        let Some(conn) = self.conn.as_mut() else {
            return Err("no connection".to_string());
        };
        match Self::observe_once(conn) {
            Ok(v) => Ok(v),
            Err(first) => {
                // One reconnect attempt: the daemon may have restarted.
                self.conn = None;
                let mut fresh = Self::connect(&self.addr)
                    .map_err(|e| format!("{first}; reconnect {}: {e}", self.addr))?;
                let v = Self::observe_once(&mut fresh)?;
                self.conn = Some(fresh);
                Ok(v)
            }
        }
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!(
            "{:.0}h{:02.0}m",
            (secs / 3600.0).floor(),
            (secs % 3600.0) / 60.0
        )
    } else if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

/// Nanoseconds → human-scaled string for the latency table.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn u(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn f(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(0.0)
}

fn s(v: Option<&Value>) -> &str {
    v.and_then(Value::as_str).unwrap_or("-")
}

fn render(snapshot: &Value, out: &mut String) {
    out.push_str(&format!(
        "fastmond  up {}  queued {}/{}  {}\n",
        fmt_secs(u(snapshot.get("uptime_secs")) as f64),
        u(snapshot.get("queued")),
        u(snapshot.get("queue_limit")),
        if snapshot.get("draining").and_then(Value::as_bool) == Some(true) {
            "DRAINING"
        } else {
            "serving"
        },
    ));

    // The registry serializes flat dotted keys; the daemon section is
    // the interesting one here.
    let counters = snapshot.get("counters");
    let daemon = |name: &str| u(counters.and_then(|c| c.get(&format!("robustness.daemon.{name}"))));
    out.push_str(&format!(
        "jobs  admitted {}  completed {}  failed {}  cancelled {}  resumed {}  panics {}\n",
        daemon("jobs_admitted"),
        daemon("jobs_completed"),
        daemon("jobs_failed"),
        daemon("jobs_cancelled"),
        daemon("jobs_resumed"),
        daemon("panics_contained"),
    ));

    let tenants = snapshot
        .get("tenants")
        .and_then(Value::as_arr)
        .unwrap_or(&[]);
    if !tenants.is_empty() {
        out.push_str("\nTENANT            QUEUED  OLDEST WAIT\n");
        for t in tenants {
            let wait = t
                .get("oldest_wait_secs")
                .and_then(Value::as_f64)
                .map_or_else(|| "-".to_string(), fmt_secs);
            out.push_str(&format!(
                "{:<16} {:>7}  {:>11}\n",
                s(t.get("tenant")),
                u(t.get("queued")),
                wait,
            ));
        }
    }

    let jobs = snapshot.get("jobs").and_then(Value::as_arr).unwrap_or(&[]);
    out.push_str(
        "\n  ID TENANT       NAME                 PHASE     BANDS    PATTERNS  ELAPSED      ETA\n",
    );
    if jobs.is_empty() {
        out.push_str("  (no running jobs)\n");
    }
    for j in jobs {
        let eta = j
            .get("eta_secs")
            .and_then(Value::as_f64)
            .map_or_else(|| "-".to_string(), fmt_secs);
        out.push_str(&format!(
            "{:>4} {:<12} {:<20} {:<8} {:>6} {:>5}/{:<5} {:>8} {:>8}{}\n",
            u(j.get("id")),
            s(j.get("tenant")),
            s(j.get("name")),
            s(j.get("phase")),
            u(j.get("bands_done")),
            u(j.get("next_pattern")),
            u(j.get("total_patterns")),
            fmt_secs(f(j.get("elapsed_secs"))),
            eta,
            if j.get("resumed").and_then(Value::as_bool) == Some(true) {
                "  (resumed)"
            } else {
                ""
            },
        ));
        // Supervised multi-process jobs ("shard_procs") carry per-shard
        // supervisor state: index, progress within the shard's slice,
        // charged respawns, last observation.
        for r in j.get("shards").and_then(Value::as_arr).unwrap_or(&[]) {
            out.push_str(&format!(
                "       shard {:<3} {:<12} {:>5}/{:<5} respawns {}\n",
                u(r.get("shard")),
                s(r.get("state")),
                u(r.get("next_pattern")),
                u(r.get("total_patterns")),
                u(r.get("respawns")),
            ));
        }
    }

    if let Some(latency) = snapshot.get("latency").and_then(Value::as_obj) {
        out.push_str("\nLATENCY           COUNT      P50      P90      P99      MAX\n");
        for (name, h) in latency {
            let count = u(h.get("count"));
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>6} {:>8} {:>8} {:>8} {:>8}\n",
                name,
                count,
                fmt_ns(f(h.get("p50"))),
                fmt_ns(f(h.get("p90"))),
                fmt_ns(f(h.get("p99"))),
                fmt_ns(f(h.get("max"))),
            ));
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("fastmon-top: {message}");
            return ExitCode::from(2);
        }
    };
    let addr = match resolve_addr(&args) {
        Ok(addr) => addr,
        Err(message) => {
            eprintln!("fastmon-top: {message}");
            return ExitCode::from(2);
        }
    };
    let iterations = if args.once { 1 } else { args.iterations };
    let mut poller = Poller { addr, conn: None };
    let mut shown = 0u64;
    loop {
        let snapshot = match poller.observe() {
            Ok(v) => v,
            Err(message) => {
                eprintln!("fastmon-top: {message}");
                return ExitCode::FAILURE;
            }
        };
        let mut out = String::new();
        if !args.once {
            // Clear screen + home, like top(1).
            out.push_str("\x1b[2J\x1b[H");
        }
        render(&snapshot, &mut out);
        print!("{out}");
        std::io::stdout().flush().ok();
        shown += 1;
        if iterations != 0 && shown >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_require_an_address_source() {
        assert!(parse_args(&[]).is_err());
        let ok = parse_args(&["--addr".into(), "127.0.0.1:7".into()]);
        assert!(ok.is_ok_and(|a| a.addr.as_deref() == Some("127.0.0.1:7")));
    }

    #[test]
    fn render_survives_a_minimal_snapshot() {
        let v = json::parse(
            r#"{"event":"observe","uptime_secs":5,"queued":0,"queue_limit":16,
                "draining":false,"tenants":[],"jobs":[],
                "counters":{"robustness.daemon.jobs_admitted":1},
                "latency":{"job_run":{"count":1,"sum":10,"p50":10,"p90":10,"p99":10,"max":10}}}"#,
        )
        .unwrap();
        let mut out = String::new();
        render(&v, &mut out);
        assert!(out.contains("serving"));
        assert!(out.contains("job_run"));
        assert!(out.contains("(no running jobs)"));
    }

    #[test]
    fn render_shows_per_shard_supervisor_rows() {
        let v = json::parse(
            r#"{"event":"observe","uptime_secs":5,"queued":0,"queue_limit":16,
                "draining":false,"tenants":[],
                "jobs":[{"id":3,"tenant":"t0","name":"big","phase":"analyze",
                         "resumed":false,"bands_done":4,"next_pattern":12,
                         "total_patterns":48,"elapsed_secs":2.5,
                         "shards":[
                           {"shard":0,"state":"heartbeat","respawns":0,
                            "next_pattern":12,"total_patterns":16},
                           {"shard":1,"state":"stalled","respawns":1,
                            "next_pattern":4,"total_patterns":16}]}],
                "counters":{},"latency":{}}"#,
        )
        .unwrap();
        let mut out = String::new();
        render(&v, &mut out);
        assert!(out.contains("shard 0"), "{out}");
        assert!(out.contains("heartbeat"), "{out}");
        assert!(out.contains("stalled"), "{out}");
        assert!(out.contains("respawns 1"), "{out}");
        assert!(out.contains("12/16"), "{out}");
    }

    #[test]
    fn durations_and_latencies_format_human_scaled() {
        assert_eq!(fmt_secs(3.25), "3.2s");
        assert_eq!(fmt_secs(75.0), "1m15s");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
