//! Per-job crash flight recorder.
//!
//! A [`FlightRecorder`] is a bounded ring buffer of the last N
//! span/band/failpoint events of one running job. While the job is
//! healthy it costs one mutex lock and a small allocation per event
//! (events arrive at phase/band granularity, a handful per second at
//! most). When the job dies — a typed failure or a contained panic —
//! the tail is dumped twice: as a `flight_recorder` array inside the
//! `failed`/`panicked` terminal record the client receives, and as a
//! post-mortem JSONL file next to the checkpoint directory, so the
//! evidence survives even when no client was listening.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use fastmon_obs::Record;

/// One recorded event: job-relative time, a stable kind tag and a short
/// free-form detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Milliseconds since the job started.
    pub t_ms: u64,
    /// Stable kind tag (`start`, `phase`, `campaign`, `resumed`, `band`,
    /// `failpoint`, `error`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

struct Inner {
    events: VecDeque<FlightEvent>,
    /// Events pushed out of the ring by newer ones.
    dropped: u64,
}

/// A bounded ring buffer of one job's recent lifecycle events.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    cap: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("events", &self.events.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (at least 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            started: Instant::now(),
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn note(&self, kind: &'static str, detail: impl Into<String>) {
        let t_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let mut inner = self.lock();
        if inner.events.len() >= self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(FlightEvent {
            t_ms,
            kind,
            detail: detail.into(),
        });
    }

    /// Events currently held (≤ cap).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A snapshot of the retained tail, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// The retained tail as a JSON array of
    /// `{"t_ms":..,"kind":"..","detail":".."}` objects — the
    /// `flight_recorder` field of `failed`/`panicked` terminal records.
    #[must_use]
    pub fn to_json_array(&self) -> String {
        let mut s = String::from("[");
        for (i, ev) in self.snapshot().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(
                &Record::new()
                    .u64("t_ms", ev.t_ms)
                    .str("kind", ev.kind)
                    .str("detail", &ev.detail)
                    .finish(),
            );
        }
        s.push(']');
        s
    }

    /// Writes the post-mortem JSONL file: `header` (one record line,
    /// built by the caller with job identity and terminal status), then
    /// one line per retained event. Written via tmp + rename so a
    /// half-written post-mortem is never observed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers treat the post-mortem as
    /// best-effort.
    pub fn write_postmortem(&self, path: &Path, header: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = String::with_capacity(header.len() + 1);
        text.push_str(header);
        text.push('\n');
        for ev in self.snapshot() {
            text.push_str(
                &Record::new()
                    .str("event", "flight")
                    .u64("t_ms", ev.t_ms)
                    .str("kind", ev.kind)
                    .str("detail", &ev.detail)
                    .finish(),
            );
            text.push('\n');
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_tail_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for i in 0..5 {
            fr.note("band", format!("band {i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let tail: Vec<String> = fr.snapshot().into_iter().map(|e| e.detail).collect();
        assert_eq!(tail, ["band 2", "band 3", "band 4"]);
    }

    #[test]
    fn json_array_parses_and_escapes_details() {
        let fr = FlightRecorder::new(4);
        fr.note("phase", "atpg");
        fr.note("error", "band \"3\" exploded\nbadly");
        let v = fastmon_obs::json::parse(&fr.to_json_array()).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[1].get("detail").and_then(|d| d.as_str()),
            Some("band \"3\" exploded\nbadly")
        );
        assert!(arr[0].get("t_ms").and_then(|t| t.as_u64()).is_some());
    }

    #[test]
    fn postmortem_file_is_header_plus_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("fastmond-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8);
        fr.note("phase", "analyze");
        fr.note("band", "next_pattern=8 total=64");
        let path = dir.join("job-1.jsonl");
        let header = Record::new()
            .str("event", "postmortem")
            .str("name", "job")
            .str("status", "failed")
            .finish();
        fr.write_postmortem(&path, &header).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let head = fastmon_obs::json::parse(lines[0]).unwrap();
        assert_eq!(
            head.get("event").and_then(|e| e.as_str()),
            Some("postmortem")
        );
        for line in &lines[1..] {
            let v = fastmon_obs::json::parse(line).unwrap();
            assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("flight"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
