//! Chaos soak (the tentpole's acceptance test): N concurrent clients ×
//! M campaigns against the real `fastmond` binary with
//! `FASTMON_FAILPOINTS` chaos armed and random `kill -9`s mid-campaign —
//! every campaign must complete with a `DetectionAnalysis` bit-identical
//! to a clean serial in-process run, and a SIGTERM drain with a job in
//! flight must exit 0 leaving that job completed or resumable.
//!
//! Scale knobs (CI smoke uses `FASTMON_SOAK_CLIENTS=2
//! FASTMON_SOAK_PER_CLIENT=3 FASTMON_SOAK_KILLS=1`):
//!
//! | env | acceptance default |
//! |---|---|
//! | `FASTMON_SOAK_CLIENTS` | 4 |
//! | `FASTMON_SOAK_PER_CLIENT` | 2 |
//! | `FASTMON_SOAK_KILLS` | 2 |

use std::collections::HashMap;
use std::time::Duration;

use fastmon_bench::soak::{drive_to_completion, run_soak, SoakPlan};
use fastmon_core::CheckpointDir;
use fastmon_daemon::{parse_request, run_job, Request};
use fastmon_obs::CancelToken;

/// Clean serial baseline: run the exact wire request in-process (no
/// daemon, no failpoints, fresh checkpoint root) and return
/// `(fingerprint, result_fingerprint)` as the wire formats them.
fn serial_baseline(root: &std::path::Path, line: &str) -> (String, String) {
    let Ok(Request::Submit(req)) = parse_request(line) else {
        panic!("soak plan produced an unparseable submit line: {line}");
    };
    let dirs = CheckpointDir::new(root.join("baseline-ckpt"));
    let cancel = CancelToken::new();
    let outcome = run_job(
        &req,
        &dirs,
        &root.join("baseline-results"),
        &cancel,
        None,
        &mut |_| {},
    )
    .expect("clean serial baseline must succeed");
    (
        format!("{:016x}", outcome.fingerprint),
        format!("{:016x}", outcome.result_fingerprint),
    )
}

#[test]
fn chaos_soak_is_bit_identical_to_clean_serial_runs() {
    // The driving process must itself be chaos-free: failpoints are
    // armed only in the daemon child's environment.
    assert!(
        std::env::var("FASTMON_FAILPOINTS").is_err(),
        "unset FASTMON_FAILPOINTS before running the soak; the driver \
         injects it into the daemon child only"
    );

    let plan = SoakPlan::from_env();
    let bin = std::path::Path::new(env!("CARGO_BIN_EXE_fastmond"));
    let root = std::env::temp_dir().join(format!("fastmond-soak-{}", std::process::id()));

    let report = run_soak(bin, &root, &plan).expect("soak must finish inside its budget");
    println!(
        "soak: {} campaigns, {} kills, {} daemon starts, {} resumed, drain status {:?} (exit0 {})",
        report.results.len(),
        report.kills,
        report.starts,
        report.resumed_campaigns,
        report.drain_job_status,
        report.drain_exit_zero,
    );

    for r in &report.results {
        println!(
            "soak:   {:<8} fp={} result={} attempts={} resumed={}",
            r.name, r.fingerprint, r.result_fingerprint, r.attempts, r.resumed_ever
        );
    }

    // every campaign completed, and the chaos actually happened
    assert_eq!(report.results.len(), plan.clients * plan.per_client);
    assert_eq!(
        report.kills, plan.kills,
        "every scheduled kill -9 must land"
    );
    assert_eq!(report.starts, plan.kills + 1);
    if plan.kills > 0 {
        assert!(
            report.resumed_campaigns > 0,
            "kills landed mid-campaign, so at least one campaign must have \
             resumed from a checkpoint"
        );
    }

    // SIGTERM drain: exit 0 with the in-flight job completed or
    // cancelled-at-a-durable-checkpoint
    assert!(report.drain_exit_zero, "SIGTERM drain must exit 0");
    assert!(matches!(
        report.drain_job_status.as_str(),
        "completed" | "cancelled"
    ));

    // bit-identity: every campaign's result fingerprint equals a clean
    // serial in-process run of the identical request
    let by_name: HashMap<&str, _> = report
        .results
        .iter()
        .map(|r| (r.name.as_str(), r))
        .collect();
    for spec in plan.campaigns() {
        let line = spec.submit_line(&plan);
        let (fp, result_fp) = serial_baseline(&root, &line);
        let got = by_name
            .get(spec.name.as_str())
            .unwrap_or_else(|| panic!("campaign {} missing from report", spec.name));
        assert_eq!(
            got.fingerprint, fp,
            "campaign fingerprint for {}",
            spec.name
        );
        assert_eq!(
            got.result_fingerprint, result_fp,
            "chaos-run result of {} must be bit-identical to the clean serial run \
             (after {} attempts, resumed={})",
            spec.name, got.attempts, got.resumed_ever
        );
    }

    // the drained in-flight job is genuinely resumable: a fresh daemon
    // (chaos off) finishes it and matches its own clean baseline
    let drain_spec = fastmon_bench::soak::CampaignSpec {
        tenant: "drain".to_string(),
        name: "drain-job".to_string(),
        seed: 999,
    };
    let line = drain_spec.submit_line(&plan);
    let mut daemon = fastmon_bench::soak::DaemonProc::spawn(bin, &root, &plan, None)
        .expect("restart daemon for drain-resume check");
    let finished = drive_to_completion(&root, &line, Duration::from_secs(120))
        .expect("drained job must complete after restart");
    if report.drain_job_status == "cancelled" {
        assert!(
            finished.resumed_ever,
            "a job cancelled mid-campaign by the drain must resume from its \
             checkpoint, not start over"
        );
    }
    let (_, result_fp) = serial_baseline(&root, &line);
    assert_eq!(finished.result_fingerprint, result_fp);

    // Telemetry consistency after the chaos: the surviving daemon's
    // `observe` snapshot must show zero stuck jobs (the running-jobs
    // table empties when the terminal lands — retry briefly, the removal
    // races the terminal record by design) and latency totals that
    // account for the campaign it just ran.
    let snapshot = {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let snap = fastmon_bench::soak::observe(&root)
                .expect("the restarted daemon must answer observe");
            let running = snap
                .get("jobs")
                .and_then(|j| j.as_arr())
                .map_or(usize::MAX, <[_]>::len);
            if running == 0 || std::time::Instant::now() > deadline {
                break snap;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    };
    assert_eq!(
        snapshot
            .get("jobs")
            .and_then(|j| j.as_arr())
            .map(<[_]>::len),
        Some(0),
        "no job may be stuck running after its terminal record: {snapshot:?}"
    );
    assert_eq!(snapshot.get("queued").and_then(|q| q.as_u64()), Some(0));
    let hist_count = |name: &str| {
        snapshot
            .get("latency")
            .and_then(|l| l.get(name))
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_u64())
            .unwrap_or(0)
    };
    let completed = snapshot
        .get("counters")
        .and_then(|c| c.get("robustness.daemon.jobs_completed"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(completed >= 1, "the drain-resume campaign completed here");
    assert!(
        hist_count("job_run") >= completed,
        "every completed campaign passed through the job_run histogram: {snapshot:?}"
    );
    assert!(
        hist_count("queue_wait") >= completed,
        "every completed campaign was popped off the queue: {snapshot:?}"
    );
    assert!(hist_count("band") >= 1, "campaigns checkpoint in bands");

    daemon.kill9();

    let _ = std::fs::remove_dir_all(&root);
}
