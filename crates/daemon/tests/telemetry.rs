//! Live-telemetry integration tests: the `observe` and `watch` ops
//! against a real socket, and the crash flight recorder against a real
//! `fastmond` child with a panic failpoint armed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fastmon_daemon::server::{Daemon, DaemonConfig};
use fastmon_obs::json::{self, Value};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fastmond-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn client(addr: impl std::net::ToSocketAddrs) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    let writer = stream.try_clone().unwrap();
    (BufReader::new(stream), writer)
}

fn send(writer: &mut TcpStream, line: &str) {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
}

fn recv(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap();
    assert!(n > 0, "daemon closed the connection mid-conversation");
    json::parse(line.trim()).unwrap()
}

fn event_of(v: &Value) -> &str {
    v.get("event").and_then(Value::as_str).unwrap()
}

fn hist_count(snapshot: &Value, name: &str) -> u64 {
    snapshot
        .get("latency")
        .and_then(|l| l.get(name))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn observe_reports_queue_jobs_and_latency_quantiles() {
    let root = tmp("observe");
    let mut config = DaemonConfig::at(&root);
    config.workers = 1;
    let handle = Daemon::start(config).unwrap();
    let (mut reader, mut writer) = client(handle.addr());

    // An idle daemon still answers a full-shape snapshot.
    send(&mut writer, r#"{"op":"observe"}"#);
    let idle = recv(&mut reader);
    assert_eq!(event_of(&idle), "observe");
    assert_eq!(idle.get("queued").and_then(Value::as_u64), Some(0));
    assert_eq!(idle.get("draining").and_then(Value::as_bool), Some(false));
    assert!(idle.get("tenants").and_then(Value::as_arr).is_some());
    assert_eq!(
        idle.get("jobs").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0)
    );
    assert!(idle
        .get("counters")
        .and_then(|c| c.get("robustness.daemon.jobs_admitted"))
        .is_some());
    assert!(idle.get("latency").and_then(|l| l.get("job_run")).is_some());

    // Run one real campaign to completion; every stage histogram must
    // have fired and the tenant lane must be known.
    let (mut jr, mut jw) = client(handle.addr());
    send(
        &mut jw,
        r#"{"op":"submit","tenant":"acme","name":"s27-obs","circuit":{"kind":"library","name":"s27"}}"#,
    );
    assert_eq!(event_of(&recv(&mut jr)), "admitted");
    loop {
        let v = recv(&mut jr);
        if event_of(&v) == "terminal" {
            assert_eq!(v.get("status").and_then(Value::as_str), Some("completed"));
            break;
        }
    }

    send(&mut writer, r#"{"op":"observe"}"#);
    let after = recv(&mut reader);
    let tenants = after.get("tenants").and_then(Value::as_arr).unwrap();
    assert!(
        tenants
            .iter()
            .any(|t| t.get("tenant").and_then(Value::as_str) == Some("acme")),
        "tenant lane must be listed after a submission"
    );
    for h in [
        "queue_wait",
        "job_run",
        "band",
        "checkpoint_save",
        "proto_parse",
        "proto_handle",
    ] {
        assert!(
            hist_count(&after, h) > 0,
            "latency histogram {h} must have recorded at least once, got {after:?}"
        );
    }
    let completed = after
        .get("counters")
        .and_then(|c| c.get("robustness.daemon.jobs_completed"))
        .and_then(Value::as_u64);
    assert_eq!(completed, Some(1));

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watch_streams_the_requested_number_of_snapshots() {
    let root = tmp("watch");
    let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
    let (mut reader, mut writer) = client(handle.addr());

    send(&mut writer, r#"{"op":"watch","interval_ms":50,"count":3}"#);
    for _ in 0..3 {
        let v = recv(&mut reader);
        assert_eq!(event_of(&v), "observe");
    }
    // The connection survives the stream and keeps serving requests.
    send(&mut writer, r#"{"op":"ping"}"#);
    assert_eq!(event_of(&recv(&mut reader)), "pong");

    // Out-of-range intervals are a typed protocol error, not a hang.
    send(&mut writer, r#"{"op":"watch","interval_ms":5}"#);
    let err = recv(&mut reader);
    assert_eq!(event_of(&err), "error");

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// Spawns the real `fastmond` binary with a panic failpoint armed on the
/// second band checkpoint, and returns (child, addr).
fn spawn_chaos_daemon(root: &Path, failpoints: &str) -> (std::process::Child, String) {
    let bin = env!("CARGO_BIN_EXE_fastmond");
    std::fs::create_dir_all(root).unwrap();
    let addr_file = root.join("addr");
    let child = std::process::Command::new(bin)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("1")
        .arg("--checkpoint-root")
        .arg(root.join("checkpoints"))
        .arg("--results-dir")
        .arg(root.join("results"))
        .arg("--postmortem-dir")
        .arg(root.join("postmortems"))
        .arg("--addr-file")
        .arg(&addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .env("FASTMON_FAILPOINTS", failpoints)
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "fastmond never wrote its addr file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

const MULTI_BAND_SUBMIT: &str = concat!(
    r#"{"op":"submit","tenant":"chaos","name":"boomy","#,
    r#""circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},"#,
    r#""max_faults":150,"seed":11,"threads":1}"#
);

#[test]
fn panicked_job_terminal_carries_its_flight_recorder_tail() {
    let root = tmp("flight");
    // Second band checkpoint panics: band 1 lands (a `band` flight event
    // is recorded), band 2 blows up inside the worker.
    let (mut child, addr) = spawn_chaos_daemon(&root, "campaign_band=panic@2");
    let (mut reader, mut writer) = client(addr.as_str());

    send(&mut writer, MULTI_BAND_SUBMIT);
    assert_eq!(event_of(&recv(&mut reader)), "admitted");
    let terminal = loop {
        let v = recv(&mut reader);
        if event_of(&v) == "terminal" {
            break v;
        }
    };
    assert_eq!(
        terminal.get("status").and_then(Value::as_str),
        Some("failed")
    );
    assert_eq!(terminal.get("kind").and_then(Value::as_str), Some("panic"));

    let flight = terminal
        .get("flight_recorder")
        .and_then(Value::as_arr)
        .expect("panicked terminal must carry a flight_recorder array");
    assert!(!flight.is_empty());
    let kinds: Vec<&str> = flight
        .iter()
        .filter_map(|e| e.get("kind").and_then(Value::as_str))
        .collect();
    assert!(
        kinds.contains(&"band"),
        "the tail must include the band events leading up to the crash, got {kinds:?}"
    );
    assert!(
        kinds.last() == Some(&"error"),
        "the final event must be the error itself, got {kinds:?}"
    );

    // The same tail landed as a post-mortem file, header first.
    let postmortems: Vec<PathBuf> = std::fs::read_dir(root.join("postmortems"))
        .expect("postmortem dir must exist after a crash")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    assert_eq!(
        postmortems.len(),
        1,
        "exactly one crashed job, got {postmortems:?}"
    );
    let text = std::fs::read_to_string(&postmortems[0]).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header plus at least one event");
    let header = json::parse(lines[0]).unwrap();
    assert_eq!(
        header.get("event").and_then(Value::as_str),
        Some("postmortem")
    );
    assert_eq!(header.get("kind").and_then(Value::as_str), Some("panic"));
    assert_eq!(header.get("name").and_then(Value::as_str), Some("boomy"));

    // The daemon contained the panic: it still answers, and the job is
    // resumable from its surviving band-1 checkpoint. The resumed record
    // links the predecessor run id (the `.run` sidecar survives).
    let (mut r2, mut w2) = client(addr.as_str());
    send(&mut w2, MULTI_BAND_SUBMIT);
    assert_eq!(event_of(&recv(&mut r2)), "admitted");
    let mut prev_run = None;
    loop {
        let v = recv(&mut r2);
        match event_of(&v) {
            "resumed" => {
                prev_run = v.get("prev_run").and_then(Value::as_str).map(String::from);
            }
            "terminal" => {
                assert_eq!(v.get("status").and_then(Value::as_str), Some("completed"));
                break;
            }
            _ => {}
        }
    }
    let prev_run = prev_run.expect("second attempt must resume and link its predecessor");
    assert_eq!(prev_run.len(), 16);
    assert!(prev_run.chars().all(|c| c.is_ascii_hexdigit()));

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
}
