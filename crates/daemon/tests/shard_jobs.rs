//! Supervised multi-process shard jobs (`"shard_procs":true`), end to
//! end: `run_job` parity against the in-process run, forwarded
//! per-shard events and supervisor counters, and a live daemon round
//! trip whose children crash on an armed failpoint, get respawned, and
//! still land a result bit-identical to the serial baseline.
//!
//! The worker executable must be the real `fastmond` binary (the test
//! harness binary has no `--shard-worker` intercept), so the test pins
//! `FASTMOND_SHARD_WORKER_BIN`. Environment knobs are process-global
//! and inherited by the spawned workers; everything runs in one test
//! body, strictly serialized.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use fastmon_daemon::job::{run_job, JobError, JobEvent};
use fastmon_daemon::proto::{CircuitSpec, JobRequest};
use fastmon_daemon::server::{Daemon, DaemonConfig};
use fastmon_daemon::shard::ENV_WORKER_BIN;
use fastmon_obs::json::{self, Value};
use fastmon_obs::{CancelToken, MetricsRegistry};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastmond-shard-jobs-{tag}-{}-{}",
        std::process::id(),
        fastmon_obs::run_id(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn request(shards: usize, shard_procs: bool) -> JobRequest {
    JobRequest {
        tenant: "t0".into(),
        name: "shardsup".into(),
        circuit: CircuitSpec::Profile {
            name: "s9234".into(),
            scale: 0.05,
            seed: 7,
        },
        sdf: None,
        coverage: 1.0,
        deadline_secs: None,
        pattern_budget: Some(24),
        max_faults: Some(120),
        seed: 1,
        threads: 1,
        shards,
        shard_procs,
    }
}

#[test]
fn supervised_jobs_match_the_serial_result_and_stream_shard_rows() {
    for key in ["FASTMON_FAILPOINTS", "FASTMON_SHARD_BACKOFF_MS"] {
        std::env::remove_var(key);
    }
    std::env::set_var(ENV_WORKER_BIN, env!("CARGO_BIN_EXE_fastmond"));

    // ---- part 1: run_job parity, shard events, supervisor counters ----
    // (also initializes this process's lazy failpoint schedule as empty,
    // so arming FASTMON_FAILPOINTS later reaches only the workers)
    let root = tmp("direct");
    let dirs = fastmon_core::CheckpointDir::new(root.join("ckpt"));
    let cancel = CancelToken::new();
    let serial = run_job(
        &request(1, false),
        &dirs,
        &root.join("r-serial"),
        &cancel,
        None,
        &mut |_| {},
    )
    .unwrap();

    let registry = MetricsRegistry::new();
    let mut events = Vec::new();
    let supervised = run_job(
        &request(3, true),
        &dirs,
        &root.join("r-procs"),
        &cancel,
        Some(&registry),
        &mut |e| events.push(e),
    )
    .unwrap();
    assert_eq!(
        supervised.result_fingerprint, serial.result_fingerprint,
        "supervised shard_procs result must be bit-identical to serial"
    );
    // the campaign fingerprint ignores the shard layout too
    assert_eq!(supervised.fingerprint, serial.fingerprint);
    for shard in 0..3usize {
        assert!(
            events.iter().any(|e| matches!(
                e,
                JobEvent::Shard {
                    shard: s,
                    kind: "completed",
                    ..
                } if *s == shard
            )),
            "missing completed event for shard {shard}: {events:?}"
        );
    }
    assert!(events.iter().any(|e| matches!(
        e,
        JobEvent::Shard {
            kind: "spawned",
            ..
        }
    )));
    let sup = &registry.shardsup;
    assert_eq!(sup.shards_completed.get(), 3);
    assert!(sup.workers_spawned.get() >= 3);
    assert!(sup.heartbeats_received.get() > 0);
    let _ = std::fs::remove_dir_all(&root);

    // a bad supervisor knob is a typed spec error, not a crash
    std::env::set_var("FASTMON_SHARD_JOBS", "zero");
    let err = run_job(
        &request(2, true),
        &dirs,
        &root.join("r-bad"),
        &cancel,
        None,
        &mut |_| {},
    )
    .unwrap_err();
    std::env::remove_var("FASTMON_SHARD_JOBS");
    assert!(matches!(err, JobError::Spec { .. }), "got {err:?}");
    assert!(err.to_string().contains("zero"), "got {err}");

    // ---- part 2: live daemon, children crash on an armed failpoint ----
    // Every first-attempt worker dies at band 2; the supervisor backs
    // off 400ms and respawns clean (it strips FASTMON_FAILPOINTS), which
    // both proves recovery over the wire and holds the job in flight
    // long enough for `observe` to catch the per-shard rows.
    std::env::set_var("FASTMON_FAILPOINTS", "campaign_band=err@2");
    std::env::set_var("FASTMON_SHARD_BACKOFF_MS", "400");
    let root2 = tmp("daemon");
    let handle = Daemon::start(DaemonConfig::at(&root2)).unwrap();
    let addr = handle.addr();

    let (line_tx, line_rx) = channel::<String>();
    let submitter = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(
                concat!(
                    r#"{"op":"submit","tenant":"t0","name":"procs","#,
                    r#""circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},"#,
                    r#""pattern_budget":24,"max_faults":120,"seed":1,"#,
                    r#""shards":2,"shard_procs":true}"#,
                    "\n"
                )
                .as_bytes(),
            )
            .unwrap();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                panic!("daemon closed the submit stream early");
            }
            let stop = line.contains("\"event\":\"terminal\"");
            line_tx.send(line).unwrap();
            if stop {
                return;
            }
        }
    });

    // Poll observe on a second connection until the per-shard rows show
    // up (the job stays in flight for at least the 400ms backoff).
    let obs_stream = TcpStream::connect(addr).unwrap();
    let mut obs_writer = obs_stream.try_clone().unwrap();
    let mut obs_reader = BufReader::new(obs_stream);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_rows = false;
    while !saw_rows && Instant::now() < deadline {
        obs_writer.write_all(b"{\"op\":\"observe\"}\n").unwrap();
        let mut line = String::new();
        obs_reader.read_line(&mut line).unwrap();
        let snap = json::parse(line.trim()).unwrap();
        for job in snap.get("jobs").and_then(Value::as_arr).unwrap_or(&[]) {
            if job
                .get("shards")
                .and_then(Value::as_arr)
                .is_some_and(|rows| !rows.is_empty())
            {
                saw_rows = true;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_rows, "observe never reported per-shard rows");

    submitter.join().unwrap();
    let lines: Vec<String> = line_rx.try_iter().collect();
    let terminal = json::parse(lines.last().unwrap().trim()).unwrap();
    assert_eq!(
        terminal.get("status").and_then(Value::as_str),
        Some("completed"),
        "terminal: {lines:?}"
    );
    // bit-identical to the serial baseline from part 1 (same campaign)
    assert_eq!(
        terminal.get("result_fingerprint").and_then(Value::as_str),
        Some(format!("{:016x}", serial.result_fingerprint).as_str())
    );
    // the stream carried shard records, including a charged respawn
    let shard_events: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"shard\""))
        .collect();
    assert!(!shard_events.is_empty(), "no shard records streamed");
    assert!(
        shard_events
            .iter()
            .any(|l| l.contains("\"kind\":\"crashed\"")),
        "armed failpoint never crashed a worker: {shard_events:?}"
    );
    assert!(
        shard_events.iter().any(|l| l.contains("\"respawns\":1")),
        "no respawn was charged: {shard_events:?}"
    );

    std::env::remove_var("FASTMON_FAILPOINTS");
    std::env::remove_var("FASTMON_SHARD_BACKOFF_MS");
    std::env::remove_var(ENV_WORKER_BIN);
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root2);
}
