//! Protocol framing robustness (satellite: protocol fuzz coverage).
//!
//! Two layers:
//!
//! 1. Pure properties over [`fastmon_daemon::parse_request`]: arbitrary
//!    byte soup, truncations of valid requests, and field-level mutations
//!    must always yield `Ok` or a typed [`ProtoError`] — never a panic.
//! 2. Live-socket checks against a running daemon: garbage, truncated,
//!    oversized and interleaved request lines always get a well-formed
//!    typed error record back, and the daemon keeps serving afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fastmon_daemon::{parse_request, Daemon, DaemonConfig, ProtoError, MAX_LINE_BYTES};
use fastmon_obs::json;
use proptest::prelude::*;

const VALID_REQUESTS: &[&str] = &[
    r#"{"op":"ping"}"#,
    r#"{"op":"status"}"#,
    r#"{"op":"gc","min_age_secs":0}"#,
    r#"{"op":"submit","proto":1,"tenant":"t0","name":"j","circuit":{"kind":"profile","name":"s9234","scale":0.05,"seed":7},"coverage":0.9,"deadline_secs":5,"pattern_budget":8,"max_faults":20,"seed":3,"threads":1}"#,
    r#"{"op":"submit","circuit":{"kind":"library","name":"s27"},"sdf":"(DELAYFILE)"}"#,
];

/// Parsing is total: returns the error kind (or None for Ok) and must
/// never panic.
fn parse_total(line: &str) -> Option<&'static str> {
    match parse_request(line) {
        Ok(_) => None,
        Err(e) => {
            // every error has a stable kind and a non-empty Display
            assert!(!e.kind().is_empty());
            assert!(!e.to_string().is_empty());
            Some(e.kind())
        }
    }
}

proptest! {
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_total(&line);
    }

    #[test]
    fn json_shaped_soup_never_panics(bytes in proptest::collection::vec(0..12u8, 0..120)) {
        // Biased alphabet so the generator actually explores nesting and
        // near-JSON shapes instead of bailing at the first byte.
        let alphabet = [b'{', b'}', b'[', b']', b'"', b':', b',', b'x', b'0', b'.', b'-', b' '];
        let line: String = bytes.iter().map(|b| alphabet[*b as usize] as char).collect();
        let _ = parse_total(&line);
    }

    #[test]
    fn truncations_of_valid_requests_never_panic(case in (0..5usize, 0..400usize)) {
        let (pick, cut) = case;
        let full = VALID_REQUESTS[pick];
        let mut cut = cut.min(full.len());
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &full[..cut];
        if cut < full.len() {
            // a strict prefix of a JSON document is never a valid document
            prop_assert!(parse_total(truncated).is_some(), "accepted {truncated:?}");
        } else {
            prop_assert!(parse_total(truncated).is_none());
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(case in (0..5usize, 0..400usize, 0..256u32)) {
        let (pick, pos, with) = case;
        let with = with as u8;
        let full = VALID_REQUESTS[pick];
        let mut bytes = full.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] = with;
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_total(&line);
    }
}

#[test]
fn oversized_lines_are_a_typed_error() {
    let line = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
    assert!(matches!(
        parse_request(&line),
        Err(ProtoError::LineTooLong { .. })
    ));
}

// ---------------------------------------------------------------------------
// live-socket layer

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> json::Value {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).unwrap() > 0,
            "daemon closed the connection unexpectedly"
        );
        json::parse(line.trim()).expect("daemon must answer well-formed JSON")
    }

    fn event(v: &json::Value) -> &str {
        v.get("event").and_then(|e| e.as_str()).unwrap()
    }
}

fn start_daemon(tag: &str) -> (fastmon_daemon::DaemonHandle, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("fastmond-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = Daemon::start(DaemonConfig::at(&root)).unwrap();
    (handle, root)
}

#[test]
fn garbage_over_the_socket_yields_typed_error_records() {
    let (handle, root) = start_daemon("garbage");
    let mut client = Client::connect(handle.addr());
    let cases: &[(&str, &str)] = &[
        ("", ""), // blank lines are skipped, no response — probe follows
        ("garbage", "json"),
        ("{\"op\":", "json"),
        ("\u{1}\u{2}\u{3}", "json"),
        ("[\"op\",\"ping\"]", "not_an_object"),
        ("{}", "missing_field"),
        ("{\"op\":\"nope\"}", "unknown_op"),
        ("{\"op\":\"submit\"}", "missing_field"),
        (
            "{\"op\":\"submit\",\"proto\":99,\"circuit\":{\"kind\":\"library\",\"name\":\"s27\"}}",
            "unsupported_version",
        ),
        (
            "{\"op\":\"submit\",\"coverage\":7,\"circuit\":{\"kind\":\"library\",\"name\":\"s27\"}}",
            "bad_field",
        ),
        // a deadline Duration cannot represent must be a typed reject,
        // never a worker-thread panic at token construction
        (
            "{\"op\":\"submit\",\"deadline_secs\":1e30,\"circuit\":{\"kind\":\"library\",\"name\":\"s27\"}}",
            "bad_field",
        ),
    ];
    for (line, kind) in cases {
        client.send(line);
        if kind.is_empty() {
            continue;
        }
        let v = client.recv();
        assert_eq!(Client::event(&v), "error", "for line {line:?}");
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some(*kind));
        assert!(v
            .get("message")
            .and_then(|m| m.as_str())
            .is_some_and(|m| !m.is_empty()));
    }
    // the stream stayed line-synchronized through all of it
    client.send(r#"{"op":"ping"}"#);
    assert_eq!(Client::event(&client.recv()), "pong");
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_line_answers_then_closes_but_daemon_survives() {
    let (handle, root) = start_daemon("oversized");
    let mut client = Client::connect(handle.addr());
    let huge = "x".repeat(MAX_LINE_BYTES + 64);
    client.send(&huge);
    let v = client.recv();
    assert_eq!(Client::event(&v), "error");
    assert_eq!(
        v.get("kind").and_then(|k| k.as_str()),
        Some("line_too_long")
    );
    // that connection is done (stream desynchronized by design) ...
    let mut line = String::new();
    assert_eq!(client.reader.read_line(&mut line).unwrap(), 0);
    // ... but the daemon still serves fresh connections
    let mut fresh = Client::connect(handle.addr());
    fresh.send(r#"{"op":"ping"}"#);
    assert_eq!(Client::event(&fresh.recv()), "pong");
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interleaved_requests_on_one_line_buffer_stay_synchronized() {
    let (handle, root) = start_daemon("interleave");
    let mut client = Client::connect(handle.addr());
    // several requests in one write, including garbage in the middle
    client.send(concat!(
        "{\"op\":\"ping\"}\n",
        "garbage\n",
        "{\"op\":\"status\"}\n",
        "[]\n",
        "{\"op\":\"ping\"}"
    ));
    let expected = ["pong", "error", "status", "error", "pong"];
    for want in expected {
        assert_eq!(Client::event(&client.recv()), want);
    }
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_garbage_and_real_work_do_not_interfere() {
    let (handle, root) = start_daemon("concurrent");
    let addr = handle.addr();
    // one client hammers garbage while another does a real submit
    let chaos = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        for i in 0..50 {
            client.send(&format!("{{\"op\":{i}"));
            let v = client.recv();
            assert_eq!(Client::event(&v), "error");
        }
    });
    let mut client = Client::connect(addr);
    client.send(r#"{"op":"submit","name":"real","circuit":{"kind":"library","name":"s27"}}"#);
    assert_eq!(Client::event(&client.recv()), "admitted");
    let terminal = loop {
        let v = client.recv();
        if Client::event(&v) == "terminal" {
            break v;
        }
    };
    assert_eq!(
        terminal.get("status").and_then(|s| s.as_str()),
        Some("completed")
    );
    chaos.join().unwrap();
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}
