use fastmon_timing::Time;

use crate::IntervalSet;

/// The detection ranges of one fault, kept *per observation point*.
///
/// For every observation point (indexed as in
/// [`Circuit::observe_points`](fastmon_netlist::Circuit::observe_points))
/// that the fault reaches with a non-empty difference, the raw
/// detecting-observation-time set of the standard flip-flop is stored
/// **unclipped** — including times below `t_min` that only become reachable
/// after a monitor delay shifts them right (`I_SR = I_FF + d`).
///
/// # Example
///
/// ```
/// use fastmon_faults::{DetectionRange, Interval, IntervalSet};
///
/// let mut dr = DetectionRange::new();
/// dr.push(0, IntervalSet::from_intervals([Interval::new(10.0, 30.0)]));
/// dr.push(2, IntervalSet::from_intervals([Interval::new(5.0, 8.0)]));
/// let ff = dr.ff_union(20.0, 100.0);
/// assert!(ff.contains(25.0));      // inside the FAST window
/// assert!(!ff.contains(6.0));      // below t_min: unobservable at a FF
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectionRange {
    per_output: Vec<(usize, IntervalSet)>,
}

impl DetectionRange {
    /// Creates an empty detection range (an undetected fault).
    #[must_use]
    pub fn new() -> Self {
        DetectionRange::default()
    }

    /// Records the raw difference intervals observed at observation point
    /// `op_index`. Empty sets are ignored; repeated pushes for the same
    /// output are unioned.
    pub fn push(&mut self, op_index: usize, set: IntervalSet) {
        if set.is_empty() {
            return;
        }
        match self.per_output.iter_mut().find(|(i, _)| *i == op_index) {
            Some((_, existing)) => *existing = existing.union(&set),
            None => self.per_output.push((op_index, set)),
        }
    }

    /// Returns `true` if no observation point sees the fault at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_output.is_empty()
    }

    /// Iterates over `(observation point index, raw interval set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &IntervalSet)> {
        self.per_output.iter().map(|(i, s)| (*i, s))
    }

    /// The raw set of one observation point, if present.
    #[must_use]
    pub fn at(&self, op_index: usize) -> Option<&IntervalSet> {
        self.per_output
            .iter()
            .find(|(i, _)| *i == op_index)
            .map(|(_, s)| s)
    }

    /// Union over all outputs of the raw (unclipped) ranges.
    #[must_use]
    pub fn raw_union(&self) -> IntervalSet {
        self.per_output
            .iter()
            .fold(IntervalSet::new(), |acc, (_, s)| acc.union(s))
    }

    /// `I_FF(φ)`: the union over all standard flip-flops / primary outputs,
    /// clipped to the legal FAST window `[t_min, t_nom)`.
    #[must_use]
    pub fn ff_union(&self, t_min: Time, t_nom: Time) -> IntervalSet {
        self.raw_union().clipped(t_min, t_nom)
    }

    /// Merges another detection range into this one (per-output union).
    pub fn merge(&mut self, other: &DetectionRange) {
        for (op, set) in other.iter() {
            self.push(op, set.clone());
        }
    }

    /// Applies pessimistic glitch filtering to every per-output set.
    #[must_use]
    pub fn filter_glitches(&self, threshold: Time) -> DetectionRange {
        DetectionRange {
            per_output: self
                .per_output
                .iter()
                .map(|(i, s)| (*i, s.filter_glitches(threshold)))
                .filter(|(_, s)| !s.is_empty())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    #[test]
    fn push_unions_same_output() {
        let mut dr = DetectionRange::new();
        dr.push(1, IntervalSet::from_intervals([Interval::new(0.0, 1.0)]));
        dr.push(1, IntervalSet::from_intervals([Interval::new(0.5, 2.0)]));
        assert_eq!(dr.iter().count(), 1);
        assert_eq!(dr.at(1).unwrap().total_len(), 2.0);
    }

    #[test]
    fn empty_sets_ignored() {
        let mut dr = DetectionRange::new();
        dr.push(0, IntervalSet::new());
        assert!(dr.is_empty());
    }

    #[test]
    fn ff_union_clips() {
        let mut dr = DetectionRange::new();
        dr.push(0, IntervalSet::from_intervals([Interval::new(1.0, 4.0)]));
        dr.push(3, IntervalSet::from_intervals([Interval::new(8.0, 12.0)]));
        let ff = dr.ff_union(3.0, 10.0);
        assert_eq!(
            ff.as_slice(),
            &[Interval::new(3.0, 4.0), Interval::new(8.0, 10.0)]
        );
    }

    #[test]
    fn merge_combines() {
        let mut a = DetectionRange::new();
        a.push(0, IntervalSet::from_intervals([Interval::new(0.0, 1.0)]));
        let mut b = DetectionRange::new();
        b.push(0, IntervalSet::from_intervals([Interval::new(2.0, 3.0)]));
        b.push(5, IntervalSet::from_intervals([Interval::new(4.0, 5.0)]));
        a.merge(&b);
        assert_eq!(a.iter().count(), 2);
        assert_eq!(a.at(0).unwrap().len(), 2);
    }

    #[test]
    fn glitch_filter_drops_emptied_outputs() {
        let mut dr = DetectionRange::new();
        dr.push(0, IntervalSet::from_intervals([Interval::new(0.0, 0.1)]));
        dr.push(1, IntervalSet::from_intervals([Interval::new(0.0, 5.0)]));
        let f = dr.filter_glitches(1.0);
        assert!(f.at(0).is_none());
        assert!(f.at(1).is_some());
    }
}
