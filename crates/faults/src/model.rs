use std::fmt;

use fastmon_netlist::PinRef;
use fastmon_timing::Time;

/// The transition polarity a small delay fault slows down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Rising (0→1) transitions at the fault site are delayed.
    SlowToRise,
    /// Falling (1→0) transitions at the fault site are delayed.
    SlowToFall,
}

impl Polarity {
    /// Both polarities, in a fixed order.
    pub const BOTH: [Polarity; 2] = [Polarity::SlowToRise, Polarity::SlowToFall];

    /// Whether a transition towards `new_value` is affected by this
    /// polarity.
    #[must_use]
    pub fn affects(self, new_value: bool) -> bool {
        match self {
            Polarity::SlowToRise => new_value,
            Polarity::SlowToFall => !new_value,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::SlowToRise => f.write_str("STR"),
            Polarity::SlowToFall => f.write_str("STF"),
        }
    }
}

/// A small (gate) delay fault `φ = (pin, polarity, δ)`: a lumped increase of
/// the propagation delay of `polarity` transitions through `site` by
/// `delta` picoseconds (Definition in Sec. II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallDelayFault {
    /// The faulted gate pin.
    pub site: PinRef,
    /// Which transition polarity is slowed.
    pub polarity: Polarity,
    /// Fault size δ in picoseconds.
    pub delta: Time,
}

impl SmallDelayFault {
    /// Creates a fault.
    #[must_use]
    pub fn new(site: PinRef, polarity: Polarity, delta: Time) -> Self {
        SmallDelayFault {
            site,
            polarity,
            delta,
        }
    }
}

impl fmt::Display for SmallDelayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} δ={:.2}ps", self.polarity, self.site, self.delta)
    }
}

/// Dense index of a fault inside a [`FaultList`](crate::FaultList).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub u32);

impl FaultId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `FaultId` from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        FaultId(
            u32::try_from(index)
                .unwrap_or_else(|_| panic!("fault index {index} exceeds u32 range")),
        )
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "φ{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::NodeId;

    #[test]
    fn polarity_affects() {
        assert!(Polarity::SlowToRise.affects(true));
        assert!(!Polarity::SlowToRise.affects(false));
        assert!(Polarity::SlowToFall.affects(false));
        assert!(!Polarity::SlowToFall.affects(true));
    }

    #[test]
    fn display_round() {
        let f = SmallDelayFault::new(
            PinRef::Output(NodeId::from_index(3)),
            Polarity::SlowToRise,
            12.5,
        );
        assert_eq!(f.to_string(), "STR@n3/Z δ=12.50ps");
        assert_eq!(FaultId(7).to_string(), "φ7");
    }
}
