//! Small-delay fault modeling for the `fastmon` toolkit.
//!
//! Implements the fault-side vocabulary of the paper:
//!
//! * [`IntervalSet`] — unions of half-open time intervals with the
//!   operations detection ranges need (union, shift, clip, pessimistic
//!   glitch filtering, midpoints),
//! * [`SmallDelayFault`] — a lumped delay increase `δ` of one transition
//!   polarity at one gate pin,
//! * [`FaultList`] — fault population: two faults (slow-to-rise /
//!   slow-to-fall) per input and output pin of every gate, sized `δ = 6σ`,
//! * [`DetectionRange`] — the per-output detecting-observation-time sets of
//!   a fault (Definition 2 of the paper),
//! * [`classify`] — structural fault classification (at-speed detectable /
//!   timing redundant / FAST-relevant).
//!
//! # Example
//!
//! ```
//! use fastmon_faults::{Interval, IntervalSet};
//!
//! let mut set = IntervalSet::new();
//! set.insert(Interval::new(1.0, 2.0));
//! set.insert(Interval::new(1.5, 3.0)); // overlaps, gets merged
//! set.insert(Interval::new(5.0, 5.1));
//! assert_eq!(set.iter().count(), 2);
//! // pessimistic pulse filtering drops the 0.1-wide interval
//! let filtered = set.filter_glitches(0.5);
//! assert_eq!(filtered.iter().count(), 1);
//! assert!(filtered.contains(2.5));
//! ```

// Robustness gate: library code must not `unwrap`/`expect` (tests are
// exempt); structurally-infallible invariants use explicit `unreachable!`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
mod classify;
mod collapse;
mod detect;
mod interval;
mod list;
mod model;

pub use classify::{classify, FaultClass};
pub use collapse::FaultClasses;
pub use detect::DetectionRange;
pub use interval::{Interval, IntervalSet};
pub use list::FaultList;
pub use model::{FaultId, Polarity, SmallDelayFault};
