use std::fmt;

use fastmon_timing::Time;

/// A half-open time interval `[start, end)`.
///
/// Degenerate (`end <= start`) intervals are considered empty and are never
/// stored inside an [`IntervalSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive start time.
    pub start: Time,
    /// Exclusive end time.
    pub end: Time,
}

impl Interval {
    /// Creates an interval.
    #[must_use]
    pub fn new(start: Time, end: Time) -> Self {
        Interval { start, end }
    }

    /// Length of the interval (0 for empty/degenerate intervals).
    #[must_use]
    pub fn len(&self) -> Time {
        (self.end - self.start).max(0.0)
    }

    /// Returns `true` if the interval contains no time points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `t` lies in `[start, end)`.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Midpoint of the interval.
    #[must_use]
    pub fn midpoint(&self) -> Time {
        0.5 * (self.start + self.end)
    }

    /// The interval shifted right by `d` (negative `d` shifts left).
    #[must_use]
    pub fn shifted(&self, d: Time) -> Self {
        Interval::new(self.start + d, self.end + d)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A set of disjoint, sorted, half-open time intervals.
///
/// This is the representation of *detection ranges*: the set of observation
/// times at which a fault changes a captured value. The invariant is that
/// stored intervals are non-empty, sorted by start and non-touching
/// (touching intervals are merged on insert).
///
/// # Example
///
/// ```
/// use fastmon_faults::{Interval, IntervalSet};
///
/// let a = IntervalSet::from_intervals([Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]);
/// let b = IntervalSet::from_intervals([Interval::new(0.5, 2.5)]);
/// let u = a.union(&b);
/// assert_eq!(u.iter().count(), 1);
/// assert_eq!(u.total_len(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a set from arbitrary intervals (merged and sorted).
    #[must_use]
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut set = IntervalSet::new();
        for iv in intervals {
            set.insert(iv);
        }
        set
    }

    /// Inserts an interval, merging with overlapping/touching neighbours.
    /// Empty intervals are ignored.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // position of the first stored interval whose end >= iv.start
        let lo = self.ivs.partition_point(|x| x.end < iv.start);
        // position past the last stored interval whose start <= iv.end
        let hi = self.ivs.partition_point(|x| x.start <= iv.end);
        if lo == hi {
            self.ivs.insert(lo, iv);
        } else {
            let merged = Interval::new(
                iv.start.min(self.ivs[lo].start),
                iv.end.max(self.ivs[hi - 1].end),
            );
            self.ivs.splice(lo..hi, std::iter::once(merged));
        }
    }

    /// Returns `true` if the set contains no intervals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Number of disjoint intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Iterates over the disjoint intervals in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.ivs.iter()
    }

    /// The intervals as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Interval] {
        &self.ivs
    }

    /// Total covered time.
    #[must_use]
    pub fn total_len(&self) -> Time {
        self.ivs.iter().map(Interval::len).sum()
    }

    /// Whether observation time `t` is covered.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        let i = self.ivs.partition_point(|x| x.end <= t);
        i < self.ivs.len() && self.ivs[i].contains(t)
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        // merge the two sorted lists, then coalesce
        let mut all: Vec<Interval> = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() || j < other.ivs.len() {
            let take_self = j >= other.ivs.len()
                || (i < self.ivs.len() && self.ivs[i].start <= other.ivs[j].start);
            if take_self {
                all.push(self.ivs[i]);
                i += 1;
            } else {
                all.push(other.ivs[j]);
                j += 1;
            }
        }
        let mut out: Vec<Interval> = Vec::with_capacity(all.len());
        for iv in all {
            match out.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// The intersection of two sets.
    #[must_use]
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let a = self.ivs[i];
            let b = other.ivs[j];
            let lo = a.start.max(b.start);
            let hi = a.end.min(b.end);
            if lo < hi {
                out.push(Interval::new(lo, hi));
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// The set shifted right by `d` time units (the detection-range algebra
    /// of monitor delay elements: `I_SR = I_FF + d`).
    #[must_use]
    pub fn shifted(&self, d: Time) -> IntervalSet {
        IntervalSet {
            ivs: self.ivs.iter().map(|iv| iv.shifted(d)).collect(),
        }
    }

    /// The set clipped to the window `[lo, hi)`.
    #[must_use]
    pub fn clipped(&self, lo: Time, hi: Time) -> IntervalSet {
        let ivs = self
            .ivs
            .iter()
            .filter_map(|iv| {
                let s = iv.start.max(lo);
                let e = iv.end.min(hi);
                (s < e).then(|| Interval::new(s, e))
            })
            .collect();
        IntervalSet { ivs }
    }

    /// Pessimistic pulse filtering of detection ranges (Fig. 1 of the
    /// paper): every interval shorter than `threshold` is assumed to be a
    /// glitch that CMOS pulse filtering may swallow, and is removed. The
    /// remaining intervals stay disjoint — gaps are *not* bridged, which is
    /// the pessimistic choice (a glitch that masks a fault keeps the
    /// adjacent intervals separate).
    #[must_use]
    pub fn filter_glitches(&self, threshold: Time) -> IntervalSet {
        IntervalSet {
            ivs: self
                .ivs
                .iter()
                .copied()
                .filter(|iv| iv.len() >= threshold)
                .collect(),
        }
    }

    /// All interval boundary times in ascending order (used by the
    /// observation-time discretization of Sec. IV-A).
    #[must_use]
    pub fn boundaries(&self) -> Vec<Time> {
        let mut out = Vec::with_capacity(2 * self.ivs.len());
        for iv in &self.ivs {
            out.push(iv.start);
            out.push(iv.end);
        }
        out
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_merges_overlaps() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0.0, 1.0));
        s.insert(Interval::new(2.0, 3.0));
        s.insert(Interval::new(0.5, 2.5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_slice()[0], Interval::new(0.0, 3.0));
    }

    #[test]
    fn insert_merges_touching() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0.0, 1.0));
        s.insert(Interval::new(1.0, 2.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_len(), 2.0);
    }

    #[test]
    fn empty_intervals_ignored() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(1.0, 1.0));
        s.insert(Interval::new(2.0, 1.0));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_respects_half_openness() {
        let s = IntervalSet::from_intervals([Interval::new(1.0, 2.0)]);
        assert!(!s.contains(0.999));
        assert!(s.contains(1.0));
        assert!(s.contains(1.999));
        assert!(!s.contains(2.0));
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalSet::from_intervals([Interval::new(0.0, 2.0), Interval::new(4.0, 6.0)]);
        let b = IntervalSet::from_intervals([Interval::new(1.0, 5.0)]);
        let u = a.union(&b);
        assert_eq!(u.as_slice(), &[Interval::new(0.0, 6.0)]);
        let i = a.intersection(&b);
        assert_eq!(
            i.as_slice(),
            &[Interval::new(1.0, 2.0), Interval::new(4.0, 5.0)]
        );
    }

    #[test]
    fn shift_and_clip() {
        let s = IntervalSet::from_intervals([Interval::new(1.0, 3.0)]);
        let shifted = s.shifted(2.0);
        assert_eq!(shifted.as_slice(), &[Interval::new(3.0, 5.0)]);
        let clipped = shifted.clipped(4.0, 10.0);
        assert_eq!(clipped.as_slice(), &[Interval::new(4.0, 5.0)]);
        assert!(shifted.clipped(6.0, 10.0).is_empty());
    }

    #[test]
    fn glitch_filter_is_pessimistic() {
        // Fig. 1: a short interval between two long ones is dropped and the
        // neighbours stay disjoint.
        let s = IntervalSet::from_intervals([
            Interval::new(0.0, 1.0),
            Interval::new(1.2, 1.3),
            Interval::new(2.0, 3.0),
        ]);
        let f = s.filter_glitches(0.5);
        assert_eq!(
            f.as_slice(),
            &[Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]
        );
    }

    #[test]
    fn boundaries_sorted() {
        let s = IntervalSet::from_intervals([Interval::new(4.0, 6.0), Interval::new(0.0, 2.0)]);
        assert_eq!(s.boundaries(), vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn display_formats() {
        let s = IntervalSet::from_intervals([Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]);
        assert_eq!(s.to_string(), "{[0, 1) ∪ [2, 3)}");
        assert_eq!(IntervalSet::new().to_string(), "{}");
    }

    fn arb_set() -> impl Strategy<Value = IntervalSet> {
        proptest::collection::vec((0.0..100.0f64, 0.01..10.0f64), 0..12).prop_map(|pairs| {
            IntervalSet::from_intervals(pairs.into_iter().map(|(s, l)| Interval::new(s, s + l)))
        })
    }

    proptest! {
        #[test]
        fn invariant_sorted_disjoint(s in arb_set()) {
            for w in s.as_slice().windows(2) {
                prop_assert!(w[0].end < w[1].start, "{} then {}", w[0], w[1]);
            }
            for iv in s.iter() {
                prop_assert!(!iv.is_empty());
            }
        }

        #[test]
        fn union_commutative(a in arb_set(), b in arb_set()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn union_contains_both(a in arb_set(), b in arb_set(), t in 0.0..120.0f64) {
            let u = a.union(&b);
            prop_assert_eq!(u.contains(t), a.contains(t) || b.contains(t));
        }

        #[test]
        fn intersection_agrees_with_membership(a in arb_set(), b in arb_set(), t in 0.0..120.0f64) {
            let i = a.intersection(&b);
            prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
        }

        #[test]
        fn shift_preserves_length(s in arb_set(), d in -50.0..50.0f64) {
            prop_assert!((s.shifted(d).total_len() - s.total_len()).abs() < 1e-9);
        }

        #[test]
        fn shift_round_trip(s in arb_set(), d in -50.0..50.0f64) {
            let back = s.shifted(d).shifted(-d);
            prop_assert_eq!(back.len(), s.len());
            for (x, y) in back.iter().zip(s.iter()) {
                prop_assert!((x.start - y.start).abs() < 1e-9);
                prop_assert!((x.end - y.end).abs() < 1e-9);
            }
        }

        #[test]
        fn clip_bounds_membership(s in arb_set(), t in 0.0..120.0f64) {
            let c = s.clipped(20.0, 80.0);
            prop_assert_eq!(c.contains(t), s.contains(t) && (20.0..80.0).contains(&t));
        }

        #[test]
        fn glitch_filter_only_removes(s in arb_set(), w in 0.0..5.0f64) {
            let f = s.filter_glitches(w);
            prop_assert!(f.total_len() <= s.total_len() + 1e-12);
            for iv in f.iter() {
                prop_assert!(iv.len() >= w);
            }
        }

        #[test]
        fn union_idempotent(a in arb_set()) {
            prop_assert_eq!(a.union(&a), a);
        }

        #[test]
        fn insert_order_irrelevant(pairs in proptest::collection::vec((0.0..100.0f64, 0.01..10.0f64), 0..10)) {
            let ivs: Vec<Interval> = pairs.iter().map(|&(s, l)| Interval::new(s, s + l)).collect();
            let fwd = IntervalSet::from_intervals(ivs.clone());
            let rev = IntervalSet::from_intervals(ivs.into_iter().rev());
            prop_assert_eq!(fwd, rev);
        }
    }
}
