use fastmon_netlist::Circuit;
use fastmon_timing::{ClockSpec, Sta, Time};

use crate::SmallDelayFault;

/// Structural classification of a small delay fault (step ① of the paper's
/// test flow, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The fault's minimum slack is smaller than its size: a plain at-speed
    /// test already fails, so the fault is removed from the FAST fault
    /// list.
    AtSpeedDetectable,
    /// Even the longest path through the site, extended by δ and by the
    /// largest available monitor delay, arrives before the earliest legal
    /// capture time `t_min` — or the site reaches no observation point at
    /// all. No FAST frequency can detect it.
    TimingRedundant,
    /// A genuine hidden-delay-fault candidate: FAST (possibly with monitor
    /// support) may detect it.
    FastTestable,
}

/// Structurally classifies `fault` using static timing analysis.
///
/// * `max_monitor_shift` is the largest monitor delay available at an
///   observation point reachable from the fault site (0 when classifying
///   for conventional FAST without monitors). It extends the observable
///   window downwards: effects arriving in `(t_min − d, t_min)` become
///   observable after shifting.
///
/// The classification is *optimistic* about detectability (pattern support
/// is not considered); exact detection is established later by timing-
/// accurate fault simulation. It is used to prune the fault list before the
/// expensive simulation, exactly as in the paper.
///
/// # Example
///
/// ```
/// use fastmon_faults::{classify, FaultClass, FaultList};
/// use fastmon_netlist::library;
/// use fastmon_timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};
///
/// let circuit = library::s27();
/// let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
/// let sta = Sta::analyze(&circuit, &annot);
/// let clock = ClockSpec::from_sta(&sta, 3.0);
/// let faults = FaultList::six_sigma(&circuit, &annot);
/// for (_, fault) in faults.iter() {
///     let class = classify(&circuit, &sta, &clock, fault, 0.0);
///     assert!(matches!(
///         class,
///         FaultClass::AtSpeedDetectable | FaultClass::TimingRedundant | FaultClass::FastTestable
///     ));
/// }
/// ```
#[must_use]
pub fn classify(
    circuit: &Circuit,
    sta: &Sta,
    clock: &ClockSpec,
    fault: &SmallDelayFault,
    max_monitor_shift: Time,
) -> FaultClass {
    let gate = fault.site.node();
    debug_assert!(gate.index() < circuit.len());
    let Some(latest) = sta.max_arrival_through(gate) else {
        return FaultClass::TimingRedundant;
    };
    // Longest path through the site plus the fault delay: if it exceeds the
    // nominal period, a transition test at speed already fails.
    if latest + fault.delta > clock.t_nom {
        return FaultClass::AtSpeedDetectable;
    }
    // The latest fault effect (difference between faulty and fault-free
    // waveforms) dies out at `latest + delta`; a monitor delay `d` moves the
    // corresponding detection range right by `d`.
    if latest + fault.delta + max_monitor_shift <= clock.t_min {
        return FaultClass::TimingRedundant;
    }
    FaultClass::FastTestable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultList, Polarity, SmallDelayFault};
    use fastmon_netlist::{CircuitBuilder, GateKind, PinRef};
    use fastmon_timing::{DelayAnnotation, DelayModel};

    /// chain: a -> n1 -> n2 -> ... -> n5 (PO), unit delays; plus a short
    /// branch n1 -> q (DFF).
    fn chain() -> (Circuit, Sta, ClockSpec) {
        let mut b = CircuitBuilder::new("chain");
        b.add("a", GateKind::Input, &[]);
        for i in 1..=5 {
            let prev = if i == 1 {
                "a".to_owned()
            } else {
                format!("n{}", i - 1)
            };
            b.add(format!("n{i}"), GateKind::Buf, &[prev.as_str()]);
        }
        b.add("q", GateKind::Dff, &["n1"]);
        b.mark_output("n5");
        let c = b.finish().unwrap();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::unit());
        let sta = Sta::analyze(&c, &annot);
        // critical path = 5, t_nom = 5 (no margin for round numbers),
        // t_min = 5/3
        let clock = ClockSpec::new(5.0, 3.0);
        (c, sta, clock)
    }

    #[test]
    fn deep_gate_is_at_speed_detectable() {
        let (c, sta, clock) = chain();
        let n5 = c.find("n5").unwrap();
        // slack through n5 is 0 — any positive delta trips the nominal clock
        let f = SmallDelayFault::new(PinRef::Output(n5), Polarity::SlowToRise, 0.5);
        assert_eq!(
            classify(&c, &sta, &clock, &f, 0.0),
            FaultClass::AtSpeedDetectable
        );
    }

    #[test]
    fn short_path_fault_redundant_without_monitors() {
        let (c, sta, clock) = chain();
        let n1 = c.find("n1").unwrap();
        // restrict to the short branch: fault on the input pin of the gate
        // whose only path is n1 -> q (the DFF). Actually n1 also reaches n5,
        // so use a small delta on a *dedicated* short gate: add fault at q's
        // driver via input pin of the DFF is not modeled; instead check the
        // boundary arithmetic with a tiny delta on n1 where the long path
        // keeps it testable.
        let f = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToRise, 0.4);
        // longest through n1 = 5, 5 + 0.4 <= 5? no -> at-speed? 5.4 > 5 yes
        assert_eq!(
            classify(&c, &sta, &clock, &f, 0.0),
            FaultClass::AtSpeedDetectable
        );
    }

    #[test]
    fn truly_short_path_redundant_then_rescued_by_monitor() {
        // a -> s1 (DFF d pin): single gate, path length 1, t_min = 5/3
        let mut b = CircuitBuilder::new("short");
        b.add("a", GateKind::Input, &[]);
        b.add("s1", GateKind::Buf, &["a"]);
        b.add("q", GateKind::Dff, &["s1"]);
        // long dummy path to set the clock
        b.add("l1", GateKind::Buf, &["a"]);
        b.add("l2", GateKind::Buf, &["l1"]);
        b.add("l3", GateKind::Buf, &["l2"]);
        b.add("l4", GateKind::Buf, &["l3"]);
        b.add("l5", GateKind::Buf, &["l4"]);
        b.mark_output("l5");
        let c = b.finish().unwrap();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::unit());
        let sta = Sta::analyze(&c, &annot);
        let clock = ClockSpec::new(5.0, 3.0); // t_min = 1.667
        let s1 = c.find("s1").unwrap();
        let f = SmallDelayFault::new(PinRef::Output(s1), Polarity::SlowToFall, 0.5);
        // effect dies at 1 + 0.5 = 1.5 < t_min -> redundant without monitors
        assert_eq!(
            classify(&c, &sta, &clock, &f, 0.0),
            FaultClass::TimingRedundant
        );
        // a monitor delay of t_nom/3 rescues it: 1.5 + 1.667 > 1.667
        assert_eq!(
            classify(&c, &sta, &clock, &f, clock.t_nom / 3.0),
            FaultClass::FastTestable
        );
    }

    #[test]
    fn all_s27_faults_get_a_class() {
        let c = fastmon_netlist::library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let sta = Sta::analyze(&c, &annot);
        let clock = ClockSpec::from_sta(&sta, 3.0);
        let faults = FaultList::six_sigma(&c, &annot);
        let mut counts = [0usize; 3];
        for (_, f) in faults.iter() {
            match classify(&c, &sta, &clock, f, 0.0) {
                FaultClass::AtSpeedDetectable => counts[0] += 1,
                FaultClass::TimingRedundant => counts[1] += 1,
                FaultClass::FastTestable => counts[2] += 1,
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), faults.len());
        // with δ = 6σ = 1.2 × nominal and a 5 % margin, most faults should
        // be FAST-testable in this small circuit
        assert!(counts[2] > 0);
    }
}
