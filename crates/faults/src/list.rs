use fastmon_netlist::{Circuit, PinRef};
use fastmon_timing::DelayAnnotation;

use crate::{FaultId, Polarity, SmallDelayFault};

/// The fault population of a circuit.
///
/// Following the paper's evaluation setup, small delay faults are modeled
/// "at all input and output pins of gates in the circuit", with "two
/// individual small delay faults at each location to distinguish
/// slow-to-rise and slow-to-fall effects", sized `δ = 6σ` where σ is the
/// process-variation standard deviation of the gate.
///
/// # Example
///
/// ```
/// use fastmon_faults::FaultList;
/// use fastmon_netlist::library;
/// use fastmon_timing::{DelayAnnotation, DelayModel};
///
/// let circuit = library::c17();
/// let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
/// let faults = FaultList::six_sigma(&circuit, &annot);
/// // 6 NAND gates × (1 output + 2 input pins) × 2 polarities
/// assert_eq!(faults.len(), 36);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultList {
    faults: Vec<SmallDelayFault>,
}

impl FaultList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        FaultList::default()
    }

    /// Builds the full `δ = 6σ` fault population of `circuit`: two faults
    /// per input and output pin of every combinational gate.
    #[must_use]
    pub fn six_sigma(circuit: &Circuit, annot: &DelayAnnotation) -> Self {
        Self::sized(circuit, |id| 6.0 * annot.sigma(id))
    }

    /// Builds the fault population with a custom per-gate fault size.
    ///
    /// `delta_of` receives the gate the pin belongs to and returns δ for
    /// faults on that gate's pins. Gates for which it returns a
    /// non-positive δ are skipped.
    #[must_use]
    pub fn sized<F: Fn(fastmon_netlist::NodeId) -> f64>(circuit: &Circuit, delta_of: F) -> Self {
        let mut faults = Vec::new();
        for id in circuit.combinational_nodes() {
            let delta = delta_of(id);
            if delta <= 0.0 {
                continue;
            }
            for polarity in Polarity::BOTH {
                faults.push(SmallDelayFault::new(PinRef::Output(id), polarity, delta));
            }
            for (k, _) in circuit.node(id).fanins().iter().enumerate() {
                let pin = PinRef::Input(
                    id,
                    u8::try_from(k).unwrap_or_else(|_| unreachable!("pin index fits u8")),
                );
                for polarity in Polarity::BOTH {
                    faults.push(SmallDelayFault::new(pin, polarity, delta));
                }
            }
        }
        FaultList { faults }
    }

    /// Builds a list from explicit faults.
    #[must_use]
    pub fn from_faults(faults: Vec<SmallDelayFault>) -> Self {
        FaultList { faults }
    }

    /// Concatenates several lists in order (shard merge).
    #[must_use]
    pub fn concat<I: IntoIterator<Item = FaultList>>(lists: I) -> Self {
        let mut faults = Vec::new();
        for list in lists {
            faults.extend(list.faults);
        }
        FaultList { faults }
    }

    /// The contiguous sub-list `range` (shard extraction).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> FaultList {
        FaultList {
            faults: self.faults[range].to_vec(),
        }
    }

    /// Number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the list holds no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn fault(&self, id: FaultId) -> &SmallDelayFault {
        &self.faults[id.index()]
    }

    /// Iterates over `(FaultId, &SmallDelayFault)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FaultId, &SmallDelayFault)> {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, f)| (FaultId::from_index(i), f))
    }

    /// All fault ids.
    pub fn ids(&self) -> impl Iterator<Item = FaultId> + '_ {
        (0..self.faults.len()).map(FaultId::from_index)
    }

    /// Retains only the faults whose id satisfies `keep`, returning the
    /// sub-list and the mapping from new to old ids.
    #[must_use]
    pub fn filtered<F: Fn(FaultId) -> bool>(&self, keep: F) -> (FaultList, Vec<FaultId>) {
        let mut faults = Vec::new();
        let mut mapping = Vec::new();
        for (id, f) in self.iter() {
            if keep(id) {
                faults.push(*f);
                mapping.push(id);
            }
        }
        (FaultList { faults }, mapping)
    }
}

impl FromIterator<SmallDelayFault> for FaultList {
    fn from_iter<T: IntoIterator<Item = SmallDelayFault>>(iter: T) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;
    use fastmon_timing::{DelayAnnotation, DelayModel};

    #[test]
    fn s27_population_size() {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let faults = FaultList::six_sigma(&c, &annot);
        // pins: per gate 1 output + arity inputs; s27 has 2 NOT (1 fanin),
        // 1 AND, 2 OR, 1 NAND, 4 NOR (2 fanins each) = 10 gates
        // pins = 10 outputs + 2*1 + 8*2 = 28; ×2 polarities = 56
        assert_eq!(faults.len(), 56);
    }

    #[test]
    fn sizes_are_six_sigma() {
        let c = library::c17();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let faults = FaultList::six_sigma(&c, &annot);
        for (_, f) in faults.iter() {
            let gate = f.site.node();
            assert!((f.delta - 6.0 * annot.sigma(gate)).abs() < 1e-12);
            assert!(f.delta > 0.0);
        }
    }

    #[test]
    fn polarities_paired() {
        let c = library::c17();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let faults = FaultList::six_sigma(&c, &annot);
        let str_count = faults
            .iter()
            .filter(|(_, f)| f.polarity == Polarity::SlowToRise)
            .count();
        assert_eq!(str_count * 2, faults.len());
    }

    #[test]
    fn filtered_keeps_mapping() {
        let c = library::c17();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let faults = FaultList::six_sigma(&c, &annot);
        let (sub, mapping) = faults.filtered(|id| id.index() % 3 == 0);
        assert_eq!(sub.len(), mapping.len());
        for (new_id, old_id) in mapping.iter().enumerate() {
            assert_eq!(
                sub.fault(FaultId::from_index(new_id)),
                faults.fault(*old_id)
            );
        }
    }

    #[test]
    fn zero_delta_gates_skipped() {
        let c = library::c17();
        let faults = FaultList::sized(&c, |_| 0.0);
        assert!(faults.is_empty());
    }
}
