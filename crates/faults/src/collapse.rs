use fastmon_netlist::{Circuit, PinRef};

use crate::{FaultId, FaultList};

/// Structural equivalence classes over a [`FaultList`]: faults whose
/// campaign results are provably bit-identical, so only one representative
/// per class needs to be simulated and the result can be fanned back to
/// every member.
///
/// The (exact, conservative) rule collapses an input-pin fault
/// `(Input(n, k), pol, δ)` into the output-pin fault `(Output(m), pol, δ)`
/// of its driver `m = fanins(n)[k]` iff
///
/// * `m` has exactly one fanout entry — the signal feeds only pin `k` of
///   `n`, so delaying `m`'s output is indistinguishable from delaying the
///   pin,
/// * `m` drives no observation point — otherwise the output fault is
///   directly observable at `m` while the pin fault is not,
/// * polarity and δ match bit-for-bit (δ derives from each fault's own
///   gate, so this only fires between gates with identical delay
///   parameters).
///
/// Under these conditions the simulator computes the same faulty waveform
/// for `n` in both cases (`base.wave(m).delayed_polarity(δ, pol)` feeding
/// `n`'s evaluation), the reachable observation points coincide, and diffs
/// are emitted in ascending observation-point order by both cone walks —
/// hence per-pattern detection ranges, unions, verdicts and fingerprints
/// are identical, not merely equivalent.
///
/// Classes therefore have at most two members (the output fault and the
/// single downstream pin fault); chains never form because output faults
/// are only ever representatives.
///
/// # Example
///
/// ```
/// use fastmon_faults::{FaultClasses, FaultList};
/// use fastmon_netlist::library;
/// use fastmon_timing::{DelayAnnotation, DelayModel};
///
/// let circuit = library::c17();
/// let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
/// let faults = FaultList::six_sigma(&circuit, &annot);
/// let classes = FaultClasses::build(&circuit, &faults);
/// assert_eq!(classes.num_faults(), faults.len());
/// assert!(classes.num_classes() <= faults.len());
/// ```
#[derive(Debug, Clone)]
pub struct FaultClasses {
    /// Per fault: the fault index of its class representative (itself for
    /// singletons and representatives).
    rep_of: Vec<u32>,
    /// Flat member arena, grouped by class, ascending fault index within a
    /// class.
    members: Vec<u32>,
    /// Per fault: `members[member_offsets[i]..member_offsets[i + 1]]` is
    /// the member list when fault `i` is a representative (empty slice
    /// otherwise).
    member_offsets: Vec<u32>,
    num_classes: usize,
}

impl FaultClasses {
    /// Computes the equivalence classes of `faults` on `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a node outside the circuit.
    #[must_use]
    pub fn build(circuit: &Circuit, faults: &FaultList) -> Self {
        let n = faults.len();
        let mut op_driver = vec![false; circuit.len()];
        for op in circuit.observe_points() {
            op_driver[op.driver.index()] = true;
        }
        // index of the Output(m) fault per (node, polarity), if any
        let mut output_fault = vec![[u32::MAX; 2]; circuit.len()];
        for (fid, fault) in faults.iter() {
            if let PinRef::Output(m) = fault.site {
                let pol = usize::from(fault.polarity == crate::Polarity::SlowToFall);
                output_fault[m.index()][pol] = fid.0;
            }
        }

        let mut rep_of: Vec<u32> = (0..n)
            .map(|i| u32::try_from(i).unwrap_or_else(|_| unreachable!("fault count fits u32")))
            .collect();
        for (fid, fault) in faults.iter() {
            let PinRef::Input(gate, k) = fault.site else {
                continue;
            };
            let driver = circuit.fanins(gate)[usize::from(k)];
            if circuit.fanouts(driver).len() != 1 || op_driver[driver.index()] {
                continue;
            }
            let pol = usize::from(fault.polarity == crate::Polarity::SlowToFall);
            let rep = output_fault[driver.index()][pol];
            if rep == u32::MAX {
                continue;
            }
            let rep_fault = faults.fault(FaultId(rep));
            if rep_fault.delta.to_bits() == fault.delta.to_bits() {
                rep_of[fid.index()] = rep;
            }
        }

        // CSR member lists keyed by representative fault index
        let mut counts = vec![0u32; n + 1];
        for &r in &rep_of {
            counts[r as usize + 1] += 1;
        }
        let mut member_offsets = counts;
        for i in 1..member_offsets.len() {
            member_offsets[i] += member_offsets[i - 1];
        }
        let mut members = vec![0u32; n];
        let mut cursor = member_offsets.clone();
        for (i, &r) in rep_of.iter().enumerate() {
            let c = &mut cursor[r as usize];
            members[*c as usize] =
                u32::try_from(i).unwrap_or_else(|_| unreachable!("fault count fits u32"));
            *c += 1;
        }
        let num_classes = rep_of
            .iter()
            .enumerate()
            .filter(|&(i, &r)| r as usize == i)
            .count();

        FaultClasses {
            rep_of,
            members,
            member_offsets,
            num_classes,
        }
    }

    /// Number of faults in the underlying list.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.rep_of.len()
    }

    /// Number of equivalence classes (= faults that must actually be
    /// simulated).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of faults whose simulation is skipped by collapsing.
    #[must_use]
    pub fn collapsed_away(&self) -> usize {
        self.num_faults() - self.num_classes
    }

    /// The representative fault index of fault `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn representative(&self, i: usize) -> usize {
        self.rep_of[i] as usize
    }

    /// Whether fault `i` is its class representative (and therefore gets
    /// simulated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_representative(&self, i: usize) -> bool {
        self.rep_of[i] as usize == i
    }

    /// The member fault indices of the class represented by fault `i`
    /// (ascending, including `i` itself). Empty when `i` is not a
    /// representative.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn members_of(&self, i: usize) -> &[u32] {
        &self.members[self.member_offsets[i] as usize..self.member_offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::{library, CircuitBuilder, GateKind};
    use fastmon_timing::{DelayAnnotation, DelayModel};

    fn classes_of(circuit: &Circuit) -> (FaultList, FaultClasses) {
        let annot = DelayAnnotation::nominal(circuit, &DelayModel::nangate45_like());
        let faults = FaultList::six_sigma(circuit, &annot);
        let classes = FaultClasses::build(circuit, &faults);
        (faults, classes)
    }

    #[test]
    fn classes_partition_the_fault_list() {
        for circuit in [library::c17(), library::s27()] {
            let (faults, classes) = classes_of(&circuit);
            assert_eq!(classes.num_faults(), faults.len());
            let mut seen = vec![false; faults.len()];
            let mut total = 0;
            for i in 0..faults.len() {
                let members = classes.members_of(i);
                if classes.is_representative(i) {
                    assert!(members.contains(&(i as u32)));
                    for &m in members {
                        assert_eq!(classes.representative(m as usize), i);
                        assert!(!seen[m as usize], "fault {m} in two classes");
                        seen[m as usize] = true;
                    }
                    total += members.len();
                } else {
                    assert!(members.is_empty());
                }
            }
            assert_eq!(total, faults.len());
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn members_satisfy_the_structural_conditions() {
        for circuit in [library::c17(), library::s27()] {
            let (faults, classes) = classes_of(&circuit);
            let mut op_driver = vec![false; circuit.len()];
            for op in circuit.observe_points() {
                op_driver[op.driver.index()] = true;
            }
            for (fid, fault) in faults.iter() {
                let rep = classes.representative(fid.index());
                if rep == fid.index() {
                    continue;
                }
                let rep_fault = faults.fault(FaultId::from_index(rep));
                let PinRef::Input(gate, k) = fault.site else {
                    panic!("only input-pin faults collapse");
                };
                let PinRef::Output(driver) = rep_fault.site else {
                    panic!("representatives of non-singleton classes are output faults");
                };
                assert_eq!(circuit.fanins(gate)[usize::from(k)], driver);
                assert_eq!(circuit.fanouts(driver).len(), 1);
                assert!(!op_driver[driver.index()]);
                assert_eq!(rep_fault.polarity, fault.polarity);
                assert_eq!(rep_fault.delta.to_bits(), fault.delta.to_bits());
            }
        }
    }

    #[test]
    fn buffer_chain_collapses_pin_faults() {
        // a -> b1 -> b2 -> out: each buffer's input pin fault collapses
        // into its single-fanout driver's output fault (b2's input onto
        // b1's output), but b2's output drives the PO and stays separate.
        let mut b = CircuitBuilder::new("chain");
        b.add("a", GateKind::Input, &[]);
        b.add("b1", GateKind::Buf, &["a"]);
        b.add("b2", GateKind::Buf, &["b1"]);
        b.mark_output("b2");
        let circuit = b.finish().unwrap();
        let (faults, classes) = classes_of(&circuit);
        // b1, b2: (1 output + 1 input pin) × 2 polarities each = 8 faults
        assert_eq!(faults.len(), 8);
        // collapsed: Input(b2, 0) ≡ Output(b1) per polarity. Input(b1, 0)
        // stays (its driver is a PI with no output fault); Output(b2)
        // stays (drives the observation point).
        assert_eq!(classes.collapsed_away(), 2);
        assert_eq!(classes.num_classes(), 6);
    }

    #[test]
    fn fanout_stems_do_not_collapse() {
        // a -> s, s feeds both n1 and n2: the stem has two fanout entries,
        // so neither branch pin fault may collapse into Output(s).
        let mut b = CircuitBuilder::new("stem");
        b.add("a", GateKind::Input, &[]);
        b.add("s", GateKind::Buf, &["a"]);
        b.add("n1", GateKind::Not, &["s"]);
        b.add("n2", GateKind::Not, &["s"]);
        b.mark_output("n1");
        b.mark_output("n2");
        let circuit = b.finish().unwrap();
        let (_, classes) = classes_of(&circuit);
        assert_eq!(classes.collapsed_away(), 0);
    }
}
