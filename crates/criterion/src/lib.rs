//! Offline in-tree shim for the subset of the `criterion` 0.5 API the
//! fastmon benches use: [`Criterion`], [`Bencher`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: after a warm-up phase, each benchmark runs
//! `sample_size` samples. Every sample times a batch of iterations sized so
//! one sample takes roughly `measurement_time / sample_size`, and the
//! per-iteration mean of each sample is recorded. The report prints the
//! minimum, median and maximum of those per-sample means — the same triple
//! criterion prints — without outlier analysis or HTML reports.
//!
//! Results also land in `target/fastmon-bench.jsonl` (one JSON object per
//! benchmark) so scripts can diff runs.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export for bench code written against `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on: the
/// shim always times the routine per batch and subtracts nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// The per-benchmark timing driver passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher<'c> {
    config: &'c Config,
    /// `(per-iteration seconds)` of each sample.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // calibrate: how many iterations fit one sample slot
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().as_secs_f64().max(1e-9);
        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let iters = ((per_sample / once).ceil() as u64).clamp(1, 1_000_000_000);

        // warm-up
        let warm = Instant::now();
        while warm.elapsed() < self.config.warm_up_time {
            black_box(routine());
        }

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            #[allow(clippy::cast_precision_loss)]
            let per_iter = t.elapsed().as_secs_f64() / iters as f64;
            self.samples.push(per_iter);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // warm-up
        let warm = Instant::now();
        while warm.elapsed() < self.config.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its `[min median max]` report.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{:<40} (no samples)", id.as_ref());
            return self;
        }
        samples.sort_by(f64::total_cmp);
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} time: [{} {} {}]",
            id.as_ref(),
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
        append_jsonl(id.as_ref(), min, median, max);
        self
    }
}

/// Formats seconds with criterion-style units.
fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Appends a machine-readable record to `target/fastmon-bench.jsonl`; IO
/// errors are ignored (benches must not fail on read-only checkouts).
fn append_jsonl(id: &str, min: f64, median: f64, max: f64) {
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/fastmon-bench.jsonl")
    else {
        return;
    };
    let _ = writeln!(
        f,
        "{{\"bench\":\"{}\",\"min_s\":{min:e},\"median_s\":{median:e},\"max_s\":{max:e}}}",
        id.replace('"', "'")
    );
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_report() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(2e-9).contains("ns"));
        assert!(fmt_duration(2e-6).contains("µs"));
        assert!(fmt_duration(2e-3).contains("ms"));
        assert!(fmt_duration(2.0).ends_with(" s"));
    }
}
