//! Word-parallel fault screening for the fault-simulation campaign.
//!
//! The campaign's inner loop re-simulates one fault cone per
//! (fault, pattern) pair. Most of those walks end without a detection:
//! the fault is not activated by the pattern, is blocked at a side input
//! held at a controlling value, or converges back to the fault-free
//! waveform before reaching an observation point. This module extends the
//! bit-parallel idea of the ATPG grader (`WordSim::detect_word_cached`)
//! to the timing-accurate campaign: faults are packed 64 to a word and a
//! single levelized traversal of the group's *union cone* computes, per
//! fault, a conservative "the fault effect may still reach an observation
//! point" mask against the shared fault-free waveforms. Only surviving
//! faults pay for an exact per-fault cone walk, so the screened result is
//! bit-identical to the unscreened campaign.
//!
//! # Soundness
//!
//! Bit `k` of the mask at node `n` means "fault `k` may make the waveform
//! of `n` differ from its fault-free waveform". The screen only ever
//! *clears* a bit when the faulty waveform is provably identical:
//!
//! * **Activation**: the fault delays transitions of one polarity on its
//!   site signal. If the fault-free site waveform carries no transition of
//!   that polarity, the delayed waveform is unchanged (the same pre-check
//!   the exact walk performs).
//! * **Blocking**: for a gate with a controlling value `c` (AND/NAND = 0,
//!   OR/NOR = 1), a side input whose fault-free waveform is *constant* at
//!   `c` — and which the fault provably cannot reach — forces the output
//!   to a constant in both the fault-free and the faulty circuit, at every
//!   instant. XOR-class and single-input gates never block.
//! * **Observability**: a fault whose mask reaches no observation-point
//!   driver cannot produce a difference interval.
//!
//! Each rule is timing-independent (it reasons about constant waveforms
//! and per-polarity transitions only), so a cleared bit implies the exact
//! timing walk would have produced an empty detection range.

use fastmon_faults::{FaultList, Polarity};
use fastmon_netlist::{Circuit, NodeId, PinRef};
use fastmon_obs::SimMetrics;

use crate::engine::{ConePlan, SimResult};
use crate::stats;
use crate::Waveform;

/// Whether the waveform carries a transition the polarity affects.
///
/// This is the campaign's activation pre-check: a slow-to-rise fault can
/// only delay rising transitions, so a site waveform without one is
/// untouched by the fault.
#[must_use]
pub fn has_polarity_transition(wave: &Waveform, polarity: Polarity) -> bool {
    let mut value = wave.initial();
    for _ in wave.transitions() {
        value = !value;
        if polarity.affects(value) {
            return true;
        }
    }
    false
}

/// In-union fanin references carry this tag; the low bits are the slot.
const LOCAL: u32 = 1 << 31;
/// Marker for faults whose seed gate reaches no observation point.
const NO_SLOT: u32 = u32::MAX;
/// "No controlling value" marker in the per-node table.
const CTRL_NONE: u8 = 2;

/// One fault of a screen group: everything the per-pattern activation
/// check needs, resolved at build time so screening never touches the
/// circuit.
#[derive(Debug, Clone)]
struct ScreenSeed {
    /// Index into the campaign fault list.
    fault: u32,
    /// Index of the seed gate's entry in the campaign `by_gate`/plan
    /// arrays (the exact walk needs the matching [`ConePlan`]).
    gate_entry: u32,
    /// Bit position inside the group word.
    bit: u8,
    /// Slot of the seed gate in the union cone; [`NO_SLOT`] when the seed
    /// reaches no observation point (the fault can never be detected).
    gate_slot: u32,
    /// The signal whose transitions the fault delays.
    site_signal: NodeId,
    polarity: Polarity,
    /// Controlling value of the seed gate, for input-pin faults on
    /// controllable gates ([`CTRL_NONE`] otherwise).
    ctrl: u8,
    /// Range into [`FaultScreen::blockers`]: the seed gate's *other*
    /// fanins, whose constant-controlling waveforms mask the fault at its
    /// own gate.
    blockers: (u32, u32),
}

/// A word of up to 64 faults sharing one union propagation cone.
#[derive(Debug, Clone)]
pub struct ScreenGroup {
    seeds: Vec<ScreenSeed>,
    /// Union of the member gates' pruned cones, topologically ordered.
    nodes: Vec<NodeId>,
    /// Controlling value per union node ([`CTRL_NONE`] = none).
    ctrl: Vec<u8>,
    /// CSR fanin refs per union node: [`LOCAL`]`|slot` for in-union
    /// fanins, the raw node index otherwise.
    fanins: Vec<u32>,
    fanin_offsets: Vec<u32>,
    /// CSR of the in-union fanin slots only — external fanins always
    /// carry a zero mask, so the hot any-fault-here gather skips them.
    local_fanins: Vec<u32>,
    local_offsets: Vec<u32>,
    /// Union slots that drive an observation point.
    taps: Vec<u32>,
}

impl ScreenGroup {
    /// `(fault index, by_gate entry)` of every member, ascending fault
    /// order, for iterating the survivors of a screen word.
    pub fn members(&self) -> impl Iterator<Item = (usize, usize, u8)> + '_ {
        self.seeds
            .iter()
            .map(|s| (s.fault as usize, s.gate_entry as usize, s.bit))
    }

    /// Number of faults in this group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the group is empty (never produced by the builder).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// Reusable per-worker buffers for [`FaultScreen::screen`].
#[derive(Debug, Default)]
pub struct ScreenScratch {
    /// Per union slot: the 64-fault "may differ" mask.
    masks: Vec<u64>,
    /// Per-fanin masks of the node being evaluated.
    fanin_masks: Vec<u64>,
    /// Per-fanin constant-at-controlling-value flags.
    fanin_ctrl: Vec<bool>,
    /// `(slot, bit)` of the seeds activated by the current pattern.
    seed_bits: Vec<(u32, u64)>,
}

impl ScreenScratch {
    /// Fresh, empty scratch; buffers grow to the largest group screened.
    #[must_use]
    pub fn new() -> Self {
        ScreenScratch::default()
    }
}

/// The campaign-wide screening structure: faults grouped 64 to a word in
/// campaign order, each group with its union propagation cone.
#[derive(Debug, Clone)]
pub struct FaultScreen {
    groups: Vec<ScreenGroup>,
    /// Shared side-input pool referenced by the seeds' `blockers` ranges.
    blockers: Vec<NodeId>,
}

impl FaultScreen {
    /// Groups the campaign's faults (already grouped by seed gate in
    /// `by_gate`, with a matching [`ConePlan`] per entry) into 64-fault
    /// words and builds each word's union cone.
    ///
    /// # Panics
    ///
    /// Panics if `plans` does not match `by_gate`.
    #[must_use]
    pub fn build(
        circuit: &Circuit,
        faults: &FaultList,
        by_gate: &[(NodeId, Vec<usize>)],
        plans: &[ConePlan],
    ) -> Self {
        assert_eq!(by_gate.len(), plans.len(), "one plan per fault gate");
        // topological rank, to order union cones without re-walking
        let mut rank = vec![0u32; circuit.len()];
        for (r, &id) in circuit.topo_order().iter().enumerate() {
            rank[id.index()] =
                u32::try_from(r).unwrap_or_else(|_| unreachable!("node count fits u32"));
        }

        // chunk whole gates into ≤64-fault words (a gate's faults never
        // split across words; per-gate fault counts are far below 64)
        let mut groups = Vec::new();
        let mut blockers = Vec::new();
        let mut slot = vec![0u32; circuit.len()]; // union slot + 1
        let mut entry = 0usize;
        while entry < by_gate.len() {
            let mut end = entry;
            let mut count = 0usize;
            while end < by_gate.len() {
                let gate_faults = by_gate[end].1.len();
                if count + gate_faults > 64 && count > 0 {
                    break;
                }
                count += gate_faults;
                end += 1;
            }
            groups.push(Self::build_group(
                circuit,
                faults,
                by_gate,
                plans,
                entry..end,
                &rank,
                &mut slot,
                &mut blockers,
            ));
            entry = end;
        }
        FaultScreen { groups, blockers }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_group(
        circuit: &Circuit,
        faults: &FaultList,
        by_gate: &[(NodeId, Vec<usize>)],
        plans: &[ConePlan],
        entries: std::ops::Range<usize>,
        rank: &[u32],
        slot: &mut [u32],
        blockers: &mut Vec<NodeId>,
    ) -> ScreenGroup {
        // union of the member gates' pruned cones
        let mut nodes: Vec<NodeId> = Vec::new();
        for plan in &plans[entries.clone()] {
            for &id in plan.cone() {
                if slot[id.index()] == 0 {
                    slot[id.index()] = 1; // membership mark, slot assigned below
                    nodes.push(id);
                }
            }
        }
        nodes.sort_unstable_by_key(|id| rank[id.index()]);
        for (i, &id) in nodes.iter().enumerate() {
            slot[id.index()] =
                u32::try_from(i).unwrap_or_else(|_| unreachable!("cone fits u32")) + 1;
        }

        // CSR fanins + controlling values
        let mut ctrl = Vec::with_capacity(nodes.len());
        let mut fanins = Vec::new();
        let mut fanin_offsets = Vec::with_capacity(nodes.len() + 1);
        let mut local_fanins = Vec::new();
        let mut local_offsets = Vec::with_capacity(nodes.len() + 1);
        fanin_offsets.push(0u32);
        local_offsets.push(0u32);
        for &id in &nodes {
            let node = circuit.node(id);
            ctrl.push(match node.kind().controlling_value() {
                Some(false) => 0u8,
                Some(true) => 1,
                None => CTRL_NONE,
            });
            for &fi in node.fanins() {
                let s = slot[fi.index()];
                fanins.push(if s > 0 {
                    local_fanins.push(s - 1);
                    LOCAL | (s - 1)
                } else {
                    u32::try_from(fi.index()).unwrap_or_else(|_| unreachable!("node fits u32"))
                });
            }
            fanin_offsets
                .push(u32::try_from(fanins.len()).unwrap_or_else(|_| unreachable!("fits u32")));
            local_offsets
                .push(u32::try_from(local_fanins.len()).unwrap_or_else(|_| unreachable!("fits")));
        }

        // observation taps of any member plan, deduplicated by slot
        let mut taps: Vec<u32> = Vec::new();
        for plan in &plans[entries.clone()] {
            for &(_, driver) in plan.observers() {
                let s = slot[driver.index()];
                if s > 0 {
                    taps.push(s - 1);
                }
            }
        }
        taps.sort_unstable();
        taps.dedup();

        // seeds, in ascending fault order (by_gate preserves it)
        let mut seeds = Vec::new();
        for e in entries.clone() {
            let (gate, fault_ids) = &by_gate[e];
            let gate_slot = match slot[gate.index()] {
                0 => NO_SLOT,
                s => s - 1,
            };
            for &fidx in fault_ids {
                let fault = faults.fault(fastmon_faults::FaultId::from_index(fidx));
                let (site_signal, ctrl_val, blocker_range) = match fault.site {
                    PinRef::Output(n) => (n, CTRL_NONE, (0u32, 0u32)),
                    PinRef::Input(n, k) => {
                        let node = circuit.node(n);
                        let pin = node.fanins()[k as usize];
                        match node.kind().controlling_value() {
                            Some(c) => {
                                let lo = u32::try_from(blockers.len())
                                    .unwrap_or_else(|_| unreachable!("fits u32"));
                                blockers.extend(
                                    node.fanins()
                                        .iter()
                                        .enumerate()
                                        .filter(|&(j, _)| j != k as usize)
                                        .map(|(_, &fi)| fi),
                                );
                                let hi = u32::try_from(blockers.len())
                                    .unwrap_or_else(|_| unreachable!("fits u32"));
                                (pin, u8::from(c), (lo, hi))
                            }
                            None => (pin, CTRL_NONE, (0, 0)),
                        }
                    }
                };
                let bit = u8::try_from(seeds.len()).unwrap_or_else(|_| unreachable!("≤ 64 seeds"));
                seeds.push(ScreenSeed {
                    fault: u32::try_from(fidx).unwrap_or_else(|_| unreachable!("fits u32")),
                    gate_entry: u32::try_from(e).unwrap_or_else(|_| unreachable!("fits u32")),
                    bit,
                    gate_slot,
                    site_signal,
                    polarity: fault.polarity,
                    ctrl: ctrl_val,
                    blockers: blocker_range,
                });
            }
        }

        // clear the slot map for the next group
        for &id in &nodes {
            slot[id.index()] = 0;
        }

        ScreenGroup {
            seeds,
            nodes,
            ctrl,
            fanins,
            fanin_offsets,
            local_fanins,
            local_offsets,
            taps,
        }
    }

    /// The fault groups, in campaign (ascending fault) order.
    #[must_use]
    pub fn groups(&self) -> &[ScreenGroup] {
        &self.groups
    }

    /// Screens one group against a fault-free result: the returned word
    /// has bit `b` set iff the fault with bit `b` (see
    /// [`ScreenGroup::members`]) may produce a difference at an
    /// observation point and needs an exact cone walk.
    #[must_use]
    pub fn screen(
        &self,
        group: &ScreenGroup,
        base: &SimResult,
        scratch: &mut ScreenScratch,
        metrics: Option<&SimMetrics>,
    ) -> u64 {
        let metrics = match metrics {
            Some(m) => m,
            None => stats::global(),
        };

        // seed activation bits
        let mut activated = 0u64;
        scratch.seed_bits.clear();
        for seed in &group.seeds {
            if seed.gate_slot == NO_SLOT {
                continue;
            }
            if !has_polarity_transition(base.wave(seed.site_signal), seed.polarity) {
                continue;
            }
            if seed.ctrl != CTRL_NONE {
                let c = seed.ctrl == 1;
                let (lo, hi) = seed.blockers;
                let masked = self.blockers[lo as usize..hi as usize].iter().any(|&b| {
                    let w = base.wave(b);
                    w.is_constant() && w.initial() == c
                });
                if masked {
                    continue;
                }
            }
            activated |= 1 << seed.bit;
            scratch.seed_bits.push((seed.gate_slot, 1u64 << seed.bit));
        }
        metrics.screen_walks.incr();
        if activated == 0 {
            // no member fault toggles its site under this pattern
            metrics.faults_screened_out.add(group.seeds.len() as u64);
            return 0;
        }

        scratch.masks.clear();
        scratch.masks.resize(group.nodes.len(), 0);
        for &(slot, bit) in &scratch.seed_bits {
            scratch.masks[slot as usize] |= bit;
        }

        // levelized propagation over the union cone
        for i in 0..group.nodes.len() {
            // the hot gather only reads in-union fanins — external ones
            // always carry a zero mask
            let llo = group.local_offsets[i] as usize;
            let lhi = group.local_offsets[i + 1] as usize;
            let mut any = 0u64;
            for &s in &group.local_fanins[llo..lhi] {
                any |= scratch.masks[s as usize];
            }
            if any == 0 {
                continue;
            }
            let out = match group.ctrl[i] {
                CTRL_NONE => any,
                c => {
                    let lo = group.fanin_offsets[i] as usize;
                    let hi = group.fanin_offsets[i + 1] as usize;
                    scratch.fanin_masks.clear();
                    for &fref in &group.fanins[lo..hi] {
                        scratch.fanin_masks.push(if fref & LOCAL != 0 {
                            scratch.masks[(fref & !LOCAL) as usize]
                        } else {
                            0
                        });
                    }
                    // constant-at-controlling side inputs block fanins the
                    // fault cannot also reach
                    let c = c == 1;
                    scratch.fanin_ctrl.clear();
                    for &fref in &group.fanins[lo..hi] {
                        let id = if fref & LOCAL != 0 {
                            group.nodes[(fref & !LOCAL) as usize]
                        } else {
                            NodeId::from_index(fref as usize)
                        };
                        let w = base.wave(id);
                        scratch.fanin_ctrl.push(w.is_constant() && w.initial() == c);
                    }
                    let mut out = 0u64;
                    for (j, &mj) in scratch.fanin_masks.iter().enumerate() {
                        if mj == 0 {
                            continue;
                        }
                        let mut blocked = 0u64;
                        for (k, &ck) in scratch.fanin_ctrl.iter().enumerate() {
                            if ck && k != j {
                                blocked |= !scratch.fanin_masks[k];
                            }
                        }
                        out |= mj & !blocked;
                    }
                    out
                }
            };
            scratch.masks[i] |= out;
        }

        let mut detected = 0u64;
        for &t in &group.taps {
            detected |= scratch.masks[t as usize];
        }

        metrics.screen_nodes_visited.add(group.nodes.len() as u64);
        metrics
            .faults_screened_out
            .add(group.seeds.len() as u64 - u64::from(detected.count_ones()));
        detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConeScratch, SimEngine, Stimulus};
    use fastmon_faults::FaultList;
    use fastmon_netlist::generate::GeneratorConfig;
    use fastmon_netlist::library;
    use fastmon_timing::{DelayAnnotation, DelayModel};

    #[test]
    fn polarity_transition_check() {
        let w = Waveform::with_transitions(false, vec![1.0]); // rising only
        assert!(has_polarity_transition(&w, Polarity::SlowToRise));
        assert!(!has_polarity_transition(&w, Polarity::SlowToFall));
        let w = Waveform::with_transitions(false, vec![1.0, 2.0]); // rise+fall
        assert!(has_polarity_transition(&w, Polarity::SlowToFall));
        assert!(!has_polarity_transition(
            &Waveform::constant(true),
            Polarity::SlowToRise
        ));
    }

    /// The screen must never clear a bit whose exact walk finds a
    /// difference (no false negatives) — checked exhaustively on two
    /// circuits across several stimuli.
    fn assert_screen_is_sound(circuit: &Circuit) {
        let annot = DelayAnnotation::nominal(circuit, &DelayModel::nangate45_like());
        let engine = SimEngine::new(circuit, &annot);
        let faults = FaultList::sized(circuit, |_| 3.0);
        let mut by_gate: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (fid, fault) in faults.iter() {
            let gate = fault.site.node();
            match by_gate.last_mut() {
                Some((g, list)) if *g == gate => list.push(fid.index()),
                _ => by_gate.push((gate, vec![fid.index()])),
            }
        }
        let plans: Vec<ConePlan> = by_gate
            .iter()
            .map(|&(g, _)| ConePlan::new(circuit, g))
            .collect();
        let screen = FaultScreen::build(circuit, &faults, &by_gate, &plans);
        let total: usize = screen.groups().iter().map(ScreenGroup::len).sum();
        assert_eq!(
            total,
            faults.len(),
            "every fault lands in exactly one group"
        );

        let mut scratch = ScreenScratch::new();
        let mut cone_scratch = ConeScratch::new(circuit);
        let mut screened = 0u64;
        for seed in 0..6u64 {
            let stim = Stimulus::from_fn(circuit, |id| {
                (
                    (id.index() as u64 + seed).is_multiple_of(3),
                    (id.index() as u64 + seed).is_multiple_of(2),
                )
            });
            let base = engine.simulate(&stim);
            for group in screen.groups() {
                let word = screen.screen(group, &base, &mut scratch, None);
                for (fidx, entry, bit) in group.members() {
                    let fault = faults.fault(fastmon_faults::FaultId::from_index(fidx));
                    let diffs = engine.response_diff_planned(
                        &base,
                        fault,
                        &plans[entry],
                        &mut cone_scratch,
                        1e6,
                    );
                    if word & (1 << bit) == 0 {
                        assert!(
                            diffs.is_empty(),
                            "screen dropped a detectable fault: {fault} stim {seed}"
                        );
                        screened += 1;
                    }
                }
            }
        }
        assert!(screened > 0, "the screen never fired — test is vacuous");
    }

    #[test]
    fn screen_is_sound_on_s27() {
        assert_screen_is_sound(&library::s27());
    }

    #[test]
    fn screen_is_sound_on_a_synthetic_circuit() {
        let c = GeneratorConfig::new("scr")
            .gates(300)
            .flip_flops(16)
            .inputs(10)
            .outputs(5)
            .depth(10)
            .generate(11)
            .unwrap();
        assert_screen_is_sound(&c);
    }

    #[test]
    fn screen_counters_move() {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::unit());
        let engine = SimEngine::new(&c, &annot);
        let faults = FaultList::sized(&c, |_| 1.0);
        let mut by_gate: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (fid, fault) in faults.iter() {
            let gate = fault.site.node();
            match by_gate.last_mut() {
                Some((g, list)) if *g == gate => list.push(fid.index()),
                _ => by_gate.push((gate, vec![fid.index()])),
            }
        }
        let plans: Vec<ConePlan> = by_gate.iter().map(|&(g, _)| ConePlan::new(&c, g)).collect();
        let screen = FaultScreen::build(&c, &faults, &by_gate, &plans);
        let metrics = SimMetrics::new();
        let stim = Stimulus::from_fn(&c, |id| (id.index() % 2 == 0, id.index() % 3 == 0));
        let base = engine.simulate(&stim);
        let mut scratch = ScreenScratch::new();
        for group in screen.groups() {
            let _ = screen.screen(group, &base, &mut scratch, Some(&metrics));
        }
        assert_eq!(metrics.screen_walks.get(), screen.groups().len() as u64);
        assert!(metrics.screen_nodes_visited.get() > 0);
    }
}
