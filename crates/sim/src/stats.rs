//! Global campaign instrumentation: cheap atomic counters incremented by
//! the fault-simulation hot paths.
//!
//! # One campaign at a time
//!
//! Counters are **process-wide**: a [`reset`]/[`snapshot`] pair brackets
//! everything the process simulated in between, not one particular
//! campaign. Running two campaigns concurrently (overlapping flows in one
//! process, or `cargo test` without `--test-threads=1` when several tests
//! measure stats) interleaves their tallies, so each snapshot can include
//! the other campaign's work. The counters stay race-free and monotonic
//! in that case — only the attribution blurs. Callers that need exact
//! per-campaign numbers (e.g. `perf_snapshot`) must serialize campaigns
//! around the reset/snapshot pair.
//!
//! Counters are updated with relaxed ordering; the hot loops batch their
//! deltas and flush once per simulated cone, so the bookkeeping is
//! invisible in profiles. Use [`reset`] before and [`snapshot`] after a
//! campaign to measure it:
//!
//! ```
//! fastmon_sim::stats::reset();
//! // ... run a campaign ...
//! let stats = fastmon_sim::stats::snapshot();
//! assert_eq!(stats.cones_simulated, 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

static CONES_SIMULATED: AtomicU64 = AtomicU64::new(0);
static CONES_MASKED: AtomicU64 = AtomicU64::new(0);
static NODES_EVALUATED: AtomicU64 = AtomicU64::new(0);
static NODES_CONVERGED: AtomicU64 = AtomicU64::new(0);
static NODES_PRUNED_UNOBSERVED: AtomicU64 = AtomicU64::new(0);
static WAVEFORM_ALLOCS: AtomicU64 = AtomicU64::new(0);
static WAVEFORM_REUSES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the campaign counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Planned cone simulations whose fault was active at its seed gate.
    pub cones_simulated: u64,
    /// Planned cone simulations rejected because the fault was fully
    /// masked at its own gate (seed waveform unchanged).
    pub cones_masked: u64,
    /// Cone gates actually re-evaluated.
    pub nodes_evaluated: u64,
    /// Cone gates skipped because every fanin had already converged back
    /// to its fault-free waveform (including early-exit tail skips).
    pub nodes_converged: u64,
    /// Cone gates dropped at plan-build time because they cannot reach
    /// any observation point.
    pub nodes_pruned_unobserved: u64,
    /// Waveform transition buffers allocated fresh in the hot loop.
    pub waveform_allocs: u64,
    /// Waveform transition buffers recycled from the scratch pool.
    pub waveform_reuses: u64,
}

/// Snapshots all counters.
#[must_use]
pub fn snapshot() -> CampaignStats {
    CampaignStats {
        cones_simulated: CONES_SIMULATED.load(Ordering::Relaxed),
        cones_masked: CONES_MASKED.load(Ordering::Relaxed),
        nodes_evaluated: NODES_EVALUATED.load(Ordering::Relaxed),
        nodes_converged: NODES_CONVERGED.load(Ordering::Relaxed),
        nodes_pruned_unobserved: NODES_PRUNED_UNOBSERVED.load(Ordering::Relaxed),
        waveform_allocs: WAVEFORM_ALLOCS.load(Ordering::Relaxed),
        waveform_reuses: WAVEFORM_REUSES.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters.
pub fn reset() {
    CONES_SIMULATED.store(0, Ordering::Relaxed);
    CONES_MASKED.store(0, Ordering::Relaxed);
    NODES_EVALUATED.store(0, Ordering::Relaxed);
    NODES_CONVERGED.store(0, Ordering::Relaxed);
    NODES_PRUNED_UNOBSERVED.store(0, Ordering::Relaxed);
    WAVEFORM_ALLOCS.store(0, Ordering::Relaxed);
    WAVEFORM_REUSES.store(0, Ordering::Relaxed);
}

/// One cone's worth of counter deltas, flushed in a single batch.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ConeTally {
    pub nodes_evaluated: u64,
    pub nodes_converged: u64,
    pub waveform_allocs: u64,
    pub waveform_reuses: u64,
}

impl ConeTally {
    /// Publishes the deltas of one simulated cone.
    pub(crate) fn flush_simulated(self) {
        CONES_SIMULATED.fetch_add(1, Ordering::Relaxed);
        NODES_EVALUATED.fetch_add(self.nodes_evaluated, Ordering::Relaxed);
        NODES_CONVERGED.fetch_add(self.nodes_converged, Ordering::Relaxed);
        WAVEFORM_ALLOCS.fetch_add(self.waveform_allocs, Ordering::Relaxed);
        WAVEFORM_REUSES.fetch_add(self.waveform_reuses, Ordering::Relaxed);
    }
}

/// Records a fault masked at its seed gate.
pub(crate) fn count_masked_cone() {
    CONES_MASKED.fetch_add(1, Ordering::Relaxed);
}

/// Records cone nodes removed by observer-reach pruning at plan build.
pub(crate) fn count_pruned_nodes(n: u64) {
    NODES_PRUNED_UNOBSERVED.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_then_flush_accumulates() {
        reset();
        ConeTally {
            nodes_evaluated: 5,
            nodes_converged: 2,
            waveform_allocs: 1,
            waveform_reuses: 4,
        }
        .flush_simulated();
        count_masked_cone();
        count_pruned_nodes(7);
        let s = snapshot();
        assert!(s.cones_simulated >= 1);
        assert!(s.nodes_evaluated >= 5);
        assert!(s.nodes_converged >= 2);
        assert!(s.cones_masked >= 1);
        assert!(s.nodes_pruned_unobserved >= 7);
        assert!(s.waveform_allocs >= 1);
        assert!(s.waveform_reuses >= 4);
    }
}
