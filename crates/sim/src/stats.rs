//! Deprecated process-wide campaign counters.
//!
//! The counters now live in campaign-owned
//! [`fastmon_obs::SimMetrics`]/[`fastmon_obs::MetricsRegistry`] registries
//! (see [`SimEngine::with_metrics`](crate::SimEngine::with_metrics)):
//! each campaign holds its own collector, so concurrent campaigns in one
//! process attribute their work exactly — the old process-wide statics
//! could not tell them apart.
//!
//! This module remains as a thin shim so existing callers compile: engines
//! *not* given a scoped registry fall back to one process-wide
//! [`global`] registry, which [`reset`]/[`snapshot`] (deprecated) bracket
//! exactly like before. New code should pass a scoped registry and read
//! it directly; the hot paths keep the same discipline either way
//! (relaxed ordering, per-cone batch flushes).

use fastmon_obs::SimMetrics;

/// The process-wide fallback registry used by engines that were not given
/// a scoped one via [`SimEngine::with_metrics`](crate::SimEngine::with_metrics).
#[must_use]
pub fn global() -> &'static SimMetrics {
    static GLOBAL: SimMetrics = SimMetrics::new();
    &GLOBAL
}

/// A point-in-time copy of a campaign's fault-simulation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Planned cone simulations whose fault was active at its seed gate.
    pub cones_simulated: u64,
    /// Planned cone simulations rejected because the fault was fully
    /// masked at its own gate (seed waveform unchanged).
    pub cones_masked: u64,
    /// Cone gates actually re-evaluated.
    pub nodes_evaluated: u64,
    /// Cone gates skipped because every fanin had already converged back
    /// to its fault-free waveform (including early-exit tail skips).
    pub nodes_converged: u64,
    /// Cone gates dropped at plan-build time because they cannot reach
    /// any observation point.
    pub nodes_pruned_unobserved: u64,
    /// Cone propagation plans built (one per distinct fault gate).
    pub cone_plans_built: u64,
    /// Waveform transition buffers allocated fresh in the hot loop.
    pub waveform_allocs: u64,
    /// Waveform transition buffers recycled from the scratch pool.
    pub waveform_reuses: u64,
    /// Word-parallel screen traversals (one per 64-fault group per
    /// pattern).
    pub screen_walks: u64,
    /// Union-cone gates visited by the word-parallel screen.
    pub screen_nodes_visited: u64,
    /// (fault, pattern) pairs discarded by the screen without an exact
    /// cone walk.
    pub faults_screened_out: u64,
    /// Structural equivalence classes the campaign's fault set collapsed
    /// into (one representative simulated per class).
    pub fault_classes: u64,
    /// Faults never simulated because a class representative's detection
    /// results were fanned back to them.
    pub faults_collapsed: u64,
}

impl CampaignStats {
    /// Snapshots a scoped registry section.
    #[must_use]
    pub fn from_metrics(m: &SimMetrics) -> Self {
        CampaignStats {
            cones_simulated: m.cones_simulated.get(),
            cones_masked: m.cones_masked.get(),
            nodes_evaluated: m.nodes_evaluated.get(),
            nodes_converged: m.nodes_converged.get(),
            nodes_pruned_unobserved: m.nodes_pruned_unobserved.get(),
            cone_plans_built: m.cone_plans_built.get(),
            waveform_allocs: m.waveform_allocs.get(),
            waveform_reuses: m.waveform_reuses.get(),
            screen_walks: m.screen_walks.get(),
            screen_nodes_visited: m.screen_nodes_visited.get(),
            faults_screened_out: m.faults_screened_out.get(),
            fault_classes: m.fault_classes.get(),
            faults_collapsed: m.faults_collapsed.get(),
        }
    }
}

/// Snapshots the process-wide fallback registry.
#[deprecated(
    note = "use a campaign-owned fastmon_obs::MetricsRegistry (e.g. HdfTestFlow::metrics) \
            and CampaignStats::from_metrics instead"
)]
#[must_use]
pub fn snapshot() -> CampaignStats {
    CampaignStats::from_metrics(global())
}

/// Zeroes the process-wide fallback registry.
#[deprecated(
    note = "use a campaign-owned fastmon_obs::MetricsRegistry (e.g. HdfTestFlow::metrics) \
            instead; scoped registries start at zero"
)]
pub fn reset() {
    global().reset();
}

/// One cone's worth of counter deltas, flushed in a single batch.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ConeTally {
    pub nodes_evaluated: u64,
    pub nodes_converged: u64,
    pub waveform_allocs: u64,
    pub waveform_reuses: u64,
}

impl ConeTally {
    /// Publishes the deltas of one simulated cone into `m`.
    pub(crate) fn flush_simulated(self, m: &SimMetrics) {
        m.cones_simulated.incr();
        m.nodes_evaluated.add(self.nodes_evaluated);
        m.nodes_converged.add(self.nodes_converged);
        m.waveform_allocs.add(self.waveform_allocs);
        m.waveform_reuses.add(self.waveform_reuses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_flush_accumulates() {
        let m = SimMetrics::new();
        ConeTally {
            nodes_evaluated: 5,
            nodes_converged: 2,
            waveform_allocs: 1,
            waveform_reuses: 4,
        }
        .flush_simulated(&m);
        m.cones_masked.incr();
        m.nodes_pruned_unobserved.add(7);
        let s = CampaignStats::from_metrics(&m);
        assert_eq!(s.cones_simulated, 1);
        assert_eq!(s.nodes_evaluated, 5);
        assert_eq!(s.nodes_converged, 2);
        assert_eq!(s.cones_masked, 1);
        assert_eq!(s.nodes_pruned_unobserved, 7);
        assert_eq!(s.waveform_allocs, 1);
        assert_eq!(s.waveform_reuses, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn global_shim_still_brackets_work() {
        reset();
        ConeTally::default().flush_simulated(global());
        let s = snapshot();
        assert!(s.cones_simulated >= 1);
    }
}
