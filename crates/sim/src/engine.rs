use fastmon_faults::{IntervalSet, SmallDelayFault};
use fastmon_netlist::{Circuit, ConeMarks, GateKind, NodeId, PinRef};
use fastmon_obs::SimMetrics;
use fastmon_timing::{DelayAnnotation, Time};

use crate::stats;
use crate::waveform::{eval_gate, eval_gate_into, filter_pulses_in_place, EvalScratch};
use crate::{Stimulus, Waveform};

/// Fault-free waveforms of every net for one stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    waves: Vec<Waveform>,
}

impl SimResult {
    /// The waveform of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn wave(&self, id: NodeId) -> &Waveform {
        &self.waves[id.index()]
    }

    /// The latest transition time over all nets (settling time of the
    /// launch), or 0 for a fully static stimulus.
    #[must_use]
    pub fn settle_time(&self) -> Time {
        self.waves
            .iter()
            .filter_map(Waveform::last_transition)
            .fold(0.0, f64::max)
    }
}

/// The faulty waveforms of the fault's fanout cone.
#[derive(Debug, Clone)]
pub struct FaultyCone {
    /// Nodes of the cone in topological order (seed gate first).
    pub cone: Vec<NodeId>,
    /// Faulty waveform per cone node, parallel to `cone`.
    pub waves: Vec<Waveform>,
    /// `(node, slot)` pairs sorted by node id for O(log n) lookup — the
    /// cone itself is in topological, not id, order.
    slots: Vec<(NodeId, u32)>,
}

impl FaultyCone {
    /// Wraps cone nodes and their waveforms, building the lookup index.
    fn new(cone: Vec<NodeId>, waves: Vec<Waveform>) -> Self {
        let mut slots: Vec<(NodeId, u32)> = cone
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                (
                    id,
                    u32::try_from(i).unwrap_or_else(|_| unreachable!("cone fits u32")),
                )
            })
            .collect();
        slots.sort_unstable_by_key(|&(id, _)| id);
        FaultyCone { cone, waves, slots }
    }

    /// The faulty waveform of `id`, if `id` is in the cone.
    #[must_use]
    pub fn wave(&self, id: NodeId) -> Option<&Waveform> {
        self.slots
            .binary_search_by_key(&id, |&(n, _)| n)
            .ok()
            .map(|i| &self.waves[self.slots[i].1 as usize])
    }
}

/// Timing-accurate waveform simulation of a circuit.
///
/// Borrowed circuit and delay annotation; cheap to construct (no internal
/// state), so one engine can be shared across threads (`&SimEngine` is
/// `Send + Sync`).
#[derive(Debug, Clone, Copy)]
pub struct SimEngine<'c> {
    circuit: &'c Circuit,
    annot: &'c DelayAnnotation,
    /// inertial pulse-filter width as a fraction of each gate's faster
    /// delay; `None` = pure transport delay (the paper's setting — its
    /// pessimistic pulse filtering happens on detection ranges instead)
    inertial: Option<f64>,
    /// campaign-scoped counters; `None` falls back to the process-wide
    /// [`stats::global`] registry (the deprecated-shim path)
    metrics: Option<&'c SimMetrics>,
}

impl<'c> SimEngine<'c> {
    /// Creates an engine over `circuit` with delays from `annot`.
    ///
    /// # Panics
    ///
    /// Panics if the annotation does not cover the circuit.
    #[must_use]
    pub fn new(circuit: &'c Circuit, annot: &'c DelayAnnotation) -> Self {
        assert_eq!(
            circuit.len(),
            annot.len(),
            "annotation does not match circuit size"
        );
        SimEngine {
            circuit,
            annot,
            inertial: None,
            metrics: None,
        }
    }

    /// Routes this engine's campaign counters into a scoped registry
    /// (instead of the process-wide fallback), so concurrent campaigns
    /// attribute their work exactly.
    #[must_use]
    pub fn with_metrics(mut self, metrics: &'c SimMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The counter sink: the scoped registry if one was attached, the
    /// process-wide fallback otherwise.
    #[inline]
    fn metrics(&self) -> &'c SimMetrics {
        match self.metrics {
            Some(m) => m,
            None => stats::global(),
        }
    }

    /// Enables inertial filtering: every gate swallows output pulses
    /// narrower than `fraction` times its faster pin-to-pin delay.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative.
    #[must_use]
    pub fn with_inertial_filtering(mut self, fraction: f64) -> Self {
        assert!(fraction >= 0.0, "fraction must be non-negative");
        self.inertial = Some(fraction);
        self
    }

    /// Evaluates one gate's output waveform, applying the optional
    /// inertial filter.
    fn eval_node(&self, id: NodeId, inputs: &[&Waveform]) -> Waveform {
        let node = self.circuit.node(id);
        let wave = eval_gate(
            node.kind(),
            inputs,
            self.annot.rise(id),
            self.annot.fall(id),
        );
        match self.inertial {
            Some(fraction) => wave.filter_pulses(fraction * self.annot.min_delay(id)),
            None => wave,
        }
    }

    /// The simulated circuit.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Fault-free simulation of a two-vector stimulus: every source steps
    /// from its launch to its capture value at `t = 0`, and all nets settle
    /// through the annotated transport delays.
    #[must_use]
    pub fn simulate(&self, stim: &Stimulus) -> SimResult {
        let mut waves: Vec<Waveform> = Vec::with_capacity(self.circuit.len());
        // waves indexed by NodeId; fill placeholder first because topo order
        // is not id order
        waves.resize(self.circuit.len(), Waveform::constant(false));
        for &id in self.circuit.topo_order() {
            let node = self.circuit.node(id);
            let wave = match node.kind() {
                GateKind::Input | GateKind::Dff => {
                    Waveform::step(stim.launch(id), stim.capture(id), 0.0)
                }
                GateKind::Const0 => Waveform::constant(false),
                GateKind::Const1 => Waveform::constant(true),
                _ => {
                    let inputs: Vec<&Waveform> =
                        node.fanins().iter().map(|&fi| &waves[fi.index()]).collect();
                    self.eval_node(id, &inputs)
                }
            };
            waves[id.index()] = wave;
        }
        SimResult { waves }
    }

    /// Computes the faulty waveform of the fault's seed gate (the gate
    /// carrying the faulted pin) from the fault-free result.
    fn seed_wave(&self, base: &SimResult, fault: &SmallDelayFault) -> Waveform {
        let seed = fault.site.node();
        match fault.site {
            PinRef::Output(_) => base
                .wave(seed)
                .delayed_polarity(fault.delta, fault.polarity),
            PinRef::Input(_, k) => {
                let node = self.circuit.node(seed);
                let k = k as usize;
                let delayed_pin = base
                    .wave(node.fanins()[k])
                    .delayed_polarity(fault.delta, fault.polarity);
                let inputs: Vec<&Waveform> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(j, &fi)| if j == k { &delayed_pin } else { base.wave(fi) })
                    .collect();
                self.eval_node(seed, &inputs)
            }
        }
    }

    /// Re-simulates the fanout cone of `fault` against a fault-free result,
    /// returning the faulty waveforms of the cone.
    #[must_use]
    pub fn simulate_fault(&self, base: &SimResult, fault: &SmallDelayFault) -> FaultyCone {
        let seed = fault.site.node();
        let cone = self.circuit.fanout_cone(seed);
        let mut waves: Vec<Waveform> = Vec::with_capacity(cone.len());
        // dense lookup: position of a node in the cone (+1), 0 = not in cone
        let mut pos = vec![0u32; self.circuit.len()];
        for (i, &id) in cone.iter().enumerate() {
            pos[id.index()] =
                u32::try_from(i).unwrap_or_else(|_| unreachable!("cone fits u32")) + 1;
        }

        for (i, &id) in cone.iter().enumerate() {
            let node = self.circuit.node(id);
            let wave = if i == 0 {
                // the seed gate carries the fault
                self.seed_wave(base, fault)
            } else {
                let inputs: Vec<&Waveform> = node
                    .fanins()
                    .iter()
                    .map(|&fi| {
                        let p = pos[fi.index()];
                        if p > 0 && (p as usize - 1) < waves.len() {
                            &waves[p as usize - 1]
                        } else {
                            base.wave(fi)
                        }
                    })
                    .collect();
                self.eval_node(id, &inputs)
            };
            waves.push(wave);
        }
        FaultyCone::new(cone, waves)
    }

    /// Computes the raw per-observation-point difference intervals between
    /// fault-free and faulty responses: for every observation point whose
    /// captured signal lies in the fault's cone, the XOR of the two
    /// waveforms up to `horizon` (typically `t_nom`).
    ///
    /// Returns `(observation point index, difference intervals)` pairs with
    /// empty differences omitted — the raw material for
    /// [`DetectionRange`](fastmon_faults::DetectionRange).
    #[must_use]
    pub fn response_diff(
        &self,
        base: &SimResult,
        fault: &SmallDelayFault,
        horizon: Time,
    ) -> Vec<(usize, IntervalSet)> {
        let faulty = self.simulate_fault(base, fault);
        let mut out = Vec::new();
        for (op_index, op) in self.circuit.observe_points().iter().enumerate() {
            let Some(faulty_wave) = faulty.wave(op.driver) else {
                continue;
            };
            let diff = base.wave(op.driver).diff(faulty_wave, horizon);
            if !diff.is_empty() {
                out.push((op_index, diff));
            }
        }
        out
    }
}

/// Precomputed propagation plan for faults seated at one gate: the fanout
/// cone pruned to the nodes that can actually reach an observation point,
/// plus a per-node influence horizon for convergence early exit.
///
/// Fault-simulation campaigns touch every gate with several faults (one per
/// pin and polarity) and every pattern; computing the cone once per gate
/// amortizes the traversal.
///
/// # Pruning
///
/// A fanout-cone node that reaches no observation point can never
/// contribute to a detection range, so it is dropped at plan-build time.
/// The retained set is closed under in-cone fanins (if a node reaches an
/// observer, so does every cone node feeding it), which keeps cone
/// re-simulation over the pruned node list bit-identical to the full one.
#[derive(Debug, Clone)]
pub struct ConePlan {
    seed: NodeId,
    /// pruned cone in topological order (seed first; empty if the seed
    /// reaches no observation point)
    cone: Vec<NodeId>,
    /// indices into [`Circuit::observe_points`] reachable from the seed
    ops: Vec<(usize, NodeId)>,
    /// per cone slot: the largest cone slot its output directly feeds
    /// (its own slot if it feeds nothing downstream in the cone)
    influence: Vec<u32>,
    /// cone nodes dropped because they reach no observation point
    pruned: usize,
}

impl ConePlan {
    /// Builds the plan for faults at gate `seed`, counting pruned nodes
    /// into the process-wide fallback registry. Campaign code should use
    /// [`ConePlan::new_with_metrics`] for exact attribution.
    #[must_use]
    pub fn new(circuit: &Circuit, seed: NodeId) -> Self {
        Self::new_with_metrics(circuit, seed, None)
    }

    /// Builds the plan for faults at gate `seed`, counting nodes dropped
    /// by observer-reach pruning into `metrics` (falling back to the
    /// process-wide registry when `None`).
    ///
    /// Note that netlists produced by the synthetic generator are fully
    /// observable by construction (dangling gates are promoted to primary
    /// outputs), so on those — and on the bundled ISCAS circuits — the
    /// pruning legitimately removes nothing and
    /// `nodes_pruned_unobserved` stays 0. The counter moves for partial
    /// or hand-built netlists whose cones contain dead branches.
    #[must_use]
    pub fn new_with_metrics(circuit: &Circuit, seed: NodeId, metrics: Option<&SimMetrics>) -> Self {
        Self::new_with_scratch(circuit, seed, metrics, &mut PlanScratch::new())
    }

    /// [`ConePlan::new_with_metrics`] with caller-provided scratch, so a
    /// campaign building one plan per gate performs no per-plan mark or
    /// slot-map allocation.
    #[must_use]
    pub fn new_with_scratch(
        circuit: &Circuit,
        seed: NodeId,
        metrics: Option<&SimMetrics>,
        scratch: &mut PlanScratch,
    ) -> Self {
        let PlanScratch {
            marks,
            retained,
            full_cone,
            slot,
        } = scratch;
        circuit.fanout_cone_into(seed, marks, full_cone);
        let ops: Vec<(usize, NodeId)> = circuit
            .observe_points()
            .iter()
            .enumerate()
            .filter(|(_, op)| marks.get(op.driver))
            .map(|(i, op)| (i, op.driver))
            .collect();

        // observer-reach pruning: walk the cone backwards, keeping nodes
        // that drive an observation point or feed a kept node
        retained.begin(circuit.len());
        for &(_, driver) in &ops {
            retained.set(driver);
        }
        for &id in full_cone.iter().rev() {
            if retained.get(id) {
                for &fi in circuit.node(id).fanins() {
                    if marks.get(fi) {
                        retained.set(fi);
                    }
                }
            }
        }
        let cone: Vec<NodeId> = full_cone
            .iter()
            .copied()
            .filter(|&id| retained.get(id))
            .collect();
        let pruned = full_cone.len() - cone.len();
        let m = match metrics {
            Some(m) => m,
            None => stats::global(),
        };
        m.nodes_pruned_unobserved.add(pruned as u64);
        m.cone_plans_built.incr();
        let len = u32::try_from(cone.len()).unwrap_or_else(|_| unreachable!("cone fits u32"));

        // influence horizon: how far down the cone each node's output goes
        if slot.len() < circuit.len() {
            slot.resize(circuit.len(), 0);
        }
        for (i, &id) in cone.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            {
                slot[id.index()] = i as u32 + 1;
            }
        }
        let mut influence: Vec<u32> = (0..len).collect();
        for (j, &id) in cone.iter().enumerate().skip(1) {
            for &fi in circuit.node(id).fanins() {
                let p = slot[fi.index()];
                if p > 0 {
                    #[allow(clippy::cast_possible_truncation)]
                    let j32 = j as u32;
                    let p = (p - 1) as usize;
                    influence[p] = influence[p].max(j32);
                }
            }
        }
        // wipe the dense slot map for the next plan
        for &id in &cone {
            slot[id.index()] = 0;
        }

        ConePlan {
            seed,
            cone,
            ops,
            influence,
            pruned,
        }
    }

    /// The seed gate.
    #[must_use]
    pub fn seed(&self) -> NodeId {
        self.seed
    }

    /// The pruned cone in topological order (seed first).
    #[must_use]
    pub fn cone(&self) -> &[NodeId] {
        &self.cone
    }

    /// The observation points the seed reaches.
    #[must_use]
    pub fn observers(&self) -> &[(usize, NodeId)] {
        &self.ops
    }

    /// Number of fanout-cone nodes dropped by observer-reach pruning.
    #[must_use]
    pub fn pruned_nodes(&self) -> usize {
        self.pruned
    }
}

/// Reusable buffers for [`ConePlan::new_with_scratch`]: the full-cone walk
/// marks, the retained set and the dense slot map used for the influence
/// horizon.
#[derive(Debug, Default)]
pub struct PlanScratch {
    marks: ConeMarks,
    retained: ConeMarks,
    full_cone: Vec<NodeId>,
    slot: Vec<u32>,
}

impl PlanScratch {
    /// Fresh, empty scratch; buffers grow to the circuit size on first use.
    #[must_use]
    pub fn new() -> Self {
        PlanScratch::default()
    }
}

/// Reusable per-thread buffers for [`SimEngine::response_diff_planned`].
///
/// Holds the dense cone-position map, the per-cone waveform slots, the
/// gate-evaluation scratch and a pool of recycled transition buffers, so a
/// steady-state campaign performs no per-gate heap allocation.
#[derive(Debug)]
pub struct ConeScratch {
    /// cone position + 1 per node, 0 = not in current cone
    pos: Vec<u32>,
    /// faulty waveforms parallel to the plan's cone; `None` = unchanged
    waves: Vec<Option<Waveform>>,
    /// gate-evaluation working buffers
    eval: EvalScratch,
    /// recycled transition buffers
    spare: Vec<Vec<Time>>,
}

impl ConeScratch {
    /// Allocates scratch buffers for `circuit`.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        ConeScratch {
            pos: vec![0; circuit.len()],
            waves: Vec::new(),
            eval: EvalScratch::new(),
            spare: Vec::new(),
        }
    }

    /// Number of recycled transition buffers currently pooled.
    #[must_use]
    pub fn spare_buffers(&self) -> usize {
        self.spare.len()
    }
}

/// A campaign-wide pool of recycled waveform transition buffers.
///
/// Per-worker [`ConeScratch`] pools warm up independently: with `t`
/// workers the campaign allocates roughly `t ×` the single-thread buffer
/// count even though only one worker runs at a time on a loaded machine.
/// The bank centralizes the buffers between work items — a worker
/// [`withdraw`](SpareBank::withdraw)s the pool at item start and
/// [`deposit`](SpareBank::deposit)s it back when the item ends — so total
/// fresh allocations track the *concurrent* peak, which keeps
/// `waveform_allocs` nearly flat across thread counts.
///
/// Lock poisoning (a worker panicking mid-item) simply forfeits the pooled
/// buffers: the bank is an optimization, never load-bearing.
#[derive(Debug, Default)]
pub struct SpareBank(std::sync::Mutex<Vec<Vec<Time>>>);

impl SpareBank {
    /// An empty bank.
    #[must_use]
    pub fn new() -> Self {
        SpareBank::default()
    }

    /// Moves every pooled buffer of `scratch` into the bank.
    pub fn deposit(&self, scratch: &mut ConeScratch) {
        if scratch.spare.is_empty() {
            return;
        }
        if let Ok(mut bank) = self.0.lock() {
            // In the steady state one side is always empty, so the
            // exchange is a pointer swap; copying the handle list per
            // work item dominated the campaign's multi-chunk runs.
            if bank.is_empty() {
                std::mem::swap(&mut *bank, &mut scratch.spare);
            } else {
                bank.append(&mut scratch.spare);
            }
        }
    }

    /// Moves every banked buffer into `scratch`'s pool.
    pub fn withdraw(&self, scratch: &mut ConeScratch) {
        if let Ok(mut bank) = self.0.lock() {
            if bank.is_empty() {
                return;
            }
            if scratch.spare.is_empty() {
                std::mem::swap(&mut *bank, &mut scratch.spare);
            } else {
                scratch.spare.append(&mut bank);
            }
        }
    }
}

impl<'c> SimEngine<'c> {
    /// Like [`SimEngine::response_diff`], but with a precomputed
    /// [`ConePlan`] and reusable [`ConeScratch`], and with effect-driven
    /// pruning: cone gates whose fanins all carry unchanged waveforms are
    /// skipped, so masked faults cost almost nothing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `plan` does not belong to the fault's
    /// seed gate.
    #[must_use]
    pub fn response_diff_planned(
        &self,
        base: &SimResult,
        fault: &SmallDelayFault,
        plan: &ConePlan,
        scratch: &mut ConeScratch,
        horizon: Time,
    ) -> Vec<(usize, IntervalSet)> {
        let mut out = Vec::new();
        self.response_diff_planned_into(base, fault, plan, scratch, horizon, &mut out);
        out
    }

    /// Allocation-free variant of [`SimEngine::response_diff_planned`]: the
    /// result lands in `out` (cleared first), cone waveforms recycle
    /// transition buffers from the scratch pool, and propagation stops as
    /// soon as every remaining cone gate is known to see only fault-free
    /// inputs (the influence horizon of the changed set has passed).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `plan` does not belong to the fault's
    /// seed gate.
    pub fn response_diff_planned_into(
        &self,
        base: &SimResult,
        fault: &SmallDelayFault,
        plan: &ConePlan,
        scratch: &mut ConeScratch,
        horizon: Time,
        out: &mut Vec<(usize, IntervalSet)>,
    ) {
        debug_assert_eq!(plan.seed, fault.site.node(), "plan/fault mismatch");
        out.clear();
        if plan.ops.is_empty() {
            return; // the seed reaches no observation point
        }
        let seed_wave = self.seed_wave(base, fault);
        if &seed_wave == base.wave(plan.seed) {
            self.metrics().cones_masked.incr();
            return; // fault fully masked at its own gate
        }

        let mut tally = stats::ConeTally::default();
        let ConeScratch {
            pos,
            waves,
            eval,
            spare,
        } = scratch;
        waves.clear();
        waves.push(Some(seed_wave));
        pos[plan.seed.index()] = 1;
        // the furthest cone slot any changed node feeds; once the loop
        // passes it, every remaining gate sees only fault-free inputs
        let mut frontier = plan.influence[0] as usize;

        for (i, &id) in plan.cone.iter().enumerate().skip(1) {
            if i > frontier {
                tally.nodes_converged += (plan.cone.len() - i) as u64;
                break;
            }
            let node = self.circuit.node(id);
            let fanins = node.fanins();
            let changed_input = fanins.iter().any(|&fi| {
                let p = pos[fi.index()];
                p > 0 && waves[p as usize - 1].is_some()
            });
            let wave = if changed_input {
                let mut buf = match spare.pop() {
                    Some(b) => {
                        tally.waveform_reuses += 1;
                        b
                    }
                    None => {
                        tally.waveform_allocs += 1;
                        Vec::new()
                    }
                };
                let initial = eval_gate_into(
                    node.kind(),
                    fanins.len(),
                    |k| {
                        let fi = fanins[k];
                        let p = pos[fi.index()];
                        if p > 0 {
                            waves[p as usize - 1]
                                .as_ref()
                                .unwrap_or_else(|| base.wave(fi))
                        } else {
                            base.wave(fi)
                        }
                    },
                    self.annot.rise(id),
                    self.annot.fall(id),
                    eval,
                    &mut buf,
                );
                if let Some(fraction) = self.inertial {
                    filter_pulses_in_place(&mut buf, fraction * self.annot.min_delay(id));
                }
                tally.nodes_evaluated += 1;
                let fault_free = base.wave(id);
                if initial == fault_free.initial() && buf.as_slice() == fault_free.transitions() {
                    spare.push(buf); // converged back to fault-free
                    None
                } else {
                    frontier = frontier.max(plan.influence[i] as usize);
                    Some(Waveform::with_transitions(initial, buf))
                }
            } else {
                tally.nodes_converged += 1;
                None
            };
            waves.push(wave);
            #[allow(clippy::cast_possible_truncation)]
            {
                pos[id.index()] = i as u32 + 1; // cone length checked at plan build
            }
        }

        for &(op_index, driver) in &plan.ops {
            let p = pos[driver.index()];
            if p == 0 {
                continue;
            }
            if let Some(faulty) = &waves[p as usize - 1] {
                let diff = base.wave(driver).diff(faulty, horizon);
                if !diff.is_empty() {
                    out.push((op_index, diff));
                }
            }
        }

        // clear position markers and recycle waveform buffers
        for &id in &plan.cone[..waves.len()] {
            pos[id.index()] = 0;
        }
        for wave in waves.drain(..).flatten() {
            spare.push(wave.into_transitions());
        }
        tally.flush_simulated(self.metrics());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_faults::Polarity;
    use fastmon_netlist::{library, CircuitBuilder};
    use fastmon_timing::DelayModel;

    fn unit_engine(c: &Circuit) -> (DelayAnnotation, ()) {
        (DelayAnnotation::nominal(c, &DelayModel::unit()), ())
    }

    #[test]
    fn chain_propagates_step() {
        let mut b = CircuitBuilder::new("chain");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("n2", GateKind::Not, &["n1"]);
        b.mark_output("n2");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let res = engine.simulate(&stim);
        let n1 = c.find("n1").unwrap();
        let n2 = c.find("n2").unwrap();
        assert_eq!(res.wave(n1).transitions(), &[1.0]);
        assert!(res.wave(n2).initial());
        assert_eq!(res.wave(n2).transitions(), &[2.0]);
        assert_eq!(res.settle_time(), 2.0);
    }

    #[test]
    fn static_stimulus_matches_steady_eval() {
        let c = library::s27();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let g0 = c.find("G0").unwrap();
        let g5 = c.find("G5").unwrap();
        // static: launch == capture, so every net is constant at its steady
        // value
        let stim = Stimulus::from_fn(&c, |id| {
            let v = id == g0 || id == g5;
            (v, v)
        });
        let res = engine.simulate(&stim);
        let steady = c.eval_steady(|id| id == g0 || id == g5);
        for id in c.node_ids() {
            assert!(
                res.wave(id).is_constant(),
                "{} not constant",
                c.node(id).name()
            );
            assert_eq!(res.wave(id).initial(), steady[id.index()]);
        }
    }

    #[test]
    fn final_values_match_capture_steady_state() {
        let c = library::s27();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        // arbitrary two distinct vectors
        let stim = Stimulus::from_fn(&c, |id| (id.index() % 3 == 0, id.index() % 2 == 0));
        let res = engine.simulate(&stim);
        let steady = c.eval_steady(|id| id.index() % 2 == 0);
        for id in c.node_ids() {
            assert_eq!(
                res.wave(id).final_value(),
                steady[id.index()],
                "{} settles wrong",
                c.node(id).name()
            );
        }
    }

    #[test]
    fn output_pin_fault_shifts_response() {
        // a -> n1(buf) -> n2(buf) -> PO, unit delays. Rising launch on a.
        let mut b = CircuitBuilder::new("f");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("n2", GateKind::Buf, &["n1"]);
        b.mark_output("n2");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let n1 = c.find("n1").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let base = engine.simulate(&stim);
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToRise, 0.5);
        let diffs = engine.response_diff(&base, &fault, 100.0);
        // only the PO observes (no flip-flops); fault-free rise at n2: 2.0,
        // faulty: 2.5 → difference interval [2.0, 2.5)
        assert_eq!(diffs.len(), 1);
        let (op, set) = &diffs[0];
        assert_eq!(*op, 0);
        assert_eq!(set.as_slice().len(), 1);
        assert!((set.as_slice()[0].start - 2.0).abs() < 1e-12);
        assert!((set.as_slice()[0].end - 2.5).abs() < 1e-12);
    }

    #[test]
    fn input_pin_fault_affects_only_that_path() {
        // two paths from a: via n1 to PO1, direct to PO2 (buf). Fault on
        // input pin of n1 must not disturb PO2.
        let mut b = CircuitBuilder::new("pin");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("n2", GateKind::Buf, &["a"]);
        b.mark_output("n1");
        b.mark_output("n2");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let n1 = c.find("n1").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let base = engine.simulate(&stim);
        let fault = SmallDelayFault::new(PinRef::Input(n1, 0), Polarity::SlowToRise, 0.7);
        let diffs = engine.response_diff(&base, &fault, 100.0);
        assert_eq!(diffs.len(), 1, "only PO1 differs");
        assert_eq!(diffs[0].0, 0);
        let iv = diffs[0].1.as_slice()[0];
        assert!((iv.start - 1.0).abs() < 1e-12);
        assert!((iv.end - 1.7).abs() < 1e-12);
    }

    #[test]
    fn wrong_polarity_fault_is_silent() {
        let mut b = CircuitBuilder::new("pol");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.mark_output("n1");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let n1 = c.find("n1").unwrap();
        // rising stimulus, slow-to-fall fault → no visible effect
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let base = engine.simulate(&stim);
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToFall, 0.7);
        assert!(engine.response_diff(&base, &fault, 100.0).is_empty());
    }

    #[test]
    fn fault_effect_reaches_ppo() {
        // a -> n1 -> DFF; the D pin is the observation point
        let mut b = CircuitBuilder::new("ppo");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("q", GateKind::Dff, &["n1"]);
        b.add("po", GateKind::Buf, &["q"]);
        b.mark_output("po");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let n1 = c.find("n1").unwrap();
        // launch a=1 -> capture a=0 (falling)
        let stim = Stimulus::from_fn(&c, |id| (id == a, false));
        let base = engine.simulate(&stim);
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToFall, 0.3);
        let diffs = engine.response_diff(&base, &fault, 100.0);
        assert_eq!(diffs.len(), 1);
        // observe point 1 is the PPO (index 0 is the PO, which q feeds but
        // launches fresh from its own state so it never sees the fault)
        let op = c.observe_points()[diffs[0].0];
        assert!(op.is_pseudo());
    }

    #[test]
    fn planned_diff_matches_direct_diff() {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &fastmon_timing::DelayModel::nangate45_like());
        let engine = SimEngine::new(&c, &annot);
        let mut scratch = ConeScratch::new(&c);
        // several stimuli × all pins × both polarities
        for seed in 0..4u64 {
            let stim = Stimulus::from_fn(&c, |id| {
                (
                    (id.index() as u64 + seed).is_multiple_of(3),
                    (id.index() as u64 + seed).is_multiple_of(2),
                )
            });
            let base = engine.simulate(&stim);
            for gate in c.combinational_nodes() {
                let plan = ConePlan::new(&c, gate);
                let mut sites = vec![PinRef::Output(gate)];
                for k in 0..c.node(gate).fanins().len() {
                    sites.push(PinRef::Input(gate, k as u8));
                }
                for site in sites {
                    for pol in Polarity::BOTH {
                        let fault = SmallDelayFault::new(site, pol, 17.0);
                        let direct = engine.response_diff(&base, &fault, 500.0);
                        let planned =
                            engine.response_diff_planned(&base, &fault, &plan, &mut scratch, 500.0);
                        assert_eq!(direct, planned, "{fault} stim {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn cone_plan_prunes_unobserved_branches() {
        // n1 fans out to an observed path (po) and a dead-end chain
        // (d1 -> d2) that reaches no output: the dead ends are pruned
        let mut b = CircuitBuilder::new("prune");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("po", GateKind::Buf, &["n1"]);
        b.add("d1", GateKind::Buf, &["n1"]);
        b.add("d2", GateKind::Not, &["d1"]);
        b.mark_output("po");
        let c = b.finish().unwrap();
        let n1 = c.find("n1").unwrap();
        let plan = ConePlan::new(&c, n1);
        assert_eq!(plan.pruned_nodes(), 2);
        assert_eq!(plan.cone()[0], n1, "seed stays first");
        assert!(plan.cone().contains(&c.find("po").unwrap()));
        assert!(!plan.cone().contains(&c.find("d1").unwrap()));
        assert!(!plan.cone().contains(&c.find("d2").unwrap()));

        // the pruned plan still yields the exact direct-diff response
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let base = engine.simulate(&stim);
        let mut scratch = ConeScratch::new(&c);
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToRise, 0.5);
        let direct = engine.response_diff(&base, &fault, 100.0);
        let planned = engine.response_diff_planned(&base, &fault, &plan, &mut scratch, 100.0);
        assert_eq!(direct, planned);
    }

    #[test]
    fn pruning_moves_the_scoped_counter_for_unreachable_observers() {
        // Root-cause check for the "nodes_pruned_unobserved is always 0"
        // report: the counter wiring is live — what never fires on the
        // bench suite is the *trigger*, because generated netlists promote
        // dangling gates to primary outputs (fully observable by
        // construction). A cone whose branch cannot reach any observation
        // point must move the campaign-scoped counter.
        let mut b = CircuitBuilder::new("prune_scoped");
        b.add("a", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("po", GateKind::Buf, &["n1"]);
        b.add("d1", GateKind::Buf, &["n1"]);
        b.add("d2", GateKind::Not, &["d1"]);
        b.add("d3", GateKind::Buf, &["d2"]);
        b.mark_output("po");
        let c = b.finish().unwrap();
        let n1 = c.find("n1").unwrap();

        let metrics = SimMetrics::new();
        let plan = ConePlan::new_with_metrics(&c, n1, Some(&metrics));
        assert_eq!(plan.pruned_nodes(), 3);
        assert_eq!(
            metrics.nodes_pruned_unobserved.get(),
            3,
            "scoped counter must move when a cone branch reaches no observation point"
        );

        // scoped counting must not leak into a second, concurrent registry
        let other = SimMetrics::new();
        let _ = ConePlan::new_with_metrics(&c, c.find("po").unwrap(), Some(&other));
        assert_eq!(metrics.nodes_pruned_unobserved.get(), 3);
        assert_eq!(other.nodes_pruned_unobserved.get(), 0);

        // masked/simulated cone counters land in the engine's registry
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot).with_metrics(&metrics);
        let stim = Stimulus::from_fn(&c, |_| (false, false));
        let base = engine.simulate(&stim);
        let mut scratch = ConeScratch::new(&c);
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToRise, 0.5);
        let _ = engine.response_diff_planned(&base, &fault, &plan, &mut scratch, 100.0);
        assert_eq!(
            metrics.cones_simulated.get() + metrics.cones_masked.get(),
            1,
            "the cone outcome must be attributed to the scoped registry"
        );
    }

    #[test]
    fn faulty_cone_lookup_matches_membership() {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &fastmon_timing::DelayModel::nangate45_like());
        let engine = SimEngine::new(&c, &annot);
        let stim = Stimulus::from_fn(&c, |id| (id.index() % 2 == 0, id.index() % 3 == 0));
        let base = engine.simulate(&stim);
        let gate = c.combinational_nodes().next().unwrap();
        let fault = SmallDelayFault::new(PinRef::Output(gate), Polarity::SlowToRise, 3.0);
        let cone = engine.simulate_fault(&base, &fault);
        for id in c.node_ids() {
            let linear = cone
                .cone
                .iter()
                .position(|&n| n == id)
                .map(|i| &cone.waves[i]);
            assert_eq!(cone.wave(id), linear, "node {}", c.node(id).name());
        }
    }

    #[test]
    fn scratch_reuse_across_faults_is_clean() {
        // run many faults through one scratch and re-check against fresh
        // scratch results: recycled buffers must not leak state
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &fastmon_timing::DelayModel::nangate45_like());
        let engine = SimEngine::new(&c, &annot);
        let stim = Stimulus::from_fn(&c, |id| (id.index() % 3 == 0, id.index() % 2 == 0));
        let base = engine.simulate(&stim);
        let mut shared = ConeScratch::new(&c);
        for gate in c.combinational_nodes() {
            let plan = ConePlan::new(&c, gate);
            for pol in Polarity::BOTH {
                let fault = SmallDelayFault::new(PinRef::Output(gate), pol, 11.0);
                let mut fresh = ConeScratch::new(&c);
                let expect = engine.response_diff_planned(&base, &fault, &plan, &mut fresh, 400.0);
                let got = engine.response_diff_planned(&base, &fault, &plan, &mut shared, 400.0);
                assert_eq!(expect, got, "{fault}");
            }
        }
    }

    #[test]
    fn inertial_filtering_swallows_gate_pulses() {
        // reconvergent pulse: g = NAND(x, inv(x)) produces a static-1 with
        // a 1-unit glitch when x rises
        let mut b = CircuitBuilder::new("glitch");
        b.add("x", GateKind::Input, &[]);
        b.add("n", GateKind::Not, &["x"]);
        b.add("g", GateKind::Nand, &["x", "n"]);
        b.mark_output("g");
        let c = b.finish().unwrap();
        let annot2 = DelayAnnotation::nominal(&c, &fastmon_timing::DelayModel::unit());
        let x = c.find("x").unwrap();
        let g = c.find("g").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == x));
        // transport-delay engine sees the glitch
        let plain = SimEngine::new(&c, &annot2).simulate(&stim);
        assert_eq!(plain.wave(g).transitions().len(), 2, "glitch present");
        // inertial engine (pulse must be ≥ 1.5 × min delay = 1.5) kills it
        let filtered = SimEngine::new(&c, &annot2)
            .with_inertial_filtering(1.5)
            .simulate(&stim);
        assert!(filtered.wave(g).is_constant(), "glitch filtered");
    }

    #[test]
    fn masked_fault_has_no_response() {
        // AND gate with controlling 0 on the side input masks the fault
        let mut b = CircuitBuilder::new("mask");
        b.add("a", GateKind::Input, &[]);
        b.add("en", GateKind::Input, &[]);
        b.add("n1", GateKind::Buf, &["a"]);
        b.add("g", GateKind::And, &["n1", "en"]);
        b.mark_output("g");
        let c = b.finish().unwrap();
        let (annot, ()) = unit_engine(&c);
        let engine = SimEngine::new(&c, &annot);
        let a = c.find("a").unwrap();
        // en stays 0 → fault on n1 can never propagate
        let stim = Stimulus::from_fn(&c, |id| (false, id == a));
        let base = engine.simulate(&stim);
        let n1 = c.find("n1").unwrap();
        let fault = SmallDelayFault::new(PinRef::Output(n1), Polarity::SlowToRise, 0.5);
        assert!(engine.response_diff(&base, &fault, 100.0).is_empty());
    }
}
