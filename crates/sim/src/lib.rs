//! Timing-accurate waveform simulation for the `fastmon` toolkit.
//!
//! This crate is the CPU replacement for the GPU-based small-delay fault
//! simulator the paper uses (Schneider et al., TCAD 2017): it computes the
//! *complete transition waveform* of every net for a two-vector test, injects
//! small delay faults, re-simulates only the fault's fanout cone, and
//! reports the time intervals at which faulty and fault-free output
//! waveforms differ — the raw material of detection ranges.
//!
//! * [`Waveform`] — initial value plus sorted transition times, with
//!   transport-delay shifting, polarity-selective delays (fault injection)
//!   and pulse-annihilation normalization,
//! * [`Stimulus`] — a two-vector (launch/capture) input assignment,
//! * [`SimEngine`] — full-circuit simulation and cone-restricted faulty
//!   re-simulation,
//! * [`parallel_map`] / [`parallel_map_with`] — a work-stealing scoped-thread
//!   pool to fan simulations out over campaign work items,
//! * [`stats`] — process-wide campaign counters (cones simulated, nodes
//!   pruned, waveform allocations).
//!
//! # Example
//!
//! ```
//! use fastmon_netlist::library;
//! use fastmon_sim::{SimEngine, Stimulus};
//! use fastmon_timing::{DelayAnnotation, DelayModel};
//!
//! let circuit = library::c17();
//! let annot = DelayAnnotation::nominal(&circuit, &DelayModel::unit());
//! let engine = SimEngine::new(&circuit, &annot);
//! // launch all-zeros, capture all-ones
//! let stim = Stimulus::from_fn(&circuit, |_| (false, true));
//! let result = engine.simulate(&stim);
//! let out = circuit.find("N22").unwrap();
//! // N22 settles within the three levels of unit-delay NANDs
//! assert_eq!(result.wave(out).value_at(4.0), result.wave(out).final_value());
//! ```

// Robustness gate: library code must not `unwrap`/`expect` (tests are
// exempt); structurally-infallible invariants use explicit `unreachable!`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
mod engine;
mod parallel;
mod screen;
mod stimulus;
mod waveform;

pub mod stats;
pub mod vcd;

pub use engine::{ConePlan, ConeScratch, FaultyCone, PlanScratch, SimEngine, SimResult, SpareBank};
pub use parallel::{parallel_map, parallel_map_with, try_parallel_map_with, WorkerPanic};
pub use screen::{has_polarity_transition, FaultScreen, ScreenGroup, ScreenScratch};
pub use stimulus::Stimulus;
pub use waveform::{eval_gate, eval_gate_into, EvalScratch, Waveform};
