use fastmon_netlist::{Circuit, NodeId};

/// A two-vector test stimulus: launch and capture values for every
/// combinational source (primary inputs and flip-flop states).
///
/// At `t = 0` every source switches from its launch value `v1` to its
/// capture value `v2` (enhanced-scan two-vector semantics); the circuit then
/// settles and responses are captured at the observation time under test.
///
/// # Example
///
/// ```
/// use fastmon_netlist::library;
/// use fastmon_sim::Stimulus;
///
/// let circuit = library::c17();
/// let stim = Stimulus::from_fn(&circuit, |id| (id.index() % 2 == 0, true));
/// let first = circuit.inputs()[0];
/// assert_eq!(stim.launch(first), first.index() % 2 == 0);
/// assert!(stim.capture(first));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    v1: Vec<bool>,
    v2: Vec<bool>,
}

impl Stimulus {
    /// Builds a stimulus by evaluating `f(source) -> (launch, capture)` for
    /// every node. Values are stored densely by node id; only sources are
    /// ever read by the engine.
    #[must_use]
    pub fn from_fn<F: Fn(NodeId) -> (bool, bool)>(circuit: &Circuit, f: F) -> Self {
        let mut v1 = vec![false; circuit.len()];
        let mut v2 = vec![false; circuit.len()];
        for id in circuit.combinational_sources() {
            let (a, b) = f(id);
            v1[id.index()] = a;
            v2[id.index()] = b;
        }
        Stimulus { v1, v2 }
    }

    /// Builds a stimulus from dense per-node vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn from_vectors(v1: Vec<bool>, v2: Vec<bool>) -> Self {
        assert_eq!(v1.len(), v2.len(), "launch/capture length mismatch");
        Stimulus { v1, v2 }
    }

    /// The launch (first vector) value of `source`.
    #[must_use]
    pub fn launch(&self, source: NodeId) -> bool {
        self.v1[source.index()]
    }

    /// The capture (second vector) value of `source`.
    #[must_use]
    pub fn capture(&self, source: NodeId) -> bool {
        self.v2[source.index()]
    }

    /// Whether `source` transitions at launch.
    #[must_use]
    pub fn toggles(&self, source: NodeId) -> bool {
        self.v1[source.index()] != self.v2[source.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;

    #[test]
    fn toggles_detects_changes() {
        let c = library::s27();
        let pi = c.inputs()[0];
        let s = Stimulus::from_fn(&c, |id| (id == pi, false));
        assert!(s.toggles(pi));
        assert!(!s.toggles(c.inputs()[1]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_vectors_panic() {
        let _ = Stimulus::from_vectors(vec![true], vec![true, false]);
    }
}
