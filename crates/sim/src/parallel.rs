use std::any::Any;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A worker panic caught by [`try_parallel_map_with`].
///
/// The original payload is preserved, so infallible wrappers can
/// [`resume`](WorkerPanic::resume) it unchanged while fallible campaign
/// code converts it into a typed error via [`message`](WorkerPanic::message).
pub struct WorkerPanic {
    payload: Box<dyn Any + Send + 'static>,
}

impl WorkerPanic {
    /// A human-readable rendering of the panic payload (`&str`/`String`
    /// payloads verbatim, anything else a placeholder).
    #[must_use]
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked with a non-string payload".to_string()
        }
    }

    /// Re-raises the original panic on the calling thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkerPanic({:?})", self.message())
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked: {}", self.message())
    }
}

/// Largest index space a single work-stealing pool round handles; larger
/// inputs fall back to sequential rounds of this size (the packed range
/// representation stores `begin`/`end` as `u32` halves).
const CHUNK_CAP: usize = u32::MAX as usize;

/// Applies `f` to every index in `0..n` using up to `threads` worker
/// threads, returning the results in index order.
///
/// Work is distributed by range stealing (see [`parallel_map_with`]), so
/// uneven per-item cost — typical for fault simulation, where cone sizes
/// vary wildly — does not serialize the run. With `threads <= 1` the
/// function degrades to a plain sequential map with no thread overhead.
///
/// # Example
///
/// ```
/// let squares = fastmon_sim::parallel_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, threads, || (), |(), i| f(i))
}

/// Like [`parallel_map`], but every worker thread carries a private mutable
/// state created once by `init` — the hook for reusable scratch buffers in
/// allocation-free hot loops.
///
/// # Scheduling
///
/// A work-stealing range pool: each worker starts with a contiguous slice
/// of the index space and pops items from its front. A worker whose slice
/// is exhausted steals the upper half of the largest remaining slice
/// (lock-free, one CAS per claim). This keeps hot caches on the common
/// path (consecutive indices share inputs), while uneven item costs are
/// rebalanced at half-range granularity instead of a single global cursor
/// that all threads contend on.
///
/// Results are written to disjoint output slots, so they are returned in
/// index order regardless of which worker computed them — callers observe
/// a deterministic result independent of `threads`.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread (workers are
/// isolated with `catch_unwind`, so a panicking item never aborts the
/// process before the pool has drained; use [`try_parallel_map_with`] to
/// receive it as a value instead). Index spaces larger than `u32::MAX`
/// are handled by chunked fallback rounds rather than panicking.
pub fn parallel_map_with<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    match try_parallel_map_with(n, threads, init, f) {
        Ok(out) => out,
        Err(panic) => panic.resume(),
    }
}

/// Panic-isolating variant of [`parallel_map_with`]: a panicking item is
/// caught (`catch_unwind`), the remaining workers stop claiming new work
/// and drain, and the first panic comes back as a [`WorkerPanic`] value —
/// the process never aborts, and campaign code can surface a typed error.
///
/// Index spaces larger than `u32::MAX` (the packed range representation)
/// are processed in sequential chunked rounds of at most `u32::MAX` items
/// each — per-worker state is re-created per round, results stay in index
/// order.
///
/// Each item consults the `parallel_worker` failpoint
/// (`fastmon_obs::failpoints`); because worker items have no error
/// channel, *both* failpoint actions surface as a contained panic here.
///
/// # Errors
///
/// Returns the first caught worker panic; any items not yet claimed when
/// the panic hit are skipped (their results are discarded anyway).
pub fn try_parallel_map_with<T, S, I, F>(
    n: usize,
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    try_parallel_map_chunked(n, threads, CHUNK_CAP, init, f)
}

/// Chunked driver behind [`try_parallel_map_with`]; `cap` is a parameter
/// (instead of the `CHUNK_CAP` constant) so tests can exercise the
/// multi-round path without allocating 2^32 items.
fn try_parallel_map_chunked<T, S, I, F>(
    n: usize,
    threads: usize,
    cap: usize,
    init: I,
    f: F,
) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let cap = cap.max(1);
    let mut out: Vec<T> = Vec::with_capacity(n);
    let mut base = 0usize;
    while base < n {
        let len = (n - base).min(cap);
        run_round(base, len, threads, &init, &f, &mut out)?;
        base += len;
    }
    Ok(out)
}

/// Runs one pool round over global indices `base..base + len`, appending
/// results (in index order) to `out`.
fn run_round<T, S, I, F>(
    base: usize,
    len: usize,
    threads: usize,
    init: &I,
    f: &F,
    out: &mut Vec<T>,
) -> Result<(), WorkerPanic>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || len <= 1 {
        let mut state = init();
        for i in 0..len {
            out.push(run_item(f, &mut state, base + i).map_err(|payload| WorkerPanic { payload })?);
        }
        return Ok(());
    }
    let threads = threads.min(len);

    // per-worker (begin, end) ranges, packed into one atomic each
    let slots: Vec<AtomicU64> = (0..threads)
        .map(|w| AtomicU64::new(pack(w * len / threads, (w + 1) * len / threads)))
        .collect();

    let mut round: Vec<Option<T>> = Vec::with_capacity(len);
    round.resize_with(len, || None);
    let out_ptr = SendPtr(round.as_mut_ptr());

    // Set on the first contained panic; workers observe it and stop
    // claiming new items so the scope drains promptly.
    let abort = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let init = &init;
            let f = &f;
            let abort = &abort;
            let first_panic = &first_panic;
            scope.spawn(move || {
                let mut state = init();
                while !abort.load(Ordering::Relaxed) {
                    let Some(i) = claim(slots, w) else { break };
                    match run_item(f, &mut state, base + i) {
                        // SAFETY: each index is claimed by exactly one
                        // worker (see `claim`), so writes to disjoint
                        // slots never alias; the vec outlives the scope.
                        Ok(value) => unsafe { out_ptr.write(i, Some(value)) },
                        Err(payload) => {
                            let mut guard =
                                first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.get_or_insert(payload);
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });

    let caught = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(payload) = caught {
        return Err(WorkerPanic { payload });
    }
    out.extend(
        round
            .into_iter()
            .map(|v| v.unwrap_or_else(|| unreachable!("every index was processed"))),
    );
    Ok(())
}

/// Executes one item under `catch_unwind`, consulting the
/// `parallel_worker` failpoint first.
fn run_item<T, S, F>(f: &F, state: &mut S, i: usize) -> Result<T, Box<dyn Any + Send>>
where
    F: Fn(&mut S, usize) -> T,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Err(injected) = fastmon_obs::failpoints::fire("parallel_worker") {
            // No error channel per item: surface err-actions as a
            // contained panic too.
            panic!("{injected}");
        }
        f(state, i)
    }))
}

/// Packs a `[begin, end)` index range into one `u64`.
fn pack(begin: usize, end: usize) -> u64 {
    ((begin as u64) << 32) | end as u64
}

/// Unpacks a `[begin, end)` index range.
#[allow(clippy::cast_possible_truncation)]
fn unpack(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize)
}

/// Claims the next work item for worker `w`: first from its own range,
/// then by stealing the upper half of the largest other range. Returns
/// `None` when no claimable work remains anywhere.
fn claim(slots: &[AtomicU64], w: usize) -> Option<usize> {
    // fast path: pop from the worker's own range front
    loop {
        let cur = slots[w].load(Ordering::SeqCst);
        let (begin, end) = unpack(cur);
        if begin >= end {
            break;
        }
        if slots[w]
            .compare_exchange_weak(
                cur,
                pack(begin + 1, end),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            return Some(begin);
        }
    }
    // steal: largest victim range, upper half
    loop {
        let mut best: Option<(usize, u64, usize, usize)> = None;
        for (v, slot) in slots.iter().enumerate() {
            if v == w {
                continue;
            }
            let cur = slot.load(Ordering::SeqCst);
            let (begin, end) = unpack(cur);
            if begin < end && best.is_none_or(|(_, _, b, e)| end - begin > e - b) {
                best = Some((v, cur, begin, end));
            }
        }
        let (victim, cur, begin, end) = best?;
        // leave [begin, mid) with the victim, take [mid, end)
        let mid = begin + (end - begin) / 2;
        let mid = mid.max(begin); // len 1 → steal the single item
        if slots[victim]
            .compare_exchange(cur, pack(begin, mid), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // publish the stolen remainder before working on `mid`
            slots[w].store(pack(mid + 1, end), Ordering::SeqCst);
            return Some(mid);
        }
        // lost the race — rescan
    }
}

/// A raw pointer wrapper that is `Send`/`Copy` so worker threads can write
/// disjoint slots of the shared output buffer.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Writes `value` to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that slot `i` is in bounds, not aliased by
    /// a concurrent writer, and that the underlying buffer outlives the
    /// call.
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: forwarded to the caller's contract.
        unsafe { *self.0.add(i) = value };
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only used to write disjoint indices, coordinated
// by the range pool, inside a thread scope that the buffer outlives.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let par = parallel_map(1000, 8, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_work_is_completed() {
        let par = parallel_map(64, 4, |i| {
            // simulate uneven cost
            let mut acc = 0usize;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, item) in par.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        parallel_map(500, 8, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn per_worker_state_is_reused() {
        // each worker's state counts its items; the sum must equal n
        let n = 300;
        let counts: Vec<usize> = parallel_map_with(
            n,
            4,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        // the per-item value is the worker-local running count, so the
        // maximum over all items of each worker equals its item share;
        // globally, every item got exactly one value >= 1
        assert_eq!(counts.len(), n);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn worker_panic_is_contained_and_typed() {
        let res = try_parallel_map_with(
            200,
            4,
            || (),
            |(), i| {
                assert!(i != 137, "boom at {i}");
                i * 2
            },
        );
        let panic = res.expect_err("the panicking item must surface as Err");
        assert!(panic.message().contains("boom at 137"), "{panic}");
    }

    #[test]
    fn sequential_panic_is_contained_too() {
        let res =
            try_parallel_map_with(8, 1, || (), |(), i| if i == 3 { panic!("seq") } else { i });
        assert!(res.expect_err("sequential path must contain too").message() == "seq");
    }

    #[test]
    fn parallel_map_with_still_propagates_panics() {
        // Infallible wrapper keeps the historical contract: the original
        // payload is re-raised on the caller.
        let caught = std::panic::catch_unwind(|| {
            parallel_map(16, 2, |i| {
                assert!(i != 5, "legacy propagate");
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("legacy propagate"), "{msg}");
    }

    // Satellite regression: index spaces beyond the packed-u32 range fall
    // back to chunked rounds instead of the old
    // `assert!(u32::try_from(n).is_ok())` panic. Exercised with a small
    // cap so the test does not allocate 2^32 items.
    #[test]
    fn chunked_fallback_matches_sequential() {
        for (n, cap, threads) in [(23, 7, 4), (10, 10, 4), (11, 10, 4), (5, 1, 2), (0, 3, 4)] {
            let seq: Vec<usize> = (0..n).map(|i| i * 31 + 1).collect();
            let chunked =
                try_parallel_map_chunked(n, threads, cap, || (), |(), i| i * 31 + 1).unwrap();
            assert_eq!(seq, chunked, "n={n} cap={cap} threads={threads}");
        }
    }

    #[test]
    fn chunked_fallback_contains_panics_in_later_rounds() {
        let res = try_parallel_map_chunked(
            30,
            4,
            8,
            || (),
            |(), i| {
                assert!(i != 27, "late-round boom");
                i
            },
        );
        assert!(res
            .expect_err("panic in round 4 must be contained")
            .message()
            .contains("late-round boom"));
    }

    #[test]
    fn skewed_single_heavy_tail_balances() {
        // one block of indices is 100× heavier; stealing must still finish
        // and return correct results
        let par = parallel_map(256, 8, |i| {
            let rounds = if i < 32 { 20_000 } else { 200 };
            let mut acc = 0u64;
            for k in 0..rounds {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, item) in par.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
