use std::sync::atomic::{AtomicU64, Ordering};

/// Applies `f` to every index in `0..n` using up to `threads` worker
/// threads, returning the results in index order.
///
/// Work is distributed by range stealing (see [`parallel_map_with`]), so
/// uneven per-item cost — typical for fault simulation, where cone sizes
/// vary wildly — does not serialize the run. With `threads <= 1` the
/// function degrades to a plain sequential map with no thread overhead.
///
/// # Example
///
/// ```
/// let squares = fastmon_sim::parallel_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, threads, || (), |(), i| f(i))
}

/// Like [`parallel_map`], but every worker thread carries a private mutable
/// state created once by `init` — the hook for reusable scratch buffers in
/// allocation-free hot loops.
///
/// # Scheduling
///
/// A work-stealing range pool: each worker starts with a contiguous slice
/// of the index space and pops items from its front. A worker whose slice
/// is exhausted steals the upper half of the largest remaining slice
/// (lock-free, one CAS per claim). This keeps hot caches on the common
/// path (consecutive indices share inputs), while uneven item costs are
/// rebalanced at half-range granularity instead of a single global cursor
/// that all threads contend on.
///
/// Results are written to disjoint output slots, so they are returned in
/// index order regardless of which worker computed them — callers observe
/// a deterministic result independent of `threads`.
///
/// # Panics
///
/// Panics if `n` does not fit `u32` (the packed range representation).
pub fn parallel_map_with<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    assert!(u32::try_from(n).is_ok(), "index space must fit u32");
    let threads = threads.min(n);

    // per-worker (begin, end) ranges, packed into one atomic each
    let slots: Vec<AtomicU64> = (0..threads)
        .map(|w| AtomicU64::new(pack(w * n / threads, (w + 1) * n / threads)))
        .collect();

    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out_ptr = SendPtr(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                while let Some(i) = claim(slots, w) {
                    let value = f(&mut state, i);
                    // SAFETY: each index is claimed by exactly one worker
                    // (see `claim`), so writes to disjoint slots never
                    // alias; the vec outlives the scope.
                    unsafe { out_ptr.write(i, Some(value)) };
                }
            });
        }
    });

    out.into_iter()
        .map(|v| v.unwrap_or_else(|| unreachable!("every index was processed")))
        .collect()
}

/// Packs a `[begin, end)` index range into one `u64`.
fn pack(begin: usize, end: usize) -> u64 {
    ((begin as u64) << 32) | end as u64
}

/// Unpacks a `[begin, end)` index range.
#[allow(clippy::cast_possible_truncation)]
fn unpack(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & 0xffff_ffff) as usize)
}

/// Claims the next work item for worker `w`: first from its own range,
/// then by stealing the upper half of the largest other range. Returns
/// `None` when no claimable work remains anywhere.
fn claim(slots: &[AtomicU64], w: usize) -> Option<usize> {
    // fast path: pop from the worker's own range front
    loop {
        let cur = slots[w].load(Ordering::SeqCst);
        let (begin, end) = unpack(cur);
        if begin >= end {
            break;
        }
        if slots[w]
            .compare_exchange_weak(
                cur,
                pack(begin + 1, end),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            return Some(begin);
        }
    }
    // steal: largest victim range, upper half
    loop {
        let mut best: Option<(usize, u64, usize, usize)> = None;
        for (v, slot) in slots.iter().enumerate() {
            if v == w {
                continue;
            }
            let cur = slot.load(Ordering::SeqCst);
            let (begin, end) = unpack(cur);
            if begin < end && best.is_none_or(|(_, _, b, e)| end - begin > e - b) {
                best = Some((v, cur, begin, end));
            }
        }
        let (victim, cur, begin, end) = best?;
        // leave [begin, mid) with the victim, take [mid, end)
        let mid = begin + (end - begin) / 2;
        let mid = mid.max(begin); // len 1 → steal the single item
        if slots[victim]
            .compare_exchange(cur, pack(begin, mid), Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            // publish the stolen remainder before working on `mid`
            slots[w].store(pack(mid + 1, end), Ordering::SeqCst);
            return Some(mid);
        }
        // lost the race — rescan
    }
}

/// A raw pointer wrapper that is `Send`/`Copy` so worker threads can write
/// disjoint slots of the shared output buffer.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Writes `value` to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that slot `i` is in bounds, not aliased by
    /// a concurrent writer, and that the underlying buffer outlives the
    /// call.
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: forwarded to the caller's contract.
        unsafe { *self.0.add(i) = value };
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only used to write disjoint indices, coordinated
// by the range pool, inside a thread scope that the buffer outlives.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let par = parallel_map(1000, 8, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_work_is_completed() {
        let par = parallel_map(64, 4, |i| {
            // simulate uneven cost
            let mut acc = 0usize;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, item) in par.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        parallel_map(500, 8, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn per_worker_state_is_reused() {
        // each worker's state counts its items; the sum must equal n
        let n = 300;
        let counts: Vec<usize> = parallel_map_with(
            n,
            4,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        // the per-item value is the worker-local running count, so the
        // maximum over all items of each worker equals its item share;
        // globally, every item got exactly one value >= 1
        assert_eq!(counts.len(), n);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn skewed_single_heavy_tail_balances() {
        // one block of indices is 100× heavier; stealing must still finish
        // and return correct results
        let par = parallel_map(256, 8, |i| {
            let rounds = if i < 32 { 20_000 } else { 200 };
            let mut acc = 0u64;
            for k in 0..rounds {
                acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, item) in par.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
