use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n` using up to `threads` worker
/// threads, returning the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-item
/// cost — typical for fault simulation, where cone sizes vary wildly — does
/// not serialize the run. With `threads <= 1` the function degrades to a
/// plain sequential map with no thread overhead.
///
/// # Example
///
/// ```
/// let squares = fastmon_sim::parallel_map(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out_ptr = SendPtr(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                // SAFETY: each index i is claimed by exactly one thread via
                // the atomic counter, so writes to disjoint slots never
                // alias; the vec outlives the scope.
                unsafe { out_ptr.write(i, Some(value)) };
            });
        }
    });

    out.into_iter()
        .map(|v| v.expect("every index was processed"))
        .collect()
}

/// A raw pointer wrapper that is `Send`/`Copy` so worker threads can write
/// disjoint slots of the shared output buffer.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Writes `value` to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that slot `i` is in bounds, not aliased by
    /// a concurrent writer, and that the underlying buffer outlives the
    /// call.
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: forwarded to the caller's contract.
        unsafe { *self.0.add(i) = value };
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only used to write disjoint indices, coordinated
// by an atomic cursor, inside a thread scope that the buffer outlives.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let par = parallel_map(1000, 8, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_work_is_completed() {
        let par = parallel_map(64, 4, |i| {
            // simulate uneven cost
            let mut acc = 0usize;
            for k in 0..(i % 7) * 1000 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, item) in par.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }
}
