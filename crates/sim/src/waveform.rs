use std::fmt;

use fastmon_faults::{Interval, IntervalSet, Polarity};
use fastmon_timing::Time;

/// A binary signal over time: an initial value and a strictly increasing
/// list of toggle instants.
///
/// The value at a transition instant is the *new* value (left-closed
/// semantics), matching the half-open intervals of
/// [`IntervalSet`](fastmon_faults::IntervalSet).
///
/// # Example
///
/// ```
/// use fastmon_sim::Waveform;
///
/// let w = Waveform::with_transitions(false, vec![2.0, 5.0]);
/// assert!(!w.value_at(1.9));
/// assert!(w.value_at(2.0));
/// assert!(!w.value_at(5.0));
/// assert_eq!(w.final_value(), false);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    initial: bool,
    transitions: Vec<Time>,
}

impl Waveform {
    /// A constant signal.
    #[must_use]
    pub fn constant(value: bool) -> Self {
        Waveform {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// A signal that is `before` until time `t` and `after` from `t` on.
    /// If `before == after` the result is constant.
    #[must_use]
    pub fn step(before: bool, after: bool, t: Time) -> Self {
        if before == after {
            Waveform::constant(before)
        } else {
            Waveform {
                initial: before,
                transitions: vec![t],
            }
        }
    }

    /// Builds a waveform from an initial value and toggle instants.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `transitions` is not strictly
    /// increasing.
    #[must_use]
    pub fn with_transitions(initial: bool, transitions: Vec<Time>) -> Self {
        debug_assert!(
            transitions.windows(2).all(|w| w[0] < w[1]),
            "transitions must be strictly increasing"
        );
        Waveform {
            initial,
            transitions,
        }
    }

    /// The value before the first transition.
    #[must_use]
    pub fn initial(&self) -> bool {
        self.initial
    }

    /// The value after the last transition.
    #[must_use]
    pub fn final_value(&self) -> bool {
        self.initial ^ (self.transitions.len() % 2 == 1)
    }

    /// The toggle instants.
    #[must_use]
    pub fn transitions(&self) -> &[Time] {
        &self.transitions
    }

    /// Consumes the waveform and returns its transition buffer, so hot
    /// loops can recycle the allocation for the next waveform.
    #[must_use]
    pub fn into_transitions(self) -> Vec<Time> {
        self.transitions
    }

    /// Returns `true` if the signal never toggles.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The signal value at time `t` (a capture at `t` samples this value).
    #[must_use]
    pub fn value_at(&self, t: Time) -> bool {
        let toggles = self.transitions.partition_point(|&x| x <= t);
        self.initial ^ (toggles % 2 == 1)
    }

    /// Time of the last transition, or `None` for constant signals.
    #[must_use]
    pub fn last_transition(&self) -> Option<Time> {
        self.transitions.last().copied()
    }

    /// The waveform delayed by `d` (transport delay on every edge).
    #[must_use]
    pub fn delayed(&self, d: Time) -> Self {
        Waveform {
            initial: self.initial,
            transitions: self.transitions.iter().map(|&t| t + d).collect(),
        }
    }

    /// The waveform with transitions of one polarity delayed by `d` — the
    /// effect of a small delay fault of that polarity at this signal.
    ///
    /// If a delayed edge overtakes the following opposite edge, both
    /// annihilate (the pulse is swallowed by the slow transition), which is
    /// the standard lumped-delay-fault pulse behaviour.
    #[must_use]
    pub fn delayed_polarity(&self, d: Time, polarity: Polarity) -> Self {
        if d == 0.0 || self.transitions.is_empty() {
            return self.clone();
        }
        let mut out: Vec<Time> = Vec::with_capacity(self.transitions.len());
        let mut value = self.initial;
        for &t in &self.transitions {
            let new_value = !value;
            value = new_value;
            let shifted = if polarity.affects(new_value) {
                t + d
            } else {
                t
            };
            match out.last() {
                Some(&last) if shifted <= last => {
                    // the delayed edge crossed the previous one: both vanish
                    out.pop();
                }
                _ => out.push(shifted),
            }
        }
        Waveform {
            initial: self.initial,
            transitions: out,
        }
    }

    /// The waveform with every pulse narrower than `min_width` removed —
    /// inertial filtering, modeling that a gate's output cannot sustain
    /// pulses shorter than its switching time.
    ///
    /// Cancellation cascades: when removing a narrow pulse brings its
    /// neighbours within `min_width` of each other, they are *not* merged
    /// into a new pulse (two removed transitions leave the signal at its
    /// previous value, so the neighbours now bound a wider, legitimate
    /// pulse).
    ///
    /// # Example
    ///
    /// ```
    /// use fastmon_sim::Waveform;
    ///
    /// let w = Waveform::with_transitions(false, vec![10.0, 10.4, 20.0, 30.0]);
    /// let filtered = w.filter_pulses(1.0);
    /// assert_eq!(filtered.transitions(), &[20.0, 30.0]);
    /// ```
    #[must_use]
    pub fn filter_pulses(&self, min_width: f64) -> Self {
        if min_width <= 0.0 || self.transitions.len() < 2 {
            return self.clone();
        }
        let mut out: Vec<Time> = Vec::with_capacity(self.transitions.len());
        for &t in &self.transitions {
            match out.last() {
                Some(&last) if t - last < min_width => {
                    out.pop();
                }
                _ => out.push(t),
            }
        }
        Waveform {
            initial: self.initial,
            transitions: out,
        }
    }

    /// The times at which `self` and `other` carry different values, as a
    /// set of half-open intervals — the XOR of the two waveforms
    /// (Sec. III-B of the paper: detection ranges are computed by XOR-ing
    /// fault-free and faulty output waveforms).
    ///
    /// A trailing difference (different final values) is closed at
    /// `horizon`.
    #[must_use]
    pub fn diff(&self, other: &Waveform, horizon: Time) -> IntervalSet {
        let mut out = IntervalSet::new();
        let mut va = self.initial;
        let mut vb = other.initial;
        let mut differ_since: Option<Time> = if va != vb {
            Some(f64::NEG_INFINITY)
        } else {
            None
        };
        let (mut i, mut j) = (0usize, 0usize);
        let a = &self.transitions;
        let b = &other.transitions;
        while i < a.len() || j < b.len() {
            let ta = a.get(i).copied().unwrap_or(f64::INFINITY);
            let tb = b.get(j).copied().unwrap_or(f64::INFINITY);
            let t = ta.min(tb);
            if ta <= t {
                va = !va;
                i += 1;
            }
            if tb <= t {
                vb = !vb;
                j += 1;
            }
            match (differ_since, va != vb) {
                (None, true) => differ_since = Some(t),
                (Some(since), false) => {
                    out.insert(Interval::new(since.max(0.0), t));
                    differ_since = None;
                }
                _ => {}
            }
        }
        if let Some(since) = differ_since {
            out.insert(Interval::new(since.max(0.0), horizon));
        }
        out
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", u8::from(self.initial))?;
        for &t in &self.transitions {
            write!(f, " @{t}⇄")?;
        }
        Ok(())
    }
}

/// Reusable per-thread buffers for [`eval_gate_into`]: input values and
/// event cursors, sized to the widest gate seen so far.
#[derive(Debug, Default)]
pub struct EvalScratch {
    values: Vec<bool>,
    cursors: Vec<usize>,
}

impl EvalScratch {
    /// Fresh (empty) scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// Evaluates a gate's output waveform from its input waveforms.
///
/// The gate is a transport-delay element with separate rise/fall delays;
/// edges that would reorder (a slow rise overtaken by a fast fall)
/// annihilate pairwise.
#[must_use]
pub fn eval_gate(
    kind: fastmon_netlist::GateKind,
    inputs: &[&Waveform],
    rise_delay: Time,
    fall_delay: Time,
) -> Waveform {
    let mut scratch = EvalScratch::new();
    let mut transitions = Vec::new();
    let initial = eval_gate_into(
        kind,
        inputs.len(),
        |k| inputs[k],
        rise_delay,
        fall_delay,
        &mut scratch,
        &mut transitions,
    );
    Waveform {
        initial,
        transitions,
    }
}

/// Allocation-free core of [`eval_gate`]: inputs come from an accessor
/// instead of a collected slice, working buffers come from `scratch`, and
/// the output transitions land in `out` (cleared first). Returns the
/// output's initial value.
///
/// Campaign hot loops call this with recycled `out` buffers so steady-state
/// fault simulation performs no per-gate heap allocation.
pub fn eval_gate_into<'a, F>(
    kind: fastmon_netlist::GateKind,
    num_inputs: usize,
    input: F,
    rise_delay: Time,
    fall_delay: Time,
    scratch: &mut EvalScratch,
    out: &mut Vec<Time>,
) -> bool
where
    F: Fn(usize) -> &'a Waveform,
{
    scratch.values.clear();
    scratch.cursors.clear();
    for k in 0..num_inputs {
        scratch.values.push(input(k).initial());
        scratch.cursors.push(0);
    }
    let initial = kind.eval(&scratch.values);

    // merge all input events in time order
    out.clear();
    let mut current = initial;
    loop {
        // earliest pending event time
        let mut t = f64::INFINITY;
        for k in 0..num_inputs {
            if let Some(&tt) = input(k).transitions().get(scratch.cursors[k]) {
                t = t.min(tt);
            }
        }
        if t.is_infinite() {
            break;
        }
        // apply all events at exactly time t (simultaneous toggles)
        for k in 0..num_inputs {
            while input(k)
                .transitions()
                .get(scratch.cursors[k])
                .is_some_and(|&tt| tt == t)
            {
                scratch.values[k] = !scratch.values[k];
                scratch.cursors[k] += 1;
            }
        }
        let new_value = kind.eval(&scratch.values);
        if new_value != current {
            current = new_value;
            let delay = if new_value { rise_delay } else { fall_delay };
            let shifted = t + delay;
            match out.last() {
                Some(&last) if shifted <= last => {
                    out.pop();
                }
                _ => out.push(shifted),
            }
        }
    }
    initial
}

/// In-place variant of [`Waveform::filter_pulses`] over a raw transition
/// buffer, for hot loops that have not yet wrapped it in a waveform.
pub fn filter_pulses_in_place(transitions: &mut Vec<Time>, min_width: f64) {
    if min_width <= 0.0 || transitions.len() < 2 {
        return;
    }
    let mut w = 0usize;
    for i in 0..transitions.len() {
        let t = transitions[i];
        if w > 0 && t - transitions[w - 1] < min_width {
            w -= 1;
        } else {
            transitions[w] = t;
            w += 1;
        }
    }
    transitions.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::GateKind;
    use proptest::prelude::*;

    #[test]
    fn value_semantics() {
        let w = Waveform::with_transitions(true, vec![1.0, 3.0, 7.0]);
        assert!(w.value_at(0.0));
        assert!(!w.value_at(1.0)); // new value at the instant
        assert!(w.value_at(3.0));
        assert!(!w.value_at(7.0));
        assert!(!w.value_at(100.0));
        assert!(!w.final_value());
    }

    #[test]
    fn step_collapses_equal() {
        assert!(Waveform::step(true, true, 0.0).is_constant());
        let s = Waveform::step(false, true, 0.0);
        assert_eq!(s.transitions(), &[0.0]);
    }

    #[test]
    fn delayed_shifts_all() {
        let w = Waveform::with_transitions(false, vec![1.0, 2.0]);
        assert_eq!(w.delayed(3.0).transitions(), &[4.0, 5.0]);
        assert!(!w.delayed(3.0).initial());
    }

    #[test]
    fn polarity_delay_moves_only_matching_edges() {
        let w = Waveform::with_transitions(false, vec![10.0, 20.0]); // rise@10 fall@20
        let slow_rise = w.delayed_polarity(3.0, Polarity::SlowToRise);
        assert_eq!(slow_rise.transitions(), &[13.0, 20.0]);
        let slow_fall = w.delayed_polarity(3.0, Polarity::SlowToFall);
        assert_eq!(slow_fall.transitions(), &[10.0, 23.0]);
    }

    #[test]
    fn polarity_delay_swallows_short_pulse() {
        // pulse [10, 12): a slow-to-rise of 5 swallows it
        let w = Waveform::with_transitions(false, vec![10.0, 12.0]);
        let faulty = w.delayed_polarity(5.0, Polarity::SlowToRise);
        assert!(faulty.is_constant());
        assert!(!faulty.initial());
        // slow-to-fall keeps the pulse but stretches it
        let faulty = w.delayed_polarity(5.0, Polarity::SlowToFall);
        assert_eq!(faulty.transitions(), &[10.0, 17.0]);
    }

    #[test]
    fn polarity_delay_merges_pulses() {
        // r@10 f@12 r@13 f@20, slow rise 5 → first pulse dies, second
        // becomes [18, 20)
        let w = Waveform::with_transitions(false, vec![10.0, 12.0, 13.0, 20.0]);
        let faulty = w.delayed_polarity(5.0, Polarity::SlowToRise);
        assert_eq!(faulty.transitions(), &[18.0, 20.0]);
    }

    #[test]
    fn filter_pulses_removes_narrow_only() {
        let w = Waveform::with_transitions(true, vec![5.0, 5.2, 9.0, 20.0, 20.3, 40.0]);
        let f = w.filter_pulses(1.0);
        assert_eq!(f.transitions(), &[9.0, 40.0]);
        assert!(f.initial());
        // zero width is the identity
        assert_eq!(w.filter_pulses(0.0), w);
    }

    #[test]
    fn filter_pulses_preserves_final_value() {
        let w = Waveform::with_transitions(false, vec![1.0, 1.1, 2.0, 2.05, 3.0]);
        let f = w.filter_pulses(0.5);
        assert_eq!(f.final_value(), w.final_value());
        assert_eq!(f.transitions(), &[3.0]);
    }

    #[test]
    fn filter_in_place_matches_filter_pulses() {
        for width in [0.0, 0.5, 1.0, 5.0] {
            let w = Waveform::with_transitions(true, vec![5.0, 5.2, 9.0, 20.0, 20.3, 40.0]);
            let expect = w.filter_pulses(width);
            let mut ts = w.transitions().to_vec();
            filter_pulses_in_place(&mut ts, width);
            assert_eq!(ts, expect.transitions(), "width {width}");
        }
    }

    #[test]
    fn eval_gate_into_matches_eval_gate() {
        let a = Waveform::with_transitions(false, vec![1.0, 4.0, 9.0]);
        let b = Waveform::with_transitions(true, vec![2.0, 4.0]);
        let inputs = [&a, &b];
        let mut scratch = EvalScratch::new();
        let mut out = vec![99.0]; // stale contents must be cleared
        for kind in [GateKind::And, GateKind::Nand, GateKind::Xor, GateKind::Nor] {
            let expect = eval_gate(kind, &inputs, 1.5, 0.5);
            let initial = eval_gate_into(kind, 2, |k| inputs[k], 1.5, 0.5, &mut scratch, &mut out);
            assert_eq!(initial, expect.initial(), "{kind}");
            assert_eq!(out, expect.transitions(), "{kind}");
        }
    }

    #[test]
    fn diff_basic() {
        let a = Waveform::with_transitions(false, vec![10.0]);
        let b = Waveform::with_transitions(false, vec![15.0]);
        let d = a.diff(&b, 100.0);
        assert_eq!(d.as_slice(), &[Interval::new(10.0, 15.0)]);
    }

    #[test]
    fn diff_open_end_closed_at_horizon() {
        let a = Waveform::constant(false);
        let b = Waveform::with_transitions(false, vec![10.0]);
        let d = a.diff(&b, 50.0);
        assert_eq!(d.as_slice(), &[Interval::new(10.0, 50.0)]);
    }

    #[test]
    fn diff_initial_difference_starts_at_zero() {
        let a = Waveform::constant(false);
        let b = Waveform::with_transitions(true, vec![5.0]);
        let d = a.diff(&b, 50.0);
        assert_eq!(d.as_slice(), &[Interval::new(0.0, 5.0)]);
    }

    #[test]
    fn diff_simultaneous_toggle_no_difference() {
        let a = Waveform::with_transitions(false, vec![3.0]);
        let b = Waveform::with_transitions(false, vec![3.0]);
        assert!(a.diff(&b, 10.0).is_empty());
    }

    #[test]
    fn eval_nand_pulse() {
        // NAND(a, b) with unit rise/fall: a rises at 1, b falls at 2
        // → output falls at 1+1=2, rises again at 2+1=3 → pulse low [2,3)
        let a = Waveform::with_transitions(false, vec![1.0]);
        let b = Waveform::with_transitions(true, vec![2.0]);
        let out = eval_gate(GateKind::Nand, &[&a, &b], 1.0, 1.0);
        assert!(out.initial());
        assert_eq!(out.transitions(), &[2.0, 3.0]);
    }

    #[test]
    fn eval_simultaneous_inputs_single_evaluation() {
        // XOR(a, b): both toggle at t=1 simultaneously → output unchanged
        let a = Waveform::with_transitions(false, vec![1.0]);
        let b = Waveform::with_transitions(false, vec![1.0]);
        let out = eval_gate(GateKind::Xor, &[&a, &b], 1.0, 1.0);
        assert!(out.is_constant());
        assert!(!out.initial());
    }

    #[test]
    fn eval_unequal_rise_fall_annihilates() {
        // Buffer with rise 5, fall 1: input pulse [10, 11) → rise lands at
        // 15, fall at 12: reordered, pulse annihilates.
        let a = Waveform::with_transitions(false, vec![10.0, 11.0]);
        let out = eval_gate(GateKind::Buf, &[&a], 5.0, 1.0);
        assert!(out.is_constant());
        // a wider pulse survives: [10, 20) → rise 15, fall 21
        let a = Waveform::with_transitions(false, vec![10.0, 20.0]);
        let out = eval_gate(GateKind::Buf, &[&a], 5.0, 1.0);
        assert_eq!(out.transitions(), &[15.0, 21.0]);
    }

    #[test]
    fn eval_controlling_input_masks() {
        // AND(a, 0) never toggles regardless of a
        let a = Waveform::with_transitions(false, vec![1.0, 2.0, 3.0]);
        let zero = Waveform::constant(false);
        let out = eval_gate(GateKind::And, &[&a, &zero], 1.0, 1.0);
        assert!(out.is_constant());
        assert!(!out.initial());
    }

    fn arb_wave() -> impl Strategy<Value = Waveform> {
        (
            any::<bool>(),
            proptest::collection::vec(0.01..100.0f64, 0..10),
        )
            .prop_map(|(init, mut ts)| {
                ts.sort_by(f64::total_cmp);
                ts.dedup();
                Waveform::with_transitions(init, ts)
            })
    }

    proptest! {
        #[test]
        fn diff_symmetric(a in arb_wave(), b in arb_wave(), t in 0.0..120.0f64) {
            let d1 = a.diff(&b, 200.0);
            let d2 = b.diff(&a, 200.0);
            prop_assert_eq!(d1.contains(t), d2.contains(t));
        }

        #[test]
        fn diff_matches_pointwise(a in arb_wave(), b in arb_wave(), t in 0.0..120.0f64) {
            let d = a.diff(&b, 200.0);
            prop_assert_eq!(d.contains(t), a.value_at(t) != b.value_at(t));
        }

        #[test]
        fn self_diff_empty(a in arb_wave()) {
            prop_assert!(a.diff(&a, 200.0).is_empty());
        }

        #[test]
        fn polarity_delay_preserves_validity(a in arb_wave(), d in 0.0..50.0f64) {
            for pol in Polarity::BOTH {
                let f = a.delayed_polarity(d, pol);
                prop_assert_eq!(f.initial(), a.initial());
                // strictly increasing transitions
                for w in f.transitions().windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }

        #[test]
        fn polarity_delay_zero_is_identity(a in arb_wave()) {
            for pol in Polarity::BOTH {
                prop_assert_eq!(a.delayed_polarity(0.0, pol), a.clone());
            }
        }

        #[test]
        fn polarity_delay_never_moves_left(a in arb_wave(), d in 0.0..50.0f64) {
            // the faulty waveform differs from the fault-free one only at or
            // after the first affected edge, and the final value matches
            // unless pulses were swallowed (then parity still matches
            // because edges vanish in pairs)
            let f = a.delayed_polarity(d, Polarity::SlowToRise);
            prop_assert_eq!(f.final_value(), a.final_value());
            prop_assert!(f.transitions().len() <= a.transitions().len());
        }

        #[test]
        fn eval_gate_final_value_matches_steady_state(
            a in arb_wave(), b in arb_wave(), rise in 0.1..5.0f64, fall in 0.1..5.0f64
        ) {
            for kind in [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::Xor] {
                let out = eval_gate(kind, &[&a, &b], rise, fall);
                prop_assert_eq!(
                    out.final_value(),
                    kind.eval(&[a.final_value(), b.final_value()]),
                    "kind {}", kind
                );
                prop_assert_eq!(out.initial(), kind.eval(&[a.initial(), b.initial()]));
                for w in out.transitions().windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}
