//! VCD (Value Change Dump) export of simulation results.
//!
//! Writes the waveforms of a [`SimResult`](crate::SimResult) in the classic
//! IEEE-1364 VCD format, so launches, hazards and fault effects can be
//! inspected in any waveform viewer (GTKWave etc.). Time is emitted in
//! femtoseconds (`timescale 1fs`) so picosecond-fraction transition times
//! survive the integer quantization.
//!
//! # Example
//!
//! ```
//! use fastmon_netlist::library;
//! use fastmon_sim::{vcd, SimEngine, Stimulus};
//! use fastmon_timing::{DelayAnnotation, DelayModel};
//!
//! let circuit = library::c17();
//! let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
//! let engine = SimEngine::new(&circuit, &annot);
//! let stim = Stimulus::from_fn(&circuit, |_| (false, true));
//! let result = engine.simulate(&stim);
//! let text = vcd::to_string(&circuit, &result);
//! assert!(text.contains("$timescale 1fs $end"));
//! assert!(text.contains("N22"));
//! ```

use std::fmt::Write as _;

use fastmon_netlist::Circuit;
use fastmon_timing::Time;

use crate::SimResult;

/// Femtoseconds per picosecond (the toolkit's native unit).
const FS_PER_PS: f64 = 1000.0;

/// Serializes every net's waveform as VCD text.
#[must_use]
pub fn to_string(circuit: &Circuit, result: &SimResult) -> String {
    let nets: Vec<_> = circuit.node_ids().collect();
    to_string_filtered(circuit, result, &nets)
}

/// Serializes only the given nets (in the given order) as VCD text.
///
/// # Panics
///
/// Panics if a net id is out of range for the circuit.
#[must_use]
pub fn to_string_filtered(
    circuit: &Circuit,
    result: &SimResult,
    nets: &[fastmon_netlist::NodeId],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date fastmon export $end");
    let _ = writeln!(out, "$version fastmon-sim $end");
    let _ = writeln!(out, "$timescale 1fs $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(circuit.name()));
    for (k, &id) in nets.iter().enumerate() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            code(k),
            sanitize(circuit.node(id).name())
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // initial values
    let _ = writeln!(out, "$dumpvars");
    for (k, &id) in nets.iter().enumerate() {
        let _ = writeln!(out, "{}{}", u8::from(result.wave(id).initial()), code(k));
    }
    let _ = writeln!(out, "$end");

    // merge all transitions into one time-ordered stream
    let mut events: Vec<(u64, usize, bool)> = Vec::new();
    for (k, &id) in nets.iter().enumerate() {
        let wave = result.wave(id);
        let mut value = wave.initial();
        for &t in wave.transitions() {
            value = !value;
            events.push((quantize(t), k, value));
        }
    }
    events.sort_by_key(|&(t, k, _)| (t, k));
    let mut last_time = None;
    for (t, k, v) in events {
        if last_time != Some(t) {
            let _ = writeln!(out, "#{t}");
            last_time = Some(t);
        }
        let _ = writeln!(out, "{}{}", u8::from(v), code(k));
    }
    out
}

/// Quantizes a picosecond time to integer femtoseconds.
fn quantize(t: Time) -> u64 {
    let fs = (t * FS_PER_PS).round();
    if fs <= 0.0 {
        0
    } else {
        fs as u64
    }
}

/// Short printable VCD identifier codes (base-94 over `!`..`~`).
fn code(mut k: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (k % 94) as u8) as char);
        k /= 94;
        if k == 0 {
            break;
        }
    }
    s
}

/// VCD identifiers must not contain whitespace.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimEngine, Stimulus};
    use fastmon_netlist::library;
    use fastmon_timing::{DelayAnnotation, DelayModel};

    fn sample() -> (fastmon_netlist::Circuit, SimResult) {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let engine = SimEngine::new(&c, &annot);
        let g0 = c.find("G0").unwrap();
        let stim = Stimulus::from_fn(&c, |id| (false, id == g0));
        let result = engine.simulate(&stim);
        (c, result)
    }

    #[test]
    fn header_and_vars_present() {
        let (c, r) = sample();
        let text = to_string(&c, &r);
        assert!(text.contains("$timescale 1fs $end"));
        assert!(text.contains("$enddefinitions $end"));
        for (_, node) in c.iter() {
            assert!(text.contains(node.name()), "{} missing", node.name());
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let (c, r) = sample();
        let text = to_string(&c, &r);
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: u64 = ts.parse().expect("integer timestamp");
                assert!(t >= last, "timestamps must not decrease");
                last = t;
            }
        }
        assert!(last > 0, "the launch produced transitions");
    }

    #[test]
    fn event_counts_match_waveforms() {
        let (c, r) = sample();
        let nets: Vec<_> = c.node_ids().collect();
        let text = to_string_filtered(&c, &r, &nets);
        let total_transitions: usize = nets.iter().map(|&id| r.wave(id).transitions().len()).sum();
        // value-change lines = initial dump (one per net) + transitions
        let change_lines = text
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count();
        assert_eq!(change_lines, nets.len() + total_transitions);
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..500 {
            let c = code(k);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate code for {k}");
        }
    }
}
