//! Scoped-registry isolation: two campaigns running at the same time on
//! different threads must each report exactly their own work — the whole
//! point of replacing the old process-wide counters. This file deliberately
//! runs without `--test-threads=1` and uses no trace/env state, so it can
//! share a process with other tests.

use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_netlist::library;

/// Runs one campaign and returns (patterns, counters) read from the flow's
/// own registry.
fn campaign(pattern_budget: usize) -> (usize, u64, u64, u64) {
    let circuit = library::s27();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(pattern_budget));
    let _ = flow.analyze(&patterns);
    let m = flow.metrics();
    (
        patterns.len(),
        m.sta.analyses.get(),
        m.atpg.patterns_emitted.get(),
        m.sim.cones_simulated.get(),
    )
}

#[test]
fn concurrent_campaigns_report_disjoint_metrics() {
    // A large and a small campaign, interleaved on two threads. With the
    // old global counters either registry would double-count the other's
    // STA pass and cone simulations.
    let big = std::thread::spawn(|| campaign(8));
    let small = std::thread::spawn(|| campaign(2));
    let (big_patterns, big_sta, big_emitted, big_cones) = big.join().unwrap();
    let (small_patterns, small_sta, small_emitted, small_cones) = small.join().unwrap();

    assert_eq!(big_sta, 1, "big campaign saw a foreign STA pass");
    assert_eq!(small_sta, 1, "small campaign saw a foreign STA pass");
    assert!(
        big_patterns > small_patterns,
        "budgets must differ for this test to bite"
    );
    assert!(
        big_emitted >= big_patterns as u64 && small_emitted >= small_patterns as u64,
        "each registry must cover its own ATPG output"
    );
    // Cone simulations scale with pattern count on the same circuit, so
    // cross-contamination (or shared counters) would erase the strict gap.
    assert!(
        big_cones > small_cones,
        "expected the 8-pattern campaign to simulate strictly more cones \
         ({big_cones} vs {small_cones})"
    );
    assert!(small_cones > 0, "small campaign recorded no work at all");
}

#[test]
fn sequential_campaigns_start_from_zero() {
    let (_, sta, _, cones) = campaign(4);
    assert_eq!(sta, 1);
    assert!(cones > 0);
    // A fresh flow must not inherit the previous campaign's counters.
    let circuit = library::s27();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    assert_eq!(flow.metrics().sim.cones_simulated.get(), 0);
    assert_eq!(flow.metrics().atpg.podem_calls.get(), 0);
}
