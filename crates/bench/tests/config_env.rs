//! Strict environment-variable configuration parsing
//! ([`ExperimentConfig::try_from_env`] and
//! [`SupervisorConfig::from_env`]): malformed sharding knobs are typed
//! [`ShardsupError::Config`] errors that carry the offending string —
//! never a silent clamp or an unrelated panic. All scenarios mutate the
//! process environment, so they run serialized in one test body.

use fastmon_bench::ExperimentConfig;
use fastmon_core::{ShardsupError, SupervisorConfig, MAX_SHARDS};

const KNOBS: &[&str] = &[
    "FASTMON_SHARDS",
    "FASTMON_SHARD_JOBS",
    "FASTMON_SHARD_PROCS",
    "FASTMON_SHARD_RETRIES",
    "FASTMON_SHARD_STALL_SECS",
    "FASTMON_SHARD_BACKOFF_MS",
    "FASTMON_SHARD_RSS_BYTES",
    "FASTMON_SHARD_RSS_POLL_MS",
    "FASTMON_SHARD_STRAGGLER_FACTOR",
];

fn clear() {
    for key in KNOBS {
        std::env::remove_var(key);
    }
}

fn expect_config_err<T: std::fmt::Debug>(result: Result<T, ShardsupError>, key: &str, value: &str) {
    let err = match result {
        Err(err @ ShardsupError::Config { .. }) => err,
        other => panic!("{key}={value}: expected Config error, got {other:?}"),
    };
    if let ShardsupError::Config {
        key: k, value: v, ..
    } = &err
    {
        assert_eq!(k, key);
        assert_eq!(v, value, "error must carry the offending string");
    }
    // The rendered message surfaces both for the operator too.
    let rendered = err.to_string();
    assert!(rendered.contains(key), "{rendered:?} lacks {key:?}");
    assert!(rendered.contains(value), "{rendered:?} lacks {value:?}");
}

#[test]
fn malformed_shard_knobs_are_typed_errors_with_the_offending_string() {
    clear();

    // Baseline: an empty environment parses to the defaults.
    let config = ExperimentConfig::try_from_env().unwrap();
    assert_eq!(config.shards, 1);
    assert!(!config.shard_procs);

    // FASTMON_SHARDS: zero, junk, and an over-cap count all reject.
    let over = (MAX_SHARDS + 1).to_string();
    for bad in ["0", "three", "-2", "1.5", &over] {
        std::env::set_var("FASTMON_SHARDS", bad);
        expect_config_err(ExperimentConfig::try_from_env(), "FASTMON_SHARDS", bad);
        std::env::remove_var("FASTMON_SHARDS");
    }
    std::env::set_var("FASTMON_SHARDS", MAX_SHARDS.to_string());
    assert_eq!(ExperimentConfig::try_from_env().unwrap().shards, MAX_SHARDS);
    std::env::remove_var("FASTMON_SHARDS");

    // FASTMON_SHARD_JOBS is validated at config time so a typo fails
    // before ATPG, not when the supervisor first reads it.
    for bad in ["0", "zero", "0x4"] {
        std::env::set_var("FASTMON_SHARD_JOBS", bad);
        expect_config_err(ExperimentConfig::try_from_env(), "FASTMON_SHARD_JOBS", bad);
        expect_config_err(SupervisorConfig::from_env(2), "FASTMON_SHARD_JOBS", bad);
        std::env::remove_var("FASTMON_SHARD_JOBS");
    }
    std::env::set_var("FASTMON_SHARD_JOBS", "2");
    assert_eq!(SupervisorConfig::from_env(8).unwrap().jobs, 2);
    std::env::remove_var("FASTMON_SHARD_JOBS");

    // FASTMON_SHARD_PROCS is a strict boolean: 0/1/unset only.
    for bad in ["yes", "true", "2", "on"] {
        std::env::set_var("FASTMON_SHARD_PROCS", bad);
        expect_config_err(ExperimentConfig::try_from_env(), "FASTMON_SHARD_PROCS", bad);
        std::env::remove_var("FASTMON_SHARD_PROCS");
    }
    std::env::set_var("FASTMON_SHARD_PROCS", "1");
    assert!(ExperimentConfig::try_from_env().unwrap().shard_procs);
    std::env::remove_var("FASTMON_SHARD_PROCS");

    // Supervisor tuning knobs follow the same contract.
    for (key, bad) in [
        ("FASTMON_SHARD_RETRIES", "lots"),
        ("FASTMON_SHARD_STALL_SECS", "0"),
        ("FASTMON_SHARD_BACKOFF_MS", "-1"),
        ("FASTMON_SHARD_RSS_BYTES", "1GB"),
        ("FASTMON_SHARD_RSS_POLL_MS", "0"),
        ("FASTMON_SHARD_STRAGGLER_FACTOR", "0.5"),
    ] {
        std::env::set_var(key, bad);
        expect_config_err(SupervisorConfig::from_env(2), key, bad);
        std::env::remove_var(key);
    }

    clear();
}
