//! Chaos-engineering suite: every injected fault must surface as a typed
//! error or a documented degraded result — never a panic.

use std::time::Duration;

use fastmon_atpg::{TestPattern, TestSet};
use fastmon_bench::chaos;
use fastmon_core::{
    CheckpointError, CheckpointStore, FlowConfig, FlowError, HdfTestFlow, ScheduleError, Solver,
};
use fastmon_netlist::{bench, library, CircuitBuilder, NetlistError};
use fastmon_timing::{sdf, DelayAnnotation, DelayModel, TimingError};

// ---------------------------------------------------------------- netlists

#[test]
fn truncated_netlist_is_a_typed_parse_error() {
    let s27 = library::s27();
    let text = fastmon_netlist::bench::to_string(&s27);
    let err = bench::parse(&chaos::truncated_bench(&text), "s27-cut").unwrap_err();
    assert!(
        matches!(
            err,
            NetlistError::UndrivenNet { .. } | NetlistError::ParseBench { .. }
        ),
        "got {err:?}"
    );
}

#[test]
fn cyclic_netlist_is_a_typed_cycle_error() {
    let err = bench::parse(chaos::cyclic_bench(), "cyclic").unwrap_err();
    assert!(
        matches!(err, NetlistError::CombinationalCycle { .. }),
        "got {err:?}"
    );
}

#[test]
fn empty_circuit_is_rejected_by_the_flow() {
    let circuit = CircuitBuilder::new("void").finish().expect("empty builds");
    let err = HdfTestFlow::try_prepare(&circuit, &FlowConfig::default()).unwrap_err();
    assert!(
        matches!(err, FlowError::Netlist(NetlistError::EmptyCircuit { .. })),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------- timing

#[test]
fn nan_sdf_delay_is_a_typed_timing_error() {
    let c = library::c17();
    let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
    let good = sdf::to_string(&c, &annot);
    // poison the first IOPATH rise value
    let first_value = good
        .split("IOPATH A Z (")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .expect("sdf has an IOPATH");

    let nan = chaos::poisoned_sdf(&good, first_value, "nan");
    let err = sdf::parse(&nan, &c, 0.2).unwrap_err();
    assert!(
        matches!(
            err,
            TimingError::Sdf(_) | TimingError::NonFiniteDelay { .. }
        ),
        "got {err:?}"
    );

    let negative = chaos::poisoned_sdf(&good, first_value, "-3.5");
    let err = sdf::parse(&negative, &c, 0.2).unwrap_err();
    assert!(
        matches!(err, TimingError::NegativeDelay { .. }),
        "negative delay must be rejected, got {err:?}"
    );
}

// ---------------------------------------------------------------- patterns

#[test]
fn empty_and_single_pattern_sets_degrade_gracefully() {
    let c = library::s27();
    let config = FlowConfig {
        threads: 1,
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&c, &config);

    // empty set: zero detections, empty (feasible) schedule, no panic
    let empty = TestSet::new(&c);
    let analysis = flow.analyze(&empty);
    assert_eq!(analysis.num_patterns, 0);
    assert!(analysis.targets.is_empty());
    let schedule = flow
        .try_schedule(&analysis, Solver::Ilp)
        .expect("empty campaign schedules trivially");
    assert_eq!(schedule.num_frequencies(), 0);

    // single pattern: runs end to end
    let mut single = TestSet::new(&c);
    let w = single.sources().len();
    single.push(TestPattern::new(vec![false; w], vec![true; w]));
    let analysis = flow.analyze(&single);
    assert_eq!(analysis.num_patterns, 1);
    let _ = flow
        .try_schedule(&analysis, Solver::Ilp)
        .expect("single-pattern campaign schedules");
}

#[test]
fn invalid_coverage_targets_are_typed_errors() {
    let c = library::s27();
    let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
    let patterns = flow.generate_patterns(None);
    let analysis = flow.analyze(&patterns);
    for cov in [0.0, -0.5, 1.5, f64::NAN] {
        let err = flow
            .try_schedule_with_coverage(&analysis, Solver::Greedy, cov)
            .unwrap_err();
        assert!(
            matches!(err, ScheduleError::InvalidCoverage { .. }),
            "cov {cov}: got {err:?}"
        );
    }
}

// ---------------------------------------------------------------- checkpoints

/// Interrupts a campaign to get a checkpoint on disk, corrupts it with
/// `corrupt`, then re-runs: the flow must log-and-restart, producing the
/// same analysis as a clean run.
fn corrupted_checkpoint_recovers(tag: &str, corrupt: impl Fn(&std::path::Path)) {
    let c = library::s27();
    let config = FlowConfig {
        threads: 1,
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&c, &config);
    let patterns = flow.generate_patterns(None);
    let baseline = flow.analyze(&patterns);

    let dir = chaos::scratch_dir(tag);
    let path = dir.join("s27.fmck");
    flow.analyze_resumable(
        &patterns,
        &CheckpointStore::new(&path).with_interrupt_after(1),
    )
    .expect_err("interruption hook fires");
    assert!(path.exists());
    corrupt(&path);

    let recovered = flow
        .analyze_resumable(&patterns, &CheckpointStore::new(&path))
        .expect("corrupt checkpoint degrades to a clean restart");
    assert_eq!(recovered.per_pattern, baseline.per_pattern);
    assert_eq!(recovered.raw_union, baseline.raw_union);
    assert_eq!(recovered.verdicts, baseline.verdicts);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_checkpoint_restarts_cleanly() {
    corrupted_checkpoint_recovers("flip", |p| {
        let len = std::fs::metadata(p).unwrap().len() as usize;
        chaos::flip_byte(p, len / 2, 0x40).unwrap();
    });
}

#[test]
fn version_bumped_checkpoint_restarts_cleanly() {
    // byte 4 is the low byte of the little-endian format version
    corrupted_checkpoint_recovers("version", |p| {
        chaos::flip_byte(p, 4, 0xff).unwrap();
    });
}

#[test]
fn truncated_checkpoint_restarts_cleanly() {
    corrupted_checkpoint_recovers("trunc", |p| {
        let len = std::fs::metadata(p).unwrap().len();
        chaos::truncate_file(p, len / 3).unwrap();
    });
}

#[test]
fn checkpoint_decode_errors_are_typed() {
    let dir = chaos::scratch_dir("typed");
    let path = dir.join("junk.fmck");
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    let err = CheckpointStore::new(&path).load().unwrap_err();
    assert_eq!(err, CheckpointError::BadMagic);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- solver

#[test]
fn zero_duration_ilp_deadline_degrades_with_a_note() {
    let c = library::s27();
    let config = FlowConfig {
        threads: 1,
        ilp_deadline: Duration::from_millis(0),
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&c, &config);
    let patterns = flow.generate_patterns(None);
    let analysis = flow.analyze(&patterns);
    let schedule = flow
        .try_schedule(&analysis, Solver::Ilp)
        .expect("deadline expiry degrades, not errors");
    // Either the reductions solved the instance exactly (optimal) or the
    // greedy fallback was used and the degradation is documented.
    assert!(
        schedule.selection.optimal || !schedule.notes.is_empty(),
        "deadline fallback must be documented: optimal={} notes={:?}",
        schedule.selection.optimal,
        schedule.notes
    );
}
