//! Driver-level graceful degradation: `run_all` must survive failing and
//! unlaunchable children, keep running the rest, write `RUN_MANIFEST.json`
//! naming every outcome, and exit nonzero only at the end.

use std::process::Command;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fastmon-runall-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn failing_child_is_recorded_and_campaign_continues() {
    let dir = scratch("fail");
    let manifest = dir.join("RUN_MANIFEST.json");
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env(
            "FASTMON_RUN_ALL_BINS",
            "/bin/true,/bin/false,/nonexistent/fastmon-child,/bin/true",
        )
        .env("FASTMON_MANIFEST", &manifest)
        .output()
        .expect("run_all launches");

    assert!(
        !output.status.success(),
        "run_all must exit nonzero when any child fails"
    );
    let json = std::fs::read_to_string(&manifest).expect("manifest written despite failures");
    assert!(json.contains("\"schema_version\": 1"));
    // both successes, the failure, and the launch failure are all named
    assert_eq!(json.matches("\"outcome\": \"success\"").count(), 2);
    assert!(json.contains("\"name\": \"/bin/false\""));
    assert!(json.contains("\"outcome\": \"failed\""));
    assert!(json.contains("\"exit_code\": 1"));
    assert!(json.contains("\"name\": \"/nonexistent/fastmon-child\""));
    assert!(json.contains("\"outcome\": \"launch-failed\""));
    // the driver kept going: the last child still ran (4 records total)
    assert_eq!(json.matches("\"name\":").count(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_green_campaign_exits_zero() {
    let dir = scratch("green");
    let manifest = dir.join("RUN_MANIFEST.json");
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("FASTMON_RUN_ALL_BINS", "/bin/true,/bin/true")
        .env("FASTMON_MANIFEST", &manifest)
        .output()
        .expect("run_all launches");
    assert!(output.status.success());
    let json = std::fs::read_to_string(&manifest).unwrap();
    assert_eq!(json.matches("\"outcome\": \"success\"").count(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hung_child_is_timed_out() {
    let dir = scratch("hang");
    let manifest = dir.join("RUN_MANIFEST.json");
    // `run_all` resolves bare names next to its own binary first; a path
    // to `sleep` with no way to pass arguments would block forever, so we
    // use a tiny shell script instead.
    let script = dir.join("hang.sh");
    std::fs::write(&script, "#!/bin/sh\nexec sleep 30\n").unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt as _;
        std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("FASTMON_RUN_ALL_BINS", script.display().to_string())
        .env("FASTMON_RUN_ALL_TIMEOUT_SECS", "1")
        // the script ignores FASTMON_DEADLINE_SECS, so after the soft
        // deadline plus this grace period the driver must kill it
        .env("FASTMON_RUN_ALL_GRACE_SECS", "1")
        .env("FASTMON_MANIFEST", &manifest)
        .output()
        .expect("run_all launches");
    assert!(!output.status.success());
    let json = std::fs::read_to_string(&manifest).unwrap();
    assert!(json.contains("\"outcome\": \"timed-out\""));
    assert!(json.contains("\"timeout_secs\": 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cooperative_child_is_recorded_as_cancelled() {
    let dir = scratch("cancel");
    let manifest = dir.join("RUN_MANIFEST.json");
    // a well-behaved child: sees the soft deadline the driver exports and
    // exits with EXIT_CANCELLED (75) instead of hanging until the kill
    let script = dir.join("cancel.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\ntest -n \"$FASTMON_DEADLINE_SECS\" || exit 1\nexit 75\n",
    )
    .unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt as _;
        std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .env("FASTMON_RUN_ALL_BINS", script.display().to_string())
        .env("FASTMON_RUN_ALL_TIMEOUT_SECS", "7")
        .env("FASTMON_MANIFEST", &manifest)
        .output()
        .expect("run_all launches");
    assert!(
        !output.status.success(),
        "a cancelled child is not a success"
    );
    let json = std::fs::read_to_string(&manifest).unwrap();
    assert!(json.contains("\"outcome\": \"cancelled\""), "got {json}");
    assert!(json.contains("\"deadline_secs\": 7"), "got {json}");
    std::fs::remove_dir_all(&dir).ok();
}
