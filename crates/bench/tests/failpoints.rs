//! Deterministic chaos-under-failpoints suite.
//!
//! Every scripted injection must either *recover to the bit-identical
//! baseline result* (retry absorbed it, a checkpoint resumed it, or the
//! anytime solver degraded gracefully) or surface as a *typed error* —
//! never a raw panic, never a corrupt checkpoint left behind.
//!
//! The failpoint schedule is process-global (`fastmon_obs::failpoints`),
//! so all injection scenarios run inside one test body, strictly
//! serialized, with `clear()` between scenarios. Cancellation scenarios
//! ride along in the same body: they exercise flow entry points that
//! consult the global failpoint table, so they must not run concurrently
//! with an armed schedule either.

use fastmon_atpg::{AtpgConfig, AtpgError};
use fastmon_bench::chaos;
use fastmon_core::{
    CheckpointError, CheckpointStore, DetectionAnalysis, FlowConfig, FlowError, HdfTestFlow,
    Solver, TestSchedule,
};
use fastmon_netlist::library;
use fastmon_obs::failpoints;
use fastmon_obs::CancelToken;

fn flow_config() -> FlowConfig {
    FlowConfig {
        threads: 2,
        ..FlowConfig::default()
    }
}

fn assert_same_analysis(got: &DetectionAnalysis, baseline: &DetectionAnalysis, scenario: &str) {
    assert_eq!(got.per_pattern, baseline.per_pattern, "{scenario}");
    assert_eq!(got.raw_union, baseline.raw_union, "{scenario}");
    assert_eq!(got.verdicts, baseline.verdicts, "{scenario}");
}

/// Every target fault must be assigned to (and covered at) some entry.
fn covers_all_targets(schedule: &TestSchedule, analysis: &DetectionAnalysis) -> bool {
    let mut covered: Vec<usize> = schedule
        .entries
        .iter()
        .flat_map(|e| e.faults.iter().copied())
        .collect();
    covered.sort_unstable();
    covered.dedup();
    analysis
        .targets
        .iter()
        .all(|t| covered.binary_search(t).is_ok())
}

#[test]
fn chaos_under_failpoints_recovers_or_types_every_error() {
    failpoints::clear();
    let circuit = library::s27();
    let config = flow_config();
    let flow = HdfTestFlow::prepare(&circuit, &config);
    let patterns = flow.generate_patterns(None);
    let baseline = flow.analyze(&patterns);
    let robustness = || &flow.metrics().robustness;
    let dir = chaos::scratch_dir("failpoints");

    // -- checkpoint_write=io@2: one transient write failure on the second
    //    band save; the retry loop must absorb it bit-identically.
    {
        let before = robustness().checkpoint_retries.get();
        failpoints::configure("checkpoint_write=io@2").unwrap();
        let store = CheckpointStore::new(dir.join("write-absorb.fmck"));
        let got = flow
            .analyze_resumable(&patterns, &store)
            .expect("retry absorbs a single transient write failure");
        failpoints::clear();
        assert_same_analysis(&got, &baseline, "checkpoint_write=io@2");
        assert_eq!(
            robustness().checkpoint_retries.get() - before,
            1,
            "exactly one save attempt was retried"
        );
    }

    // -- checkpoint_write=io@every:1: the disk is permanently broken; after
    //    the retry budget the campaign must fail with the typed I/O error.
    {
        failpoints::configure("checkpoint_write=io@every:1").unwrap();
        let store = CheckpointStore::new(dir.join("write-dead.fmck"));
        let err = flow
            .analyze_resumable(&patterns, &store)
            .expect_err("a permanently failing save exhausts the retries");
        failpoints::clear();
        assert!(
            matches!(
                err,
                FlowError::Checkpoint(CheckpointError::Io { op: "write", .. })
            ),
            "got {err:?}"
        );
    }

    // -- checkpoint_rename=io@1: the atomic-rename step fails once; the
    //    retry re-runs the whole save (write + rename) and succeeds.
    {
        let before = robustness().checkpoint_retries.get();
        failpoints::configure("checkpoint_rename=io@1").unwrap();
        let store = CheckpointStore::new(dir.join("rename-absorb.fmck"));
        let got = flow
            .analyze_resumable(&patterns, &store)
            .expect("retry absorbs a single transient rename failure");
        failpoints::clear();
        assert_same_analysis(&got, &baseline, "checkpoint_rename=io@1");
        assert_eq!(robustness().checkpoint_retries.get() - before, 1);
    }

    // -- double injection checkpoint_write=io@1;checkpoint_rename=io@2:
    //    band 1's first write fails (retry), band 2's rename fails on its
    //    second site hit (retry) — two independent transients, both
    //    absorbed, result still bit-identical.
    {
        let before = robustness().checkpoint_retries.get();
        failpoints::configure("checkpoint_write=io@1;checkpoint_rename=io@2").unwrap();
        let store = CheckpointStore::new(dir.join("double.fmck"));
        let got = flow
            .analyze_resumable(&patterns, &store)
            .expect("two independent transients are both absorbed");
        failpoints::clear();
        assert_same_analysis(&got, &baseline, "double transient");
        assert_eq!(robustness().checkpoint_retries.get() - before, 2);
    }

    // -- checkpoint_load=io@1: a valid checkpoint exists but reading it
    //    fails; the flow degrades to a clean restart, not an error.
    {
        let path = dir.join("load-degrade.fmck");
        flow.analyze_resumable(
            &patterns,
            &CheckpointStore::new(&path).with_interrupt_after(1),
        )
        .expect_err("interruption hook leaves a checkpoint behind");
        assert!(path.exists());
        let resumes_before = flow.metrics().checkpoint.resumes.get();
        failpoints::configure("checkpoint_load=io@1").unwrap();
        let got = flow
            .analyze_resumable(&patterns, &CheckpointStore::new(&path))
            .expect("unreadable checkpoint degrades to a clean restart");
        failpoints::clear();
        assert_same_analysis(&got, &baseline, "checkpoint_load=io@1");
        assert_eq!(
            flow.metrics().checkpoint.resumes.get(),
            resumes_before,
            "a failed load restarts from scratch instead of resuming"
        );
    }

    // -- campaign_band=err@2: the campaign dies between bands with a typed
    //    injection error; band 1's checkpoint survives and a clean rerun
    //    resumes from it, bit-identically.
    {
        let path = dir.join("band-resume.fmck");
        let store = CheckpointStore::new(&path);
        failpoints::configure("campaign_band=err@2").unwrap();
        let err = flow
            .analyze_resumable(&patterns, &store)
            .expect_err("the second band is injected");
        assert!(
            matches!(
                err,
                FlowError::Injected {
                    site: "campaign_band"
                }
            ),
            "got {err:?}"
        );
        assert!(
            path.exists(),
            "band 1 checkpoint was flushed before the injection"
        );
        failpoints::clear();
        let resumes_before = flow.metrics().checkpoint.resumes.get();
        let got = flow
            .analyze_resumable(&patterns, &store)
            .expect("rerun resumes from the surviving checkpoint");
        assert_same_analysis(&got, &baseline, "campaign_band=err@2 resume");
        assert_eq!(flow.metrics().checkpoint.resumes.get() - resumes_before, 1);
    }

    // -- sim_worker=panic@1: a worker panics mid-band; catch_unwind
    //    contains it as a typed error, and a clean rerun matches baseline.
    {
        let before = robustness().worker_panics_contained.get();
        failpoints::configure("sim_worker=panic@1").unwrap();
        let err = flow
            .try_analyze(&patterns)
            .expect_err("an injected worker panic surfaces as a typed error");
        failpoints::clear();
        match &err {
            FlowError::WorkerPanic { phase, message } => {
                assert_eq!(*phase, "analyze");
                assert!(message.contains("sim_worker"), "got message {message:?}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(robustness().worker_panics_contained.get() > before);
        let got = flow.try_analyze(&patterns).expect("clean rerun");
        assert_same_analysis(&got, &baseline, "sim_worker=panic@1 rerun");
    }

    // -- parallel_worker=panic@1: the generic parallel runner contains the
    //    injected panic and reports it with the failpoint's name.
    {
        failpoints::configure("parallel_worker=panic@1").unwrap();
        let err = fastmon_sim::try_parallel_map_with(16, 2, || (), |(), i| i * 2)
            .expect_err("the injected worker panic is contained");
        failpoints::clear();
        assert!(
            err.message()
                .contains("injected panic at failpoint 'parallel_worker'"),
            "got message {:?}",
            err.message()
        );
        let ok = fastmon_sim::try_parallel_map_with(16, 2, || (), |(), i| i * 2)
            .expect("disabled failpoint leaves the runner untouched");
        assert_eq!(ok, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    // -- atpg_grade=panic@1: a fault-grading worker panics during pattern
    //    generation; the flow surfaces the contained panic as a typed
    //    ATPG error, and a clean rerun reproduces the baseline set.
    {
        failpoints::configure("atpg_grade=panic@1").unwrap();
        let err = flow
            .try_generate_patterns(None)
            .expect_err("the injected grading panic is contained");
        failpoints::clear();
        assert!(
            matches!(
                &err,
                FlowError::Atpg(AtpgError::WorkerPanicked {
                    phase: "atpg_grade",
                    ..
                })
            ),
            "got {err:?}"
        );
        let regen = flow.try_generate_patterns(None).expect("clean rerun");
        assert_eq!(regen, patterns, "pattern generation is deterministic");
    }

    // -- atpg_podem=err@1: the deterministic PODEM loop is injected
    //    directly (random_patterns: 0 keeps its worklist non-empty).
    {
        failpoints::configure("atpg_podem=err@1").unwrap();
        let podem_only = AtpgConfig {
            random_patterns: 0,
            threads: 2,
            ..AtpgConfig::default()
        };
        let err = fastmon_atpg::try_generate_with_metrics(&circuit, &podem_only, None, None)
            .expect_err("the PODEM loop is injected on its first fault");
        failpoints::clear();
        assert!(
            matches!(err, AtpgError::Injected { site: "atpg_podem" }),
            "got {err:?}"
        );
    }

    // -- ilp_node=err@1: the branch-and-bound scheduler is anytime; an
    //    injected node degrades to the greedy incumbent, never an error.
    {
        failpoints::configure("ilp_node=err@1").unwrap();
        let schedule = flow
            .try_schedule(&baseline, Solver::Ilp)
            .expect("an injected B&B node degrades the solve, not the schedule");
        failpoints::clear();
        assert!(
            covers_all_targets(&schedule, &baseline),
            "a degraded schedule still covers every target fault"
        );
    }

    // -- cooperative cancellation during analysis: the token is observed
    //    only after a band checkpoint, so the campaign stays resumable.
    {
        let path = dir.join("cancelled.fmck");
        let token = CancelToken::new();
        token.cancel();
        let cancelled_flow = HdfTestFlow::prepare(&circuit, &config).with_cancel(token);
        let err = cancelled_flow
            .analyze_resumable(&patterns, &CheckpointStore::new(&path))
            .expect_err("a pre-cancelled token stops the campaign");
        assert!(
            matches!(err, FlowError::Cancelled { phase: "analyze" }),
            "got {err:?}"
        );
        assert!(
            path.exists(),
            "cancellation is observed after the band checkpoint flush"
        );
        // a fresh (uncancelled) flow picks the campaign back up
        let resumed_flow = HdfTestFlow::prepare(&circuit, &config);
        let got = resumed_flow
            .analyze_resumable(&patterns, &CheckpointStore::new(&path))
            .expect("the cancelled campaign's checkpoint is resumable");
        assert_same_analysis(&got, &baseline, "cancel + resume");
        assert_eq!(resumed_flow.metrics().checkpoint.resumes.get(), 1);
    }

    // -- cooperative cancellation during ATPG: the PODEM worklist checks
    //    the token between faults and returns the typed phase error.
    {
        let token = CancelToken::new();
        token.cancel();
        let podem_only = AtpgConfig {
            random_patterns: 0,
            threads: 2,
            ..AtpgConfig::default()
        };
        let err =
            fastmon_atpg::try_generate_with_metrics(&circuit, &podem_only, None, Some(&token))
                .expect_err("a cancelled token stops pattern generation");
        assert!(
            matches!(err, AtpgError::Cancelled { phase: "atpg" }),
            "got {err:?}"
        );
    }

    // -- cancellation degrades the ILP schedule instead of erroring. The
    //    baseline analysis is compatible with the fresh flow because the
    //    seed fixes the sampled monitor placement.
    {
        let token = CancelToken::new();
        token.cancel();
        let cancelled_flow = HdfTestFlow::prepare(&circuit, &config).with_cancel(token);
        let schedule = cancelled_flow
            .try_schedule(&baseline, Solver::Ilp)
            .expect("a cancelled schedule is still a valid schedule");
        assert!(covers_all_targets(&schedule, &baseline));
    }

    assert!(
        !failpoints::active(),
        "the suite must leave the global schedule disabled"
    );
    std::fs::remove_dir_all(&dir).ok();
}
