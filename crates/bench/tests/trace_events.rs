//! End-to-end trace test: runs a campaign with `FASTMON_TRACE=1` (the real
//! env-var path, not `force_enable`), then parses the emitted
//! `events.jsonl` and checks the schema invariants that downstream tooling
//! relies on: constant run id, per-thread bracket-matched span nesting,
//! non-negative durations, and the presence of every phase span.
//!
//! Trace state is process-global, so this file holds exactly one `#[test]`
//! — the sibling `concurrent_metrics.rs` (a separate test binary, hence a
//! separate process) covers scoped-registry isolation.

use std::collections::BTreeMap;

use fastmon_core::{CheckpointStore, FlowConfig, HdfTestFlow, Solver};
use fastmon_netlist::library;
use fastmon_obs::json::{self, Value};

#[test]
fn traced_flow_emits_well_formed_jsonl() {
    let dir = std::env::temp_dir().join(format!("fastmon-trace-events-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Must happen before the first span in this process: the trace layer
    // reads the environment exactly once, on first use.
    std::env::set_var("FASTMON_TRACE", "1");
    std::env::set_var("FASTMON_TRACE_DIR", &dir);

    let circuit = library::s27();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(8));
    let store = CheckpointStore::new(dir.join("campaign.fmck"));
    let analysis = flow.analyze_resumable(&patterns, &store).unwrap();
    let _ = flow.schedule(&analysis, Solver::Ilp);
    fastmon_obs::emit_counters("trace_events_test", flow.metrics());
    fastmon_obs::flush();

    assert!(
        fastmon_obs::jsonl_enabled(),
        "FASTMON_TRACE=1 must enable the event log"
    );

    let text = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 10,
        "expected a real event stream, got {} lines",
        lines.len()
    );

    let mut run_id: Option<String> = None;
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut saw_counters = false;
    for (i, line) in lines.iter().enumerate() {
        let v =
            json::parse(line).unwrap_or_else(|e| panic!("line {}: bad JSON {e}: {line}", i + 1));
        assert_eq!(
            v.get("v").and_then(Value::as_u64),
            Some(u64::from(fastmon_obs::TRACE_SCHEMA_VERSION)),
            "line {}: wrong schema version",
            i + 1
        );
        let ev = v.get("ev").and_then(Value::as_str).unwrap().to_owned();
        let run = v.get("run").and_then(Value::as_str).unwrap().to_owned();
        match &run_id {
            None => {
                assert_eq!(ev, "meta", "first event must be the meta record");
                run_id = Some(run);
            }
            Some(expected) => assert_eq!(&run, expected, "line {}: run id changed", i + 1),
        }
        match ev.as_str() {
            "meta" => {}
            "enter" => {
                let tid = v.get("tid").and_then(Value::as_u64).unwrap();
                let name = v.get("name").and_then(Value::as_str).unwrap().to_owned();
                names.push(name.clone());
                stacks.entry(tid).or_default().push(name);
            }
            "exit" => {
                let tid = v.get("tid").and_then(Value::as_u64).unwrap();
                let name = v.get("name").and_then(Value::as_str).unwrap();
                // u64 in the schema: non-negative by construction, but it
                // must be present and integral on every exit.
                assert!(
                    v.get("dur_ns").and_then(Value::as_u64).is_some(),
                    "line {}: exit without integral dur_ns",
                    i + 1
                );
                let top = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(
                    top.as_deref(),
                    Some(name),
                    "line {}: exit does not match enter",
                    i + 1
                );
            }
            "counters" => {
                assert!(v.get("counters").and_then(Value::as_obj).is_some());
                saw_counters = true;
            }
            other => panic!("line {}: unknown event kind {other}", i + 1),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left unclosed spans: {stack:?}");
    }
    assert!(saw_counters, "emit_counters record missing");
    for required in [
        "sta",
        "atpg",
        "analyze",
        "band",
        "ilp_stage_a",
        "ilp_stage_b",
        "checkpoint_save",
        "checkpoint_load",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "phase span \"{required}\" missing from trace (saw: {names:?})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
