//! Chaos suite for the multi-process shard supervisor: real worker
//! processes (the `perf_snapshot` binary re-exec'd as `--shard-worker`)
//! simulating a real (tiny) paper-suite campaign, abused with kill -9,
//! armed failpoints, a forced stall, a forced RSS eviction and a
//! supervisor restart mid-campaign — every merged result must be
//! bit-identical to the clean serial baseline.
//!
//! Environment knobs (`FASTMON_SHARD_*`, `FASTMON_FAILPOINTS`) are
//! process-global and inherited by the spawned workers, so all scenarios
//! run inside one test body, strictly serialized, with the variables
//! cleared between scenarios.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::time::Duration;

use fastmon_bench::shardsup::supervise;
use fastmon_bench::ExperimentConfig;
use fastmon_core::shardsup::send_signal;
use fastmon_core::{HdfTestFlow, ShardsupError, SupervisorEvent};
use fastmon_netlist::generate::CircuitProfile;

const SIGKILL: i32 = 9;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastmon-shardsup-chaos-{tag}-{}-{}",
        std::process::id(),
        fastmon_obs::run_id(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn supervised_chaos_converges_to_the_serial_fingerprint() {
    // Scenarios must not leak knobs into one another (or into a rerun
    // after a failure), so start from a known-clean slate.
    for key in [
        "FASTMON_FAILPOINTS",
        "FASTMON_SHARD_HANG",
        "FASTMON_SHARD_STALL_SECS",
        "FASTMON_SHARD_RSS_BYTES",
        "FASTMON_SHARD_RSS_POLL_MS",
        "FASTMON_SHARD_JOBS",
        "FASTMON_SHARD_VERIFY",
    ] {
        std::env::remove_var(key);
    }
    // Charged respawns back off; keep the suite fast.
    std::env::set_var("FASTMON_SHARD_BACKOFF_MS", "1");

    let config = ExperimentConfig {
        target_gates: 4000,
        max_faults: 8000,
        circuits: vec![],
        seed: 1,
        ilp_deadline: Duration::from_secs(5),
        shards: 3,
        shard_procs: true,
    };
    let scale = 0.05;
    let base = CircuitProfile::named("s9234").unwrap();
    let profile = base.scaled(scale);
    let circuit = profile.generate(config.seed).unwrap();
    let flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
    let patterns = flow
        .try_generate_patterns(Some(profile.pattern_budget))
        .unwrap();
    // The clean serial baseline every chaotic run must reproduce bit for
    // bit. Computing it first also initializes the in-process failpoint
    // schedule (empty), so arming FASTMON_FAILPOINTS later reaches only
    // the spawned workers, never this process.
    let golden = flow.try_analyze(&patterns).unwrap().result_fingerprint();
    let worker = Path::new(env!("CARGO_BIN_EXE_perf_snapshot"));
    let name = &profile.name;

    // ---- scenario 1: supervisor restart mid-campaign --------------------
    // Phase A is cancelled after a few heartbeats (children SIGTERMed,
    // checkpoints left resumable); phase B restarts the supervisor over
    // the same directory and must finish from the landed state.
    {
        let dir = tmp("restart");
        let token = fastmon_obs::CancelToken::new();
        let flow_a =
            HdfTestFlow::prepare(&circuit, &config.flow_config()).with_cancel(token.clone());
        let mut heartbeats = 0u32;
        let outcome = supervise(
            &flow_a,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |event| {
                if matches!(event, SupervisorEvent::Heartbeat { .. }) {
                    heartbeats += 1;
                    if heartbeats == 3 {
                        token.cancel();
                    }
                }
            },
        );
        match outcome {
            Err(fastmon_bench::shardsup::SuperviseError::Shardsup(ShardsupError::Cancelled {
                ..
            })) => {}
            // A tiny campaign can legitimately finish before the third
            // heartbeat trips the token; that still exercises phase B as
            // a pure already-landed restart.
            Ok(_) => {}
            Err(e) => panic!("phase A must cancel or complete, got {e}"),
        }
        let run = supervise(
            &flow,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |_| {},
        )
        .expect("restarted supervisor must finish the campaign");
        assert_eq!(
            run.analysis.result_fingerprint(),
            golden,
            "restart: merged fingerprint diverged from the serial baseline"
        );
        assert_eq!(run.report.shards_completed, config.shards as u64);
        eprintln!(
            "[chaos] restart: phase B finished from landed state, report {:?}",
            run.report
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- scenario 2: two random kill -9s, verify parity in-process ------
    {
        let dir = tmp("kill9");
        std::env::set_var("FASTMON_SHARD_VERIFY", "1");
        let mut killed: Vec<usize> = Vec::new();
        let run = supervise(
            &flow,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |event| {
                if let SupervisorEvent::Spawned {
                    shard,
                    attempt: 0,
                    pid,
                } = event
                {
                    if killed.len() < 2 && !killed.contains(shard) {
                        // SIGKILL immediately after spawn: no result can
                        // have landed, so the crash is always charged.
                        assert!(send_signal(*pid, SIGKILL));
                        killed.push(*shard);
                    }
                }
            },
        )
        .expect("campaign must survive two kill -9s");
        std::env::remove_var("FASTMON_SHARD_VERIFY");
        assert_eq!(killed.len(), 2);
        assert!(
            run.report.respawns >= 2,
            "both murdered workers must be respawned: {:?}",
            run.report
        );
        assert_eq!(run.analysis.result_fingerprint(), golden);
        assert_eq!(
            run.verified_against,
            Some(golden),
            "FASTMON_SHARD_VERIFY must compare against the in-process reference"
        );
        eprintln!(
            "[chaos] kill9: shards {killed:?} murdered, report {:?}",
            run.report
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- scenario 3: armed failpoint in every first-attempt child -------
    // `campaign_band=err@2` makes each worker's first attempt die with a
    // typed injected error after durably checkpointing band 1; respawns
    // run clean (the supervisor strips FASTMON_FAILPOINTS) and must
    // resume, not restart.
    {
        let dir = tmp("failpoints");
        std::env::set_var("FASTMON_FAILPOINTS", "campaign_band=err@2");
        let mut resumed = 0u32;
        let run = supervise(
            &flow,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |event| {
                if let SupervisorEvent::Heartbeat { value, .. } = event {
                    if value
                        .get("event")
                        .and_then(fastmon_obs::json::Value::as_str)
                        == Some("shard_resumed")
                    {
                        resumed += 1;
                    }
                }
            },
        )
        .expect("campaign must survive the armed failpoints");
        std::env::remove_var("FASTMON_FAILPOINTS");
        assert!(
            run.report.respawns >= 1,
            "injected first attempts must be respawned: {:?}",
            run.report
        );
        assert!(
            resumed >= 1,
            "at least one respawn must resume from its shard checkpoint"
        );
        assert_eq!(run.analysis.result_fingerprint(), golden);
        eprintln!(
            "[chaos] failpoints: {resumed} checkpoint resumes, report {:?}",
            run.report
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- scenario 4: hung child is stall-killed, respawn resumes --------
    // The FASTMON_SHARD_HANG knob silences shard 0's first worker at its
    // first band boundary (after the checkpoint landed). The stall
    // watchdog must SIGKILL it; the charged respawn resumes and the
    // merged result is unchanged — the respawn counter proves the path.
    {
        let dir = tmp("stall");
        let flag = dir.join("hang-once");
        std::env::set_var("FASTMON_SHARD_HANG", format!("0:{}", flag.display()));
        std::env::set_var("FASTMON_SHARD_STALL_SECS", "1");
        let stall_flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
        let run = supervise(
            &stall_flow,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |_| {},
        )
        .expect("campaign must survive a hung worker");
        std::env::remove_var("FASTMON_SHARD_HANG");
        std::env::remove_var("FASTMON_SHARD_STALL_SECS");
        assert!(flag.exists(), "the hang injection never fired");
        assert!(
            run.report.stalls_detected >= 1,
            "the silent worker must be detected: {:?}",
            run.report
        );
        assert!(run.report.respawns >= 1, "a stall kill charges the budget");
        // the supervisor records its counters in the flow's registry
        let shardsup = &stall_flow.metrics().shardsup;
        assert_eq!(shardsup.respawns.get(), run.report.respawns);
        assert_eq!(shardsup.stalls_detected.get(), run.report.stalls_detected);
        assert_eq!(run.analysis.result_fingerprint(), golden);
        eprintln!("[chaos] stall: report {:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- scenario 5: forced RSS eviction is graceful and uncharged ------
    // A 1-byte ceiling evicts every worker at every probe; each
    // evict/readmit cycle still banks at least one band (the worker
    // observes the cancel only after a band checkpoint), so the campaign
    // converges without spending any respawn budget.
    {
        let dir = tmp("rss");
        std::env::set_var("FASTMON_SHARD_RSS_BYTES", "1");
        std::env::set_var("FASTMON_SHARD_RSS_POLL_MS", "25");
        std::env::set_var("FASTMON_SHARD_JOBS", "1");
        let run = supervise(
            &flow,
            &patterns,
            &config,
            name,
            scale,
            &dir,
            Some(worker),
            &mut |_| {},
        )
        .expect("campaign must survive constant RSS eviction");
        std::env::remove_var("FASTMON_SHARD_RSS_BYTES");
        std::env::remove_var("FASTMON_SHARD_RSS_POLL_MS");
        std::env::remove_var("FASTMON_SHARD_JOBS");
        assert!(
            run.report.rss_evictions >= 1,
            "the 1-byte ceiling must evict at least once: {:?}",
            run.report
        );
        assert!(run.report.readmissions >= 1);
        assert_eq!(
            run.report.respawns, 0,
            "evictions must not charge the respawn budget: {:?}",
            run.report
        );
        assert_eq!(run.analysis.result_fingerprint(), golden);
        eprintln!("[chaos] rss: report {:?}", run.report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    std::env::remove_var("FASTMON_SHARD_BACKOFF_MS");
}
