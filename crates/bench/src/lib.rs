//! Experiment harness shared by the table/figure regenerator binaries.
//!
//! The paper's circuits are proprietary or non-redistributable, so the
//! suite consists of synthetic stand-ins generated from
//! [`fastmon_netlist::generate::paper_suite`] profiles. Because the
//! reference evaluation ran on a 2×Xeon + Tesla P100 host, the default run
//! scales each circuit down to a laptop-friendly size (≈ 4 k gates) and
//! samples the fault population; the applied scale is printed with every
//! table so results are interpretable.
//!
//! Environment knobs (all optional):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FASTMON_TARGET_GATES` | target circuit size after scaling | `4000` |
//! | `FASTMON_MAX_FAULTS` | candidate-fault sample cap per circuit | `8000` |
//! | `FASTMON_CIRCUITS` | comma-separated circuit-name filter | all 12 |
//! | `FASTMON_SEED` | master seed | `1` |
//! | `FASTMON_ILP_SECS` | per-ILP deadline in seconds | `20` |
//! | `FASTMON_CHECKPOINT_DIR` | campaign-checkpoint directory | `target/fastmon-checkpoints` |
//! | `FASTMON_FRESH` | set to `1` to discard existing checkpoints | unset |
//! | `FASTMON_SHARDS` | fault-set shards per campaign (merge is bit-identical) | `1` |
//! | `FASTMON_SHARD_PROCS` | set to `1` to run each shard as a supervised child process | unset |
//! | `FASTMON_SHARD_JOBS` | concurrent shard workers under the supervisor | cores |
//! | `FASTMON_SHARD_RSS_BYTES` | per-worker RSS ceiling before graceful eviction | unlimited |
//! | `FASTMON_SHARD_STALL_SECS` | heartbeat silence before a worker is killed | `60` |
//! | `FASTMON_SHARD_RETRIES` | respawn budget per shard | `3` |
//! | `FASTMON_SHARD_VERIFY` | set to `1` to re-run in process and assert parity | unset |
//!
//! The fault-simulation campaign checkpoints after every pattern band (see
//! [`fastmon_core::CheckpointStore`]); re-running an interrupted experiment
//! binary resumes where it left off and produces bit-identical results.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod manifest;
pub mod rss;
pub mod shardsup;
pub mod soak;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use fastmon_atpg::TestSet;
use fastmon_core::{
    CheckpointDir, CheckpointStore, DetectionAnalysis, FlowConfig, FlowError, HdfTestFlow,
    ShardsupError,
};
use fastmon_netlist::generate::{paper_suite, CircuitProfile};
use fastmon_netlist::Circuit;

/// Exit code for a run that stopped cooperatively at a cancellation
/// boundary (a `FASTMON_DEADLINE_SECS` deadline or an explicit soft
/// cancel): partial results are checkpointed and trustworthy. Follows BSD
/// `EX_TEMPFAIL` — the `run_all` driver records it as `cancelled` rather
/// than `failed`.
pub const EXIT_CANCELLED: i32 = 75;

/// Reports a flow error with a one-line diagnostic and exits: cancellation
/// is a clean stop ([`EXIT_CANCELLED`]), everything else is a failure (1).
fn exit_flow_error(circuit: &str, phase: &str, e: &FlowError) -> ! {
    if matches!(e, FlowError::Cancelled { .. }) {
        eprintln!("[bench] {circuit}: {e}; progress checkpointed, exiting cleanly");
        std::process::exit(EXIT_CANCELLED);
    }
    eprintln!("[bench] {circuit}: {phase} failed: {e}");
    std::process::exit(1);
}

/// Configuration of an experiment run, read from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Circuits are scaled so their gate count is at most this.
    pub target_gates: usize,
    /// Fault-sample cap per circuit.
    pub max_faults: usize,
    /// Only run circuits whose name is in this list (empty = all).
    pub circuits: Vec<String>,
    /// Master seed.
    pub seed: u64,
    /// Per-ILP-solve deadline.
    pub ilp_deadline: Duration,
    /// Fault-set shards per campaign (`FASTMON_SHARDS`, 1 = unsharded).
    /// The merged sharded result is bit-identical to the serial run, so
    /// this only changes checkpoint granularity and memory footprint.
    pub shards: usize,
    /// Run each shard as a supervised child OS process
    /// (`FASTMON_SHARD_PROCS=1`) instead of in-process slices — crash,
    /// stall and RSS isolation per shard (see [`shardsup`]).
    pub shard_procs: bool,
}

impl ExperimentConfig {
    /// Reads the configuration from `FASTMON_*` environment variables,
    /// exiting with a one-line diagnostic (status 2) when a sharding
    /// knob is malformed. Library callers that want the error instead
    /// use [`ExperimentConfig::try_from_env`].
    #[must_use]
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(config) => config,
            Err(e) => {
                eprintln!("[bench] invalid configuration: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Reads the configuration from `FASTMON_*` environment variables.
    ///
    /// # Errors
    ///
    /// [`ShardsupError::Config`] when `FASTMON_SHARDS`,
    /// `FASTMON_SHARD_JOBS` or `FASTMON_SHARD_PROCS` is set to something
    /// unusable (`0`, non-numeric, or more than
    /// [`fastmon_core::MAX_SHARDS`]) — the error carries the offending
    /// string rather than silently clamping it.
    pub fn try_from_env() -> Result<Self, ShardsupError> {
        let get = |k: &str| std::env::var(k).ok();
        let shards = match get("FASTMON_SHARDS") {
            Some(raw) => fastmon_core::parse_shard_count("FASTMON_SHARDS", &raw)?,
            None => 1,
        };
        // Validated here so a bad value fails fast at startup, not after
        // ATPG when the supervisor first reads it.
        if let Some(raw) = get("FASTMON_SHARD_JOBS") {
            fastmon_core::parse_shard_count("FASTMON_SHARD_JOBS", &raw)?;
        }
        let shard_procs = match get("FASTMON_SHARD_PROCS").as_deref() {
            None | Some("0") | Some("") => false,
            Some("1") => true,
            Some(other) => {
                return Err(ShardsupError::Config {
                    key: "FASTMON_SHARD_PROCS".to_owned(),
                    value: other.to_owned(),
                    reason: "expected 0 or 1".to_owned(),
                })
            }
        };
        Ok(ExperimentConfig {
            target_gates: get("FASTMON_TARGET_GATES")
                .and_then(|v| v.parse().ok())
                .unwrap_or(4_000),
            max_faults: get("FASTMON_MAX_FAULTS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8_000),
            circuits: get("FASTMON_CIRCUITS")
                .map(|v| v.split(',').map(|s| s.trim().to_owned()).collect())
                .unwrap_or_default(),
            seed: get("FASTMON_SEED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
            ilp_deadline: Duration::from_secs(
                get("FASTMON_ILP_SECS")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(20),
            ),
            shards,
            shard_procs,
        })
    }

    /// The benchmark suite after filtering and scaling.
    #[must_use]
    pub fn suite(&self) -> Vec<(CircuitProfile, f64)> {
        paper_suite()
            .into_iter()
            .filter(|p| self.circuits.is_empty() || self.circuits.iter().any(|c| c == &p.name))
            .map(|p| {
                let scale = (self.target_gates as f64 / p.gates as f64).min(1.0);
                (p.scaled(scale), scale)
            })
            .collect()
    }

    /// The flow configuration used for every circuit of the run.
    #[must_use]
    pub fn flow_config(&self) -> FlowConfig {
        FlowConfig {
            seed: self.seed,
            max_faults: Some(self.max_faults),
            ilp_deadline: self.ilp_deadline,
            ..FlowConfig::default()
        }
    }
}

/// A fully prepared circuit run: generated circuit, ATPG patterns and the
/// fault-simulation campaign.
pub struct PreparedRun {
    /// The synthetic stand-in circuit.
    pub circuit: Circuit,
    /// Scale factor applied to the paper profile.
    pub scale: f64,
    /// The compacted transition test set (capped at the profile's scaled
    /// pattern budget).
    pub patterns_len: usize,
    /// Wall-clock seconds per phase: (atpg, analyze).
    pub phase_secs: (f64, f64),
}

/// Directory where campaign checkpoints are kept
/// (`FASTMON_CHECKPOINT_DIR`, default `target/fastmon-checkpoints`).
#[must_use]
pub fn checkpoint_dir() -> PathBuf {
    std::env::var("FASTMON_CHECKPOINT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/fastmon-checkpoints"))
}

/// The checkpoint store the experiment binaries use for `circuit`.
#[must_use]
pub fn checkpoint_store(circuit: &str) -> CheckpointStore {
    CheckpointStore::new(checkpoint_dir().join(format!("{circuit}.fmck")))
}

/// Prepares a circuit and runs ATPG + fault simulation, handing the
/// borrowing-sensitive pieces to `f`.
///
/// The fault-simulation campaign is resumable: progress is checkpointed
/// after every pattern band under [`checkpoint_dir`], so a killed run
/// picks up where it stopped (set `FASTMON_FRESH=1` to force a clean
/// start). If checkpointing itself fails — e.g. an unwritable target
/// directory — the campaign is rerun without checkpoints rather than
/// aborted.
///
/// # Panics
///
/// Panics if the profile cannot generate (over-scaled) — the built-in
/// profiles never do.
pub fn with_run<R>(
    profile: &CircuitProfile,
    scale: f64,
    config: &ExperimentConfig,
    f: impl FnOnce(&HdfTestFlow<'_>, &TestSet, &DetectionAnalysis, &PreparedRun) -> R,
) -> R {
    let circuit = match profile.generate(config.seed) {
        Ok(c) => c,
        Err(e) => panic!("profile `{}` cannot generate a circuit: {e}", profile.name),
    };
    let flow_config = config.flow_config();
    let flow = HdfTestFlow::prepare(&circuit, &flow_config);

    let t = Instant::now();
    let patterns = match flow.try_generate_patterns(Some(profile.pattern_budget)) {
        Ok(p) => p,
        Err(e) => exit_flow_error(&profile.name, "pattern generation", &e),
    };
    let atpg_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let analysis = if config.shards > 1 {
        // Sharded campaign: every shard checkpoint and result file lives
        // inside a locked per-fingerprint job directory, so a daemon's
        // startup GC sweep skips them while this run is alive (the LOCK
        // names this PID) instead of racing the shard writers.
        let jobs = CheckpointDir::new(checkpoint_dir().join("shard-jobs"));
        match jobs
            .acquire(flow.campaign_fingerprint(&patterns))
            .map_err(|e| e.to_string())
            .and_then(|job| {
                if std::env::var("FASTMON_FRESH").is_ok_and(|v| v == "1") {
                    clear_shard_files(job.dir());
                }
                let analysis = if config.shard_procs {
                    run_shard_procs(&flow, &patterns, config, profile, scale, job.dir())?
                } else {
                    flow.analyze_sharded_resumable_observed(
                        &patterns,
                        config.shards,
                        job.dir(),
                        &mut |_, _| {},
                    )
                    .map_err(|e| match e {
                        e @ (FlowError::Cancelled { .. }
                        | FlowError::Injected { .. }
                        | FlowError::WorkerPanic { .. }) => {
                            exit_flow_error(&profile.name, "fault simulation", &e)
                        }
                        e => e.to_string(),
                    })?
                };
                if let Err(e) = job.complete() {
                    eprintln!(
                        "[bench] {}: cannot remove finished shard job dir: {e}",
                        profile.name
                    );
                }
                Ok(analysis)
            }) {
            Ok(a) => a,
            Err(e) => {
                eprintln!(
                    "[bench] {}: sharded checkpointing unavailable ({e}); rerunning unsharded",
                    profile.name
                );
                flow.analyze(&patterns)
            }
        }
    } else {
        let store = checkpoint_store(&profile.name);
        if std::env::var("FASTMON_FRESH").is_ok_and(|v| v == "1") {
            if let Err(e) = store.clear() {
                eprintln!(
                    "[bench] {}: cannot clear checkpoint {}: {e}",
                    profile.name,
                    store.path().display()
                );
            }
        }
        match flow.analyze_resumable(&patterns, &store) {
            Ok(a) => a,
            // A cancelled campaign already flushed its last band checkpoint;
            // resuming later is bit-identical, so do NOT fall back to an
            // un-checkpointed rerun here.
            Err(
                e @ (FlowError::Cancelled { .. }
                | FlowError::Injected { .. }
                | FlowError::WorkerPanic { .. }),
            ) => exit_flow_error(&profile.name, "fault simulation", &e),
            Err(e) => {
                eprintln!(
                    "[bench] {}: checkpointing unavailable ({e}); rerunning without checkpoints",
                    profile.name
                );
                flow.analyze(&patterns)
            }
        }
    };
    let analyze_secs = t.elapsed().as_secs_f64();

    let run = PreparedRun {
        scale,
        patterns_len: patterns.len(),
        phase_secs: (atpg_secs, analyze_secs),
        circuit: circuit.clone(),
    };
    f(&flow, &patterns, &analysis, &run)
}

/// Removes the `shard-*` checkpoint/result files inside a job directory
/// (a `FASTMON_FRESH` restart) without disturbing its `LOCK`.
fn clear_shard_files(dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with("shard-") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Runs the sharded campaign through the multi-process supervisor
/// ([`shardsup::supervise`]): fatal outcomes (cancellation, injected
/// faults) exit the process like every other campaign path, anything
/// else degrades to a fallback-worthy message.
fn run_shard_procs(
    flow: &HdfTestFlow<'_>,
    patterns: &TestSet,
    config: &ExperimentConfig,
    profile: &CircuitProfile,
    scale: f64,
    dir: &std::path::Path,
) -> Result<DetectionAnalysis, String> {
    match shardsup::supervise(
        flow,
        patterns,
        config,
        &profile.name,
        scale,
        dir,
        None,
        &mut |_| {},
    ) {
        Ok(run) => {
            let r = &run.report;
            eprintln!(
                "[bench] {}: supervised {} shards: {} workers, {} respawns, {} stalls, {} evictions",
                profile.name,
                config.shards,
                r.workers_spawned,
                r.respawns,
                r.stalls_detected,
                r.rss_evictions,
            );
            Ok(run.analysis)
        }
        Err(shardsup::SuperviseError::Flow(
            e @ (FlowError::Cancelled { .. }
            | FlowError::Injected { .. }
            | FlowError::WorkerPanic { .. }),
        )) => exit_flow_error(&profile.name, "supervised fault simulation", &e),
        Err(shardsup::SuperviseError::Shardsup(ShardsupError::Cancelled { phase })) => {
            exit_flow_error(
                &profile.name,
                "supervised fault simulation",
                &FlowError::Cancelled { phase },
            )
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Prints a markdown table: header, alignment row, rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Formats a signed percentage like the paper (`(+12.2%)`).
#[must_use]
pub fn pct(v: f64) -> String {
    format!("({}{:.1}%)", if v >= 0.0 { "+" } else { "" }, v)
}

/// Reference values from the paper for side-by-side printing.
pub mod paper {
    /// Table I reference: `(circuit, conv, prop, gain %, |Φ_tar|)`.
    pub const TABLE1: [(&str, usize, usize, f64, usize); 12] = [
        ("s9234", 5469, 6135, 12.2, 4655),
        ("s13207", 3349, 7859, 134.7, 6814),
        ("s15850", 3541, 8880, 150.8, 8607),
        ("s35932", 34868, 36129, 3.6, 16211),
        ("s38417", 25064, 32014, 27.7, 26327),
        ("s38584", 20348, 31119, 52.9, 29608),
        ("p35k", 35669, 59759, 67.5, 53592),
        ("p45k", 48764, 80544, 65.2, 79752),
        ("p78k", 325682, 337977, 3.8, 245824),
        ("p89k", 45792, 133175, 190.8, 132503),
        ("p100k", 111955, 206990, 84.9, 197007),
        ("p141k", 196491, 297260, 51.3, 290637),
    ];

    /// One Table II reference row:
    /// `(circuit, conv |F|, heur |F|, prop |F|, Δ%|F|, orig PC, opti PC, Δ%|PC|)`.
    pub type Table2Ref = (&'static str, usize, usize, usize, f64, usize, usize, f64);

    /// Table II reference values.
    pub const TABLE2: [Table2Ref; 12] = [
        ("s9234", 20, 16, 13, 35.0, 10075, 662, 93.4),
        ("s13207", 17, 16, 12, 29.4, 11700, 852, 92.7),
        ("s15850", 24, 25, 22, 8.3, 14740, 949, 93.6),
        ("s35932", 16, 8, 7, 56.3, 1365, 367, 73.1),
        ("s38417", 34, 23, 18, 47.1, 11520, 1954, 83.0),
        ("s38584", 31, 23, 17, 45.2, 13600, 1823, 86.6),
        ("p35k", 58, 49, 40, 31.0, 303600, 6857, 97.7),
        ("p45k", 24, 36, 26, -8.3, 353470, 5576, 98.4),
        ("p78k", 47, 34, 29, 38.3, 10150, 2323, 77.1),
        ("p89k", 44, 52, 41, 6.8, 203565, 10790, 94.7),
        ("p100k", 46, 51, 40, 13.0, 526200, 13577, 97.4),
        ("p141k", 60, 65, 48, 20.0, 197760, 17762, 91.0),
    ];

    /// Table III reference for cov ≥ 99 %:
    /// `(circuit, |F99|, |PC99|, |S99|, Δ%)`.
    pub const TABLE3_COV99: [(&str, usize, usize, usize, f64); 12] = [
        ("s9234", 9, 6975, 640, 90.8),
        ("s13207", 9, 8775, 831, 90.5),
        ("s15850", 13, 8710, 896, 89.7),
        ("s35932", 6, 1170, 357, 69.5),
        ("s38417", 10, 6400, 1836, 71.3),
        ("s38584", 9, 7200, 1678, 76.7),
        ("p35k", 22, 166980, 6569, 96.1),
        ("p45k", 10, 135950, 5232, 96.2),
        ("p78k", 6, 2100, 1443, 31.3),
        ("p89k", 20, 99300, 10140, 89.8),
        ("p100k", 13, 171015, 12547, 92.7),
        ("p141k", 20, 82400, 16372, 80.1),
    ];

    /// Fig. 3 anchor points (read off the published figure):
    /// conventional FAST reaches ≈ 35 % HDF coverage at `f_max = 2.9·f_nom`,
    /// monitors lift the 3·f_nom coverage to ≈ 65 %.
    pub const FIG3_CONV_AT_29: f64 = 0.35;
    /// Monitor-assisted coverage at 3·f_nom in the published figure.
    pub const FIG3_PROP_AT_30: f64 = 0.65;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults() {
        // no FASTMON_* variables set in the test environment
        let cfg = ExperimentConfig::from_env();
        assert!(cfg.target_gates >= 1000);
        assert!(cfg.max_faults >= 1000);
        assert!(cfg.ilp_deadline.as_secs() >= 1);
    }

    #[test]
    fn suite_scales_to_target() {
        let cfg = ExperimentConfig {
            target_gates: 2000,
            max_faults: 4000,
            circuits: vec![],
            seed: 1,
            ilp_deadline: Duration::from_secs(5),
            shards: 1,
            shard_procs: false,
        };
        let suite = cfg.suite();
        assert_eq!(suite.len(), 12);
        for (profile, scale) in suite {
            assert!(scale <= 1.0);
            assert!(
                profile.gates <= 2200,
                "{} still has {} gates",
                profile.name,
                profile.gates
            );
        }
    }

    #[test]
    fn suite_filter_selects() {
        let cfg = ExperimentConfig {
            circuits: vec!["s9234".into(), "p89k".into()],
            target_gates: 4000,
            max_faults: 8000,
            seed: 1,
            ilp_deadline: Duration::from_secs(5),
            shards: 1,
            shard_procs: false,
        };
        let names: Vec<String> = cfg.suite().into_iter().map(|(p, _)| p.name).collect();
        assert_eq!(names, vec!["s9234".to_owned(), "p89k".to_owned()]);
    }

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(12.25), "(+12.2%)");
        assert_eq!(pct(-8.3), "(-8.3%)");
        assert_eq!(pct(0.0), "(+0.0%)");
    }

    #[test]
    fn paper_reference_tables_are_complete() {
        assert_eq!(paper::TABLE1.len(), 12);
        assert_eq!(paper::TABLE2.len(), 12);
        assert_eq!(paper::TABLE3_COV99.len(), 12);
        // every profile name appears in every reference table
        let cfg = ExperimentConfig::from_env();
        for (profile, _) in cfg.suite() {
            assert!(paper::TABLE1.iter().any(|(n, ..)| *n == profile.name));
            assert!(paper::TABLE2.iter().any(|r| r.0 == profile.name));
            assert!(paper::TABLE3_COV99.iter().any(|(n, ..)| *n == profile.name));
        }
    }
}
