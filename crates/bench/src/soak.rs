//! Chaos-soak driver for `fastmond`: spawn the real daemon binary, fire
//! concurrent multi-tenant campaign clients at it, `kill -9` it at band
//! boundaries, restart it, and collect every campaign's terminal record.
//!
//! The driver is deliberately daemon-agnostic at the type level (it
//! speaks the newline-JSON wire protocol over a socket and manages a
//! child process) so it lives here in the bench crate; the actual soak
//! acceptance test in `crates/daemon/tests/soak.rs` combines it with an
//! in-process clean serial baseline to assert bit-identity.
//!
//! A campaign is "done" only when a daemon answers a `completed`
//! terminal record for it. Everything else — connection refused while
//! the daemon is down, `cancelled`/`failed (resumable)`/`drained`
//! terminals, `queue_full` rejects — makes the client reconnect (via the
//! atomically rewritten `--addr-file`) and resubmit the identical
//! request, which resumes from the campaign's durable checkpoint.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastmon_obs::json::{self, Value};

/// What one soak run looks like.
#[derive(Debug, Clone)]
pub struct SoakPlan {
    /// Concurrent client threads.
    pub clients: usize,
    /// Campaigns each client runs (sequentially).
    pub per_client: usize,
    /// `kill -9` + restart cycles while campaigns are in flight.
    pub kills: usize,
    /// `FASTMON_FAILPOINTS` spec armed in the daemon child (not in the
    /// driving process).
    pub failpoints: Option<String>,
    /// Circuit profile submitted by every campaign.
    pub profile: String,
    /// Profile scale factor.
    pub scale: f64,
    /// Fault-sample cap per campaign.
    pub max_faults: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue capacity.
    pub queue_limit: usize,
    /// Abort the soak (as a failure) after this long.
    pub budget: Duration,
}

impl SoakPlan {
    /// The acceptance-scale default: 4 clients × 2 campaigns with 2
    /// kills, failpoints armed.
    #[must_use]
    pub fn acceptance() -> Self {
        SoakPlan {
            clients: 4,
            per_client: 2,
            kills: 2,
            failpoints: Some("checkpoint_write=err@every:5;campaign_band=err@every:23".to_string()),
            profile: "s9234".to_string(),
            scale: 0.05,
            max_faults: 150,
            workers: 2,
            queue_limit: 16,
            budget: Duration::from_secs(600),
        }
    }

    /// Scales the acceptance plan via `FASTMON_SOAK_*` env knobs
    /// (`CLIENTS`, `PER_CLIENT`, `KILLS`) — CI smoke uses
    /// `CLIENTS=2 PER_CLIENT=2 KILLS=1` wait-time-boxed.
    #[must_use]
    pub fn from_env() -> Self {
        let mut plan = SoakPlan::acceptance();
        let read = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        if let Some(v) = read("FASTMON_SOAK_CLIENTS") {
            plan.clients = v.max(1);
        }
        if let Some(v) = read("FASTMON_SOAK_PER_CLIENT") {
            plan.per_client = v.max(1);
        }
        if let Some(v) = read("FASTMON_SOAK_KILLS") {
            plan.kills = v;
        }
        plan
    }

    /// The deterministic campaign list this plan submits: one spec per
    /// (client, slot), each with a distinct seed (distinct campaign
    /// fingerprint).
    #[must_use]
    pub fn campaigns(&self) -> Vec<CampaignSpec> {
        let mut out = Vec::new();
        for client in 0..self.clients {
            for slot in 0..self.per_client {
                out.push(CampaignSpec {
                    tenant: format!("tenant-{client}"),
                    name: format!("c{client}-j{slot}"),
                    seed: 100 + (client * self.per_client + slot) as u64,
                });
            }
        }
        out
    }
}

/// One campaign identity inside a soak plan.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Submitting tenant.
    pub tenant: String,
    /// Job label.
    pub name: String,
    /// Flow seed — the only thing distinguishing campaigns, hence the
    /// fingerprint key.
    pub seed: u64,
}

impl CampaignSpec {
    /// The submit request line for this campaign under `plan`.
    #[must_use]
    pub fn submit_line(&self, plan: &SoakPlan) -> String {
        format!(
            concat!(
                r#"{{"op":"submit","proto":1,"tenant":"{tenant}","name":"{name}","#,
                r#""circuit":{{"kind":"profile","name":"{profile}","scale":{scale},"seed":7}},"#,
                r#""max_faults":{max_faults},"seed":{seed},"threads":1}}"#
            ),
            tenant = self.tenant,
            name = self.name,
            profile = plan.profile,
            scale = plan.scale,
            max_faults = plan.max_faults,
            seed = self.seed,
        )
    }
}

/// How one campaign ended up.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Job label.
    pub name: String,
    /// Campaign fingerprint (hex, as reported on the wire).
    pub fingerprint: String,
    /// Result digest (hex) — bit-identity is equality of this.
    pub result_fingerprint: String,
    /// Whether any attempt resumed from a checkpoint.
    pub resumed_ever: bool,
    /// Submissions needed until `completed`.
    pub attempts: usize,
}

/// Aggregate soak outcome.
#[derive(Debug)]
pub struct SoakReport {
    /// Every campaign, completed.
    pub results: Vec<CampaignResult>,
    /// `kill -9`s actually delivered.
    pub kills: usize,
    /// Daemon (re)starts, including the first.
    pub starts: usize,
    /// Campaigns that resumed from a checkpoint at least once.
    pub resumed_campaigns: usize,
    /// Whether the final SIGTERM drain exited with status 0.
    pub drain_exit_zero: bool,
    /// Status of the in-flight job at drain time
    /// (`cancelled`/`completed`/`drained`).
    pub drain_job_status: String,
}

/// A spawned `fastmond` child process.
pub struct DaemonProc {
    child: Child,
}

impl DaemonProc {
    /// Spawns `bin` rooted at `root` (checkpoints, results and the addr
    /// file live underneath), with `failpoints` armed in its
    /// environment.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures as strings.
    pub fn spawn(
        bin: &Path,
        root: &Path,
        plan: &SoakPlan,
        failpoints: Option<&str>,
    ) -> Result<DaemonProc, String> {
        let mut cmd = Command::new(bin);
        cmd.arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(plan.workers.to_string())
            .arg("--queue-limit")
            .arg(plan.queue_limit.to_string())
            .arg("--checkpoint-root")
            .arg(root.join("checkpoints"))
            .arg("--results-dir")
            .arg(root.join("results"))
            .arg("--postmortem-dir")
            .arg(root.join("postmortems"))
            .arg("--addr-file")
            .arg(addr_file(root))
            .arg("--gc-grace-secs")
            .arg("900")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .env_remove("FASTMON_FAILPOINTS")
            .env_remove("FASTMON_DEADLINE_SECS");
        if let Some(spec) = failpoints {
            cmd.env("FASTMON_FAILPOINTS", spec);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        Ok(DaemonProc { child })
    }

    /// The child's PID.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// `kill -9` — the crash under test.
    pub fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Delivers SIGTERM (via `/bin/sh`, the workspace links no libc) and
    /// waits; returns whether the daemon exited with status 0.
    #[must_use]
    pub fn sigterm_and_wait(mut self) -> bool {
        let _ = Command::new("sh")
            .arg("-c")
            .arg(format!("kill -TERM {}", self.child.id()))
            .status();
        match self.child.wait() {
            Ok(status) => status.success(),
            Err(_) => false,
        }
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn addr_file(root: &Path) -> PathBuf {
    root.join("fastmond.addr")
}

fn read_addr(root: &Path) -> Option<SocketAddr> {
    std::fs::read_to_string(addr_file(root))
        .ok()?
        .trim()
        .parse()
        .ok()
}

fn connect(root: &Path) -> Option<TcpStream> {
    let addr = read_addr(root)?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .ok()?;
    Some(stream)
}

fn get_str(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(|s| s.as_str())
        .unwrap_or_default()
        .to_string()
}

enum Attempt {
    /// Terminal `completed` record.
    Completed(Value),
    /// Saw a `resumed` event before losing the daemon or getting a
    /// non-final terminal — resubmit.
    Retry { resumed: bool },
}

/// One submission attempt: connect, submit, stream until a terminal
/// record or a broken connection.
fn attempt(root: &Path, line: &str) -> Attempt {
    let mut resumed = false;
    let Some(stream) = connect(root) else {
        return Attempt::Retry { resumed };
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return Attempt::Retry { resumed },
    };
    if writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return Attempt::Retry { resumed };
    }
    let mut reader = BufReader::new(stream);
    loop {
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => return Attempt::Retry { resumed },
            Ok(_) => {}
        }
        let Ok(record) = json::parse(buf.trim()) else {
            return Attempt::Retry { resumed };
        };
        match get_str(&record, "event").as_str() {
            "resumed" => resumed = true,
            "band" => {
                BANDS_SEEN.fetch_add(1, Ordering::Relaxed);
            }
            "reject" => {
                std::thread::sleep(Duration::from_millis(200));
                return Attempt::Retry { resumed };
            }
            "terminal" => {
                if get_str(&record, "status") == "completed" {
                    return Attempt::Completed(record);
                }
                return Attempt::Retry { resumed };
            }
            _ => {}
        }
    }
}

/// Global band-progress counter the kill scheduler watches: a kill only
/// fires after fresh band checkpoints landed, so it reliably hits
/// mid-campaign.
static BANDS_SEEN: AtomicU64 = AtomicU64::new(0);

fn bands_seen() -> u64 {
    BANDS_SEEN.load(Ordering::Relaxed)
}

/// Drives one campaign to `completed`, resubmitting across crashes.
fn run_campaign(
    root: &Path,
    line: &str,
    deadline: Instant,
    failed: &AtomicBool,
) -> Result<CampaignResult, String> {
    let mut resumed_ever = false;
    let mut attempts = 0usize;
    loop {
        if failed.load(Ordering::Relaxed) {
            return Err("soak aborted".to_string());
        }
        if Instant::now() > deadline {
            failed.store(true, Ordering::Relaxed);
            return Err(format!(
                "campaign timed out after {attempts} attempts: {line}"
            ));
        }
        attempts += 1;
        match attempt(root, line) {
            Attempt::Completed(record) => {
                if record.get("resumed").and_then(Value::as_bool) == Some(true) {
                    resumed_ever = true;
                }
                return Ok(CampaignResult {
                    name: get_str(&record, "name"),
                    fingerprint: get_str(&record, "fingerprint"),
                    result_fingerprint: get_str(&record, "result_fingerprint"),
                    resumed_ever,
                    attempts,
                });
            }
            Attempt::Retry { resumed } => {
                resumed_ever |= resumed;
                std::thread::sleep(Duration::from_millis(150));
            }
        }
    }
}

/// One `observe` snapshot from whatever daemon the `--addr-file` under
/// `root` points at. The soak uses this to assert that a drained-out
/// daemon shows zero stuck jobs and latency totals consistent with the
/// campaigns it actually ran.
///
/// # Errors
///
/// Returns a diagnostic when the daemon is unreachable or answers
/// something that is not an `observe` record.
pub fn observe(root: &Path) -> Result<Value, String> {
    let Some(stream) = connect(root) else {
        return Err("cannot connect for observe".to_string());
    };
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("observe clone: {e}"))?;
    writer
        .write_all(b"{\"op\":\"observe\"}\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("observe send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    match reader.read_line(&mut buf) {
        Ok(0) => return Err("daemon closed before answering observe".to_string()),
        Ok(_) => {}
        Err(e) => return Err(format!("observe recv: {e}")),
    }
    let record = json::parse(buf.trim()).map_err(|e| format!("observe parse: {e}"))?;
    if get_str(&record, "event") != "observe" {
        return Err(format!("expected an observe record, got: {}", buf.trim()));
    }
    Ok(record)
}

/// Drives one campaign to `completed` against whatever daemon the
/// `--addr-file` under `root` points at, resubmitting across crashes
/// and restarts.
///
/// # Errors
///
/// Returns a diagnostic when `budget` expires first.
pub fn drive_to_completion(
    root: &Path,
    line: &str,
    budget: Duration,
) -> Result<CampaignResult, String> {
    let failed = AtomicBool::new(false);
    run_campaign(root, line, Instant::now() + budget, &failed)
}

/// Runs the full soak: concurrent clients, scheduled `kill -9`s with
/// restarts, then a SIGTERM drain with one job still in flight.
///
/// # Errors
///
/// Returns a diagnostic when the budget expires or the daemon cannot be
/// spawned; protocol violations panic (they are test failures).
#[allow(clippy::too_many_lines)]
pub fn run_soak(bin: &Path, root: &Path, plan: &SoakPlan) -> Result<SoakReport, String> {
    let _ = std::fs::remove_dir_all(root);
    std::fs::create_dir_all(root).map_err(|e| format!("create {}: {e}", root.display()))?;
    let deadline = Instant::now() + plan.budget;
    let failed = Arc::new(AtomicBool::new(false));

    let mut daemon = DaemonProc::spawn(bin, root, plan, plan.failpoints.as_deref())?;
    let mut starts = 1usize;

    // clients
    let campaigns = plan.campaigns();
    let mut client_threads = Vec::new();
    for client in 0..plan.clients {
        let specs: Vec<String> = campaigns
            .iter()
            .skip(client * plan.per_client)
            .take(plan.per_client)
            .map(|c| c.submit_line(plan))
            .collect();
        let root = root.to_path_buf();
        let failed = Arc::clone(&failed);
        client_threads.push(std::thread::spawn(move || {
            specs
                .iter()
                .map(|line| run_campaign(&root, line, deadline, &failed))
                .collect::<Result<Vec<_>, String>>()
        }));
    }

    // kill scheduler: each kill waits for fresh band checkpoints so it
    // lands mid-campaign, then SIGKILLs and restarts the daemon.
    let mut kills = 0usize;
    for _ in 0..plan.kills {
        let target = bands_seen() + 3;
        while bands_seen() < target {
            if Instant::now() > deadline {
                failed.store(true, Ordering::Relaxed);
                break;
            }
            if client_threads
                .iter()
                .all(std::thread::JoinHandle::is_finished)
            {
                break; // everything completed before we could kill again
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if failed.load(Ordering::Relaxed)
            || client_threads
                .iter()
                .all(std::thread::JoinHandle::is_finished)
        {
            break;
        }
        daemon.kill9();
        kills += 1;
        daemon = DaemonProc::spawn(bin, root, plan, plan.failpoints.as_deref())?;
        starts += 1;
    }

    let mut results = Vec::new();
    for t in client_threads {
        let batch = t
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        results.extend(batch);
    }

    // SIGTERM drain with one job in flight: submit a fresh campaign,
    // wait for its first band checkpoint, then drain. The job must end
    // `cancelled` (resumable) or `completed`; the daemon must exit 0.
    let drain_spec = CampaignSpec {
        tenant: "drain".to_string(),
        name: "drain-job".to_string(),
        seed: 999,
    };
    let line = drain_spec.submit_line(plan);
    let landed_results = |root: &Path| {
        std::fs::read_dir(root.join("results"))
            .map(|rd| rd.filter_map(Result::ok).count())
            .unwrap_or(0)
    };
    let results_before = landed_results(root);
    let drain_status = Arc::new(std::sync::Mutex::new(String::new()));
    let watcher = {
        let root = root.to_path_buf();
        let drain_status = Arc::clone(&drain_status);
        std::thread::spawn(move || {
            if let Attempt::Completed(_) = attempt(&root, &line) {
                *drain_status
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = "completed".to_string();
            }
        })
    };
    let before = bands_seen();
    while bands_seen() == before && !watcher.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    let drain_exit_zero = daemon.sigterm_and_wait();
    let _ = watcher.join();
    let drain_job_status = {
        let status = drain_status
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if !status.is_empty() {
            status
        } else if landed_results(root) > results_before {
            // The watcher can lose the race against daemon exit: the
            // drain finishes the in-flight job and the socket closes
            // before the terminal record is read. The landed result
            // file, not the terminal record, is the ground truth.
            "completed".to_string()
        } else {
            // not completed: the drain cancelled it at a checkpoint — a
            // restarted daemon must be able to resume and finish it.
            "cancelled".to_string()
        }
    };

    let resumed_campaigns = results.iter().filter(|r| r.resumed_ever).count();
    Ok(SoakReport {
        results,
        kills,
        starts,
        resumed_campaigns,
        drain_exit_zero,
        drain_job_status,
    })
}
