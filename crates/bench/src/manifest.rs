//! Machine-readable run manifest for the experiment driver.
//!
//! [`run_all`](../bin/run_all.rs) records one [`RunRecord`] per child
//! experiment — outcome, wall-clock duration and the tail of the child's
//! stderr — and serializes the list to `RUN_MANIFEST.json` so a failed
//! campaign still documents exactly which artifacts are trustworthy.
//!
//! The serializer is hand-rolled (the build environment is offline, so no
//! serde): plain JSON with full string escaping.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// How one child experiment ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The child exited with status 0.
    Success,
    /// The child exited with a nonzero status (or was killed by a signal,
    /// in which case `exit_code` is `None`).
    Failed {
        /// The child's exit code, if it exited normally.
        exit_code: Option<i32>,
    },
    /// The child observed the soft-cancel deadline (`FASTMON_DEADLINE_SECS`)
    /// and exited cleanly with [`crate::EXIT_CANCELLED`] inside the grace
    /// period: its final checkpoint is flushed and its partial artifacts
    /// are trustworthy, unlike a `timed-out` (killed) child.
    Cancelled {
        /// The soft deadline the child was given, in seconds.
        deadline_secs: u64,
    },
    /// The child exceeded the per-child timeout *plus* the soft-cancel
    /// grace period and was killed; its artifacts may be incomplete.
    TimedOut {
        /// The timeout that was enforced, in seconds.
        limit_secs: u64,
    },
    /// The child could not be launched at all (missing binary, exec error).
    LaunchFailed {
        /// The launch error.
        message: String,
    },
}

impl RunOutcome {
    /// Returns `true` for [`RunOutcome::Success`].
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, RunOutcome::Success)
    }

    /// Short machine-readable tag used in the manifest.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RunOutcome::Success => "success",
            RunOutcome::Failed { .. } => "failed",
            RunOutcome::Cancelled { .. } => "cancelled",
            RunOutcome::TimedOut { .. } => "timed-out",
            RunOutcome::LaunchFailed { .. } => "launch-failed",
        }
    }
}

/// One child experiment's manifest entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The experiment name (binary name or path as given to the driver).
    pub name: String,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Wall-clock duration in seconds (0 for launch failures).
    pub duration_secs: f64,
    /// The last few lines of the child's stderr (empty on launch failure).
    pub stderr_tail: Vec<String>,
    /// The child's per-phase self-time profile report, as the one-line JSON
    /// object `fastmon-obs` wrote to `FASTMON_PROFILE_OUT` (already
    /// validated by the driver against the profile schema). `None` when the
    /// child produced no readable report.
    pub profile: Option<String>,
}

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the records as a pretty-printed JSON manifest.
#[must_use]
pub fn manifest_json(records: &[RunRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", escape_json(&r.name));
        let _ = writeln!(out, "      \"outcome\": \"{}\",", r.outcome.tag());
        match &r.outcome {
            RunOutcome::Failed { exit_code } => match exit_code {
                Some(c) => {
                    let _ = writeln!(out, "      \"exit_code\": {c},");
                }
                None => {
                    let _ = writeln!(out, "      \"exit_code\": null,");
                }
            },
            RunOutcome::Cancelled { deadline_secs } => {
                let _ = writeln!(out, "      \"deadline_secs\": {deadline_secs},");
            }
            RunOutcome::TimedOut { limit_secs } => {
                let _ = writeln!(out, "      \"timeout_secs\": {limit_secs},");
            }
            RunOutcome::LaunchFailed { message } => {
                let _ = writeln!(out, "      \"error\": \"{}\",", escape_json(message));
            }
            RunOutcome::Success => {}
        }
        let _ = writeln!(out, "      \"duration_secs\": {:.3},", r.duration_secs);
        if let Some(profile) = &r.profile {
            let _ = writeln!(out, "      \"profile\": {},", profile.trim());
        }
        out.push_str("      \"stderr_tail\": [");
        for (j, line) in r.stderr_tail.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape_json(line));
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the manifest to `path` (atomically: temp file + rename).
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_manifest(path: &Path, records: &[RunRecord]) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, manifest_json(records))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn manifest_names_every_outcome() {
        let records = vec![
            RunRecord {
                name: "fig3".into(),
                outcome: RunOutcome::Success,
                duration_secs: 1.25,
                stderr_tail: vec!["done".into()],
                profile: Some(
                    "{\"schema_version\":1,\"phases\":{\"atpg\":{\"count\":1,\"total_ns\":5,\"self_ns\":5}},\"collapsed\":[[\"atpg\",5]]}"
                        .into(),
                ),
            },
            RunRecord {
                name: "table2".into(),
                outcome: RunOutcome::Failed { exit_code: Some(3) },
                duration_secs: 0.5,
                stderr_tail: vec!["boom \"quoted\"".into()],
                profile: None,
            },
            RunRecord {
                name: "table3".into(),
                outcome: RunOutcome::TimedOut { limit_secs: 60 },
                duration_secs: 60.0,
                stderr_tail: vec![],
            profile: None,
            },
            RunRecord {
                name: "fig3-soft".into(),
                outcome: RunOutcome::Cancelled { deadline_secs: 60 },
                duration_secs: 61.5,
                stderr_tail: vec!["run cancelled during analyze".into()],
                profile: None,
            },
            RunRecord {
                name: "missing".into(),
                outcome: RunOutcome::LaunchFailed {
                    message: "no such file".into(),
                },
                duration_secs: 0.0,
                stderr_tail: vec![],
            profile: None,
            },
        ];
        let json = manifest_json(&records);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"outcome\": \"success\""));
        assert!(json.contains("\"exit_code\": 3"));
        assert!(json.contains("\"timeout_secs\": 60"));
        assert!(json.contains("\"outcome\": \"cancelled\""));
        assert!(json.contains("\"deadline_secs\": 60"));
        assert!(json.contains("\"error\": \"no such file\""));
        assert!(json.contains("boom \\\"quoted\\\""));
        assert!(json.contains("\"profile\": {\"schema_version\":1"));
        // crude balance check: the writer emits matched brackets
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
    }

    #[test]
    fn write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("fastmon-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("RUN_MANIFEST.json");
        let records = vec![RunRecord {
            name: "fig3".into(),
            outcome: RunOutcome::Success,
            duration_secs: 0.1,
            stderr_tail: vec![],
            profile: None,
        }];
        write_manifest(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, manifest_json(&records));
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
