//! Regenerates **Table III** of the paper: number of required test
//! frequencies and schedule sizes for relaxed hidden-delay-fault coverage
//! targets (99 %, 98 %, 95 %, 90 %).
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin table3
//! ```

use fastmon_bench::{paper, pct, print_table, with_run, ExperimentConfig};
use fastmon_core::report::table3_row;

const COVERAGES: [f64; 4] = [0.99, 0.98, 0.95, 0.90];

fn main() {
    // With FASTMON_SHARD_PROCS=1 the campaign re-executes this binary
    // once per shard; those children never reach the experiment logic.
    fastmon_bench::shardsup::maybe_run_worker();
    let config = ExperimentConfig::from_env();
    println!("# Table III — test time reduction for partial HDF coverage\n");
    println!(
        "(synthetic stand-ins; target ≤ {} gates, ≤ {} sampled faults, seed {})\n",
        config.target_gates, config.max_faults, config.seed
    );

    let mut headers: Vec<String> = vec!["circuit".to_owned()];
    for cov in COVERAGES {
        let c = (cov * 100.0) as u32;
        headers.push(format!("|F{c}|"));
        headers.push(format!("|PC{c}|"));
        headers.push(format!("|S{c}|"));
        headers.push(format!("Δ%{c}"));
    }
    headers.push("paper Δ%99".to_owned());

    let mut rows = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for (profile, scale) in config.suite() {
        let row = with_run(
            &profile,
            scale,
            &config,
            |flow, _patterns, analysis, run| {
                let t = std::time::Instant::now();
                let r = table3_row(flow, analysis, run.patterns_len, &COVERAGES);
                eprintln!(
                    "[table3] {}: schedules {:.1}s",
                    r.circuit,
                    t.elapsed().as_secs_f64()
                );
                r
            },
        );
        let paper99 = paper::TABLE3_COV99
            .iter()
            .find(|(n, ..)| *n == row.circuit)
            .map_or(f64::NAN, |r| r.4);
        let mut cells = vec![row.circuit.clone()];
        for e in &row.entries {
            cells.push(e.frequencies.to_string());
            cells.push(e.naive_pc.to_string());
            cells.push(e.schedule.to_string());
            cells.push(pct(e.reduction_percent));
        }
        for n in &row.notes {
            notes.push(format!("{}: {n}", row.circuit));
        }
        cells.push(pct(paper99));
        rows.push(cells);
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    if !notes.is_empty() {
        println!("\nDegraded results (deadline fallbacks / waived coverage):");
        for n in &notes {
            println!("- {n}");
        }
    }
    fastmon_obs::finish();
}
