//! Schema validator for `fastmon-obs` JSONL event logs.
//!
//! ```text
//! check_events <events.jsonl>...   # validate existing logs
//! check_events --selftest          # trace a small flow, then validate it
//! ```
//!
//! Every line must be a standalone JSON object of schema version
//! [`fastmon_obs::TRACE_SCHEMA_VERSION`] with a constant run id, the first
//! line must be the `meta` record, and within each thread the
//! `enter`/`exit` events must nest like brackets (matching names, leftover-
//! free at end of file) with per-thread monotone timestamps. The
//! `--selftest` mode runs a fully traced s27 flow (ATPG, STA, fault-sim
//! bands, both ILP stages, checkpoint I/O) into a temporary directory and
//! additionally requires all of those phase spans to be present — this is
//! what CI runs, so a span rename or schema drift fails the build instead
//! of silently producing unreadable logs.
//!
//! Exit codes: `0` all valid, `1` validation failure, `2` usage error.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use fastmon_obs::json::{self, Value};

/// Span names the traced self-test flow must produce.
const SELFTEST_REQUIRED_SPANS: [&str; 8] = [
    "sta",
    "atpg",
    "analyze",
    "band",
    "ilp_stage_a",
    "ilp_stage_b",
    "checkpoint_save",
    "checkpoint_load",
];

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: check_events <events.jsonl>... | check_events --selftest");
        return 0;
    }
    if args.iter().any(|a| a == "--selftest") {
        return selftest();
    }
    if args.is_empty() {
        eprintln!("usage: check_events <events.jsonl>... | check_events --selftest");
        return 2;
    }
    let mut failed = false;
    for path in &args {
        match validate_file(Path::new(path)) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    i32::from(failed)
}

/// What a valid log contained.
#[derive(Debug)]
struct Summary {
    events: usize,
    spans: usize,
    threads: usize,
    max_depth: usize,
    names: BTreeSet<String>,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events, {} spans, {} thread(s), max depth {}",
            self.events, self.spans, self.threads, self.max_depth
        )
    }
}

fn validate_file(path: &Path) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    validate_lines(&text)
}

fn get_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer \"{key}\""))
}

fn get_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line}: missing or non-string \"{key}\""))
}

fn validate_lines(text: &str) -> Result<Summary, String> {
    let mut run_id: Option<String> = None;
    // per-tid open-span stack and last timestamp
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_t: BTreeMap<u64, u64> = BTreeMap::new();
    let mut summary = Summary {
        events: 0,
        spans: 0,
        threads: 0,
        max_depth: 0,
        names: BTreeSet::new(),
    };
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        let v = json::parse(line).map_err(|e| format!("line {lineno}: bad JSON: {e}"))?;
        summary.events += 1;

        let version = get_u64(&v, "v", lineno)?;
        if version != u64::from(fastmon_obs::TRACE_SCHEMA_VERSION) {
            return Err(format!(
                "line {lineno}: schema version {version}, expected {}",
                fastmon_obs::TRACE_SCHEMA_VERSION
            ));
        }
        let ev = get_str(&v, "ev", lineno)?.to_owned();
        let run = get_str(&v, "run", lineno)?.to_owned();
        get_u64(&v, "pid", lineno)?;
        get_u64(&v, "wall_ms", lineno)?;
        match &run_id {
            None => {
                if ev != "meta" {
                    return Err(format!(
                        "line {lineno}: first event is \"{ev}\", expected \"meta\""
                    ));
                }
                run_id = Some(run);
            }
            Some(expected) => {
                if run != *expected {
                    return Err(format!(
                        "line {lineno}: run id changed from {expected} to {run}"
                    ));
                }
                if ev == "meta" {
                    return Err(format!("line {lineno}: duplicate meta record"));
                }
            }
        }

        match ev.as_str() {
            "meta" => {}
            "enter" | "exit" => {
                let tid = get_u64(&v, "tid", lineno)?;
                let name = get_str(&v, "name", lineno)?.to_owned();
                let t_ns = get_u64(&v, "t_ns", lineno)?;
                let last = last_t.entry(tid).or_insert(0);
                if t_ns < *last {
                    return Err(format!(
                        "line {lineno}: tid {tid} timestamp {t_ns} went backwards (last {last})"
                    ));
                }
                *last = t_ns;
                let stack = stacks.entry(tid).or_default();
                if ev == "enter" {
                    stack.push(name.clone());
                    summary.max_depth = summary.max_depth.max(stack.len());
                } else {
                    get_u64(&v, "dur_ns", lineno)?; // u64: non-negative by construction
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return Err(format!(
                                "line {lineno}: tid {tid} exit \"{name}\" does not match open span \"{open}\""
                            ));
                        }
                        None => {
                            return Err(format!(
                                "line {lineno}: tid {tid} exit \"{name}\" without a matching enter"
                            ));
                        }
                    }
                    summary.spans += 1;
                }
                summary.names.insert(name);
            }
            "counters" => {
                get_str(&v, "scope", lineno)?;
                if v.get("counters").and_then(Value::as_obj).is_none() {
                    return Err(format!("line {lineno}: missing \"counters\" object"));
                }
            }
            // Run-id chaining: a resumed campaign links back to the run
            // that wrote the checkpoint it picked up.
            "chain" => {
                let prev = get_str(&v, "prev_run", lineno)?;
                if prev.is_empty() || !prev.chars().all(|c| c.is_ascii_hexdigit()) {
                    return Err(format!(
                        "line {lineno}: \"prev_run\" \"{prev}\" is not a hex run id"
                    ));
                }
            }
            other => return Err(format!("line {lineno}: unknown event kind \"{other}\"")),
        }
    }
    if run_id.is_none() {
        return Err("log holds no events".to_owned());
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid} ends with {} unclosed span(s): {}",
                stack.len(),
                stack.join(", ")
            ));
        }
    }
    summary.threads = stacks.len();
    Ok(summary)
}

/// Traces a small end-to-end flow into a temp directory, then validates
/// the emitted log and the presence of every phase span.
fn selftest() -> i32 {
    use fastmon_core::{CheckpointStore, FlowConfig, HdfTestFlow, Solver};

    let dir = std::env::temp_dir().join(format!("fastmon-check-events-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    fastmon_obs::force_enable(fastmon_obs::TraceMode::Full, Some(&dir));

    let circuit = fastmon_netlist::library::s27();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(8));
    let store = CheckpointStore::new(dir.join("selftest.fmck"));
    let analysis = match flow.analyze_resumable(&patterns, &store) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("selftest: campaign failed: {e}");
            return 1;
        }
    };
    let _ = flow.schedule(&analysis, Solver::Ilp);
    fastmon_obs::emit_counters("selftest", flow.metrics());
    fastmon_obs::finish();

    let log = dir.join("events.jsonl");
    let code = match validate_file(&log) {
        Ok(summary) => {
            let missing: Vec<&str> = SELFTEST_REQUIRED_SPANS
                .iter()
                .filter(|s| !summary.names.contains(**s))
                .copied()
                .collect();
            if missing.is_empty() {
                println!("selftest: OK ({summary}); all phase spans present");
                0
            } else {
                eprintln!(
                    "selftest: {} valid ({summary}) but missing phase span(s): {}",
                    log.display(),
                    missing.join(", ")
                );
                1
            }
        }
        Err(e) => {
            eprintln!("selftest: {}: INVALID: {e}", log.display());
            1
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "{\"v\":1,\"ev\":\"meta\",\"run\":\"abc\",\"pid\":1,\"wall_ms\":5}";

    #[test]
    fn accepts_well_formed_nesting() {
        let log = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"enter\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"name\":\"a\"}}\n\
             {{\"v\":1,\"ev\":\"enter\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":20,\"wall_ms\":5,\"name\":\"b\",\"arg\":3}}\n\
             {{\"v\":1,\"ev\":\"exit\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":30,\"wall_ms\":5,\"name\":\"b\",\"arg\":3,\"dur_ns\":10}}\n\
             {{\"v\":1,\"ev\":\"exit\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":40,\"wall_ms\":5,\"name\":\"a\",\"dur_ns\":30}}\n\
             {{\"v\":1,\"ev\":\"counters\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":41,\"wall_ms\":5,\"scope\":\"x\",\"counters\":{{\"sim.cones_simulated\":2}}}}\n"
        );
        let s = validate_lines(&log).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.threads, 1);
        assert_eq!(s.max_depth, 2);
        assert!(s.names.contains("a") && s.names.contains("b"));
    }

    #[test]
    fn chain_events_require_a_hex_prev_run() {
        let good = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"chain\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"prev_run\":\"00ff00ff00ff00ff\"}}\n"
        );
        validate_lines(&good).unwrap();

        let bad = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"chain\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"prev_run\":\"not-hex\"}}\n"
        );
        assert!(validate_lines(&bad).unwrap_err().contains("hex run id"));
    }

    #[test]
    fn rejects_mismatched_exit_and_changed_run() {
        let bad_exit = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"enter\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"name\":\"a\"}}\n\
             {{\"v\":1,\"ev\":\"exit\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":30,\"wall_ms\":5,\"name\":\"b\",\"dur_ns\":20}}\n"
        );
        assert!(validate_lines(&bad_exit)
            .unwrap_err()
            .contains("does not match"));

        let bad_run = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"enter\",\"run\":\"OTHER\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"name\":\"a\"}}\n"
        );
        assert!(validate_lines(&bad_run)
            .unwrap_err()
            .contains("run id changed"));

        let leftover = format!(
            "{META}\n\
             {{\"v\":1,\"ev\":\"enter\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":10,\"wall_ms\":5,\"name\":\"a\"}}\n"
        );
        assert!(validate_lines(&leftover).unwrap_err().contains("unclosed"));

        assert!(validate_lines("").unwrap_err().contains("no events"));
        let no_meta =
            "{\"v\":1,\"ev\":\"enter\",\"run\":\"abc\",\"pid\":1,\"tid\":1,\"t_ns\":1,\"wall_ms\":5,\"name\":\"a\"}\n";
        assert!(validate_lines(no_meta)
            .unwrap_err()
            .contains("expected \"meta\""));
    }
}
