//! Regenerates **Table II** of the paper: number of selected test
//! frequencies (conventional / greedy heuristic / proposed ILP) and the
//! schedule size before/after the two-step optimization.
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin table2
//! ```

use fastmon_bench::{paper, pct, print_table, with_run, ExperimentConfig};
use fastmon_core::report::table2_row;

fn main() {
    // With FASTMON_SHARD_PROCS=1 the campaign re-executes this binary
    // once per shard; those children never reach the experiment logic.
    fastmon_bench::shardsup::maybe_run_worker();
    let config = ExperimentConfig::from_env();
    println!("# Table II — selected test frequencies and test time\n");
    println!(
        "(synthetic stand-ins; target ≤ {} gates, ≤ {} sampled faults, seed {})\n",
        config.target_gates, config.max_faults, config.seed
    );

    let headers = [
        "circuit",
        "conv.|F|",
        "heur.|F|",
        "prop.|F|",
        "Δ%|F|",
        "orig |PC|",
        "opti |PC|",
        "Δ%|PC|",
        "paper Δ%|PC|",
    ];
    let mut rows = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for (profile, scale) in config.suite() {
        let row = with_run(
            &profile,
            scale,
            &config,
            |flow, _patterns, analysis, run| {
                let t = std::time::Instant::now();
                let r = table2_row(flow, analysis, run.patterns_len);
                eprintln!(
                    "[table2] {}: atpg {:.1}s analyze {:.1}s schedule {:.1}s",
                    r.circuit,
                    run.phase_secs.0,
                    run.phase_secs.1,
                    t.elapsed().as_secs_f64()
                );
                r
            },
        );
        let paper_pc = paper::TABLE2
            .iter()
            .find(|(n, ..)| *n == row.circuit)
            .map_or(f64::NAN, |r| r.7);
        rows.push(vec![
            row.circuit.clone(),
            row.freq_conv.to_string(),
            row.freq_heur.to_string(),
            row.freq_prop.to_string(),
            format!("{:.1}%", row.freq_reduction_percent),
            row.orig_pc.to_string(),
            row.opti_pc.to_string(),
            pct(row.pc_reduction_percent),
            pct(paper_pc),
        ]);
        for n in &row.notes {
            notes.push(format!("{}: {n}", row.circuit));
        }
    }
    print_table(&headers, &rows);
    if !notes.is_empty() {
        println!("\nDegraded results (deadline fallbacks / waived coverage):");
        for n in &notes {
            println!("- {n}");
        }
    }
    fastmon_obs::finish();
}
