//! Performance snapshot of the ATPG stage and the fault-simulation
//! campaign: runs pattern generation plus `analyze()` on a paper-suite
//! stand-in at several worker-thread counts and writes the wall-clock
//! numbers plus the campaign counters (cones simulated, nodes
//! pruned/converged, waveform allocations) and the ATPG grading counters
//! (cones cached, cone BFS traversals avoided, scratch reuses, matrix
//! rebuilds avoided, per-phase seconds) to `BENCH_analysis.json`.
//!
//! Counters come from each run's own scoped registry
//! ([`HdfTestFlow::metrics`]) — runs never bleed into one another. The
//! binary also keeps span profiling on and appends a per-phase self-time
//! table (plus the flamegraph collapsed stacks in the JSON) covering the
//! whole process.
//!
//! Knobs (on top of the usual `FASTMON_*` variables from
//! [`fastmon_bench::ExperimentConfig`]):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FASTMON_SNAPSHOT_CIRCUIT` | paper-suite profile name | `p89k` |
//! | `FASTMON_SNAPSHOT_THREADS` | comma-separated thread counts | `1,4,8` |
//! | `FASTMON_SNAPSHOT_OUT` | output path | `BENCH_analysis.json` |

use std::fmt::Write as _;
use std::time::Instant;

use fastmon_bench::ExperimentConfig;
use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_netlist::generate::CircuitProfile;
use fastmon_sim::stats::CampaignStats;

struct ThreadRun {
    threads: usize,
    analyze_secs: f64,
    stats: CampaignStats,
}

/// Robustness counters summed over every flow of the snapshot (ATPG + one
/// analyze per thread count): failpoints fired, checkpoint retries,
/// cancel latency and contained worker panics. All zero in a healthy
/// uninjected run — the JSON records that explicitly. The nested
/// `daemon` object comes from a short in-process `fastmond` exercise
/// (see [`daemon_exercise`]).
#[derive(Default)]
struct RobustnessTotals {
    entries: Vec<(&'static str, u64)>,
    daemon: Vec<(&'static str, u64)>,
}

impl RobustnessTotals {
    fn absorb(&mut self, section: &fastmon_obs::RobustnessMetrics) {
        for (name, value) in section.entries() {
            match self.entries.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += value,
                None => self.entries.push((name, value)),
            }
        }
    }
}

/// Exercises the campaign daemon in-process — two tiny `s27` jobs and
/// one admission-path ping over a real socket, then a graceful drain —
/// and returns its `robustness.daemon.*` counters for the snapshot. The
/// daemon's latency histograms (queue-wait, job-run, protocol) merge
/// into `latency` alongside the flow-side stage timings.
fn daemon_exercise(latency: &fastmon_obs::HistogramSet) -> Vec<(&'static str, u64)> {
    use std::io::{BufRead, BufReader, Write};

    let root = std::env::temp_dir().join(format!("fastmon-snapshot-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = match fastmon_daemon::Daemon::start(fastmon_daemon::DaemonConfig::at(&root)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("perf_snapshot: daemon exercise skipped: {e}");
            return Vec::new();
        }
    };
    if let Ok(stream) = std::net::TcpStream::connect(handle.addr()) {
        if let Ok(mut writer) = stream.try_clone() {
            let mut reader = BufReader::new(stream);
            let mut recv = || -> Option<String> {
                let mut buf = String::new();
                match reader.read_line(&mut buf) {
                    Ok(n) if n > 0 => Some(buf),
                    _ => None,
                }
            };
            for seed in [1u64, 2] {
                let line = format!(
                    r#"{{"op":"submit","name":"snapshot-{seed}","circuit":{{"kind":"library","name":"s27"}},"seed":{seed}}}"#
                );
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_err()
                {
                    break;
                }
                // stream progress records until the job's terminal line
                while let Some(record) = recv() {
                    if record.contains("\"event\":\"terminal\"")
                        || record.contains("\"event\":\"reject\"")
                    {
                        break;
                    }
                }
            }
        }
    }
    handle.drain();
    let metrics = handle.metrics();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
    latency.merge_from(&metrics.latency);
    metrics.daemon.entries()
}

/// The merged latency quantiles as a p50/p90/p99/max table (nanosecond
/// histograms rendered in milliseconds).
fn render_latency_table(latency: &fastmon_obs::HistogramSet) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"
    );
    for (name, h) in latency.entries() {
        let q = h.quantiles();
        if q.count == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            q.count,
            ms(q.p50),
            ms(q.p90),
            ms(q.p99),
            ms(q.max)
        );
    }
    s
}

fn main() {
    // Keep at least profile-mode spans on so the self-time table below has
    // data; a FASTMON_TRACE=1 environment still gets the full event log.
    if !fastmon_obs::enabled() {
        fastmon_obs::force_enable(fastmon_obs::TraceMode::Profile, None);
    }
    let config = ExperimentConfig::from_env();
    let name = std::env::var("FASTMON_SNAPSHOT_CIRCUIT").unwrap_or_else(|_| "p89k".to_owned());
    let thread_counts: Vec<usize> = std::env::var("FASTMON_SNAPSHOT_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let out_path =
        std::env::var("FASTMON_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_analysis.json".to_owned());

    let Some(profile) = CircuitProfile::named(&name) else {
        eprintln!("perf_snapshot: unknown paper-suite profile '{name}'");
        std::process::exit(1);
    };
    let scale = (config.target_gates as f64 / profile.gates as f64).min(1.0);
    let profile = profile.scaled(scale);
    let circuit = match profile.generate(config.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_snapshot: cannot generate the {name} stand-in: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "perf_snapshot: {name} stand-in scaled to {} gates (scale {scale:.4})",
        profile.gates
    );

    // shared pattern set so every thread count simulates identical work
    let base_flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
    let t = Instant::now();
    let patterns = base_flow.generate_patterns(Some(profile.pattern_budget));
    let atpg_secs = t.elapsed().as_secs_f64();
    println!("  atpg: {} patterns in {atpg_secs:.2} s", patterns.len());
    let atpg = atpg_report(atpg_secs, &base_flow.metrics().atpg);
    print!("{}", atpg.render_table());
    let mut robustness = RobustnessTotals::default();
    robustness.absorb(&base_flow.metrics().robustness);
    // Stage-latency histograms merged across every flow in the snapshot
    // (and, later, the daemon exercise) — the `"latency"` section of the
    // JSON and the quantile table below.
    let latency = fastmon_obs::HistogramSet::new();
    latency.merge_from(&base_flow.metrics().latency);

    let mut runs: Vec<ThreadRun> = Vec::new();
    for &threads in &thread_counts {
        let flow_config = FlowConfig {
            threads,
            ..config.flow_config()
        };
        let flow = HdfTestFlow::prepare(&circuit, &flow_config);
        let t = Instant::now();
        let analysis = flow.analyze(&patterns);
        let analyze_secs = t.elapsed().as_secs_f64();
        let snap = CampaignStats::from_metrics(&flow.metrics().sim);
        println!(
            "  threads={threads}: analyze {analyze_secs:.3} s, {} targets, \
             {} cones simulated, {} masked, {} screened out, {} nodes evaluated, \
             {} converged-skipped, {} screen-visited, {} pruned, {} allocs / {} reuses",
            analysis.targets.len(),
            snap.cones_simulated,
            snap.cones_masked,
            snap.faults_screened_out,
            snap.nodes_evaluated,
            snap.nodes_converged,
            snap.screen_nodes_visited,
            snap.nodes_pruned_unobserved,
            snap.waveform_allocs,
            snap.waveform_reuses,
        );
        robustness.absorb(&flow.metrics().robustness);
        latency.merge_from(&flow.metrics().latency);
        runs.push(ThreadRun {
            threads,
            analyze_secs,
            stats: snap,
        });
    }

    if let Some(t1) = runs.iter().find(|r| r.threads == 1) {
        for r in runs.iter().filter(|r| r.threads > 1) {
            println!(
                "  speedup t{} vs t1: {:.2}x",
                r.threads,
                t1.analyze_secs / r.analyze_secs
            );
        }
    }

    robustness.daemon = daemon_exercise(&latency);
    if let Some((_, completed)) = robustness
        .daemon
        .iter()
        .find(|(n, _)| *n == "jobs_completed")
    {
        println!("  daemon exercise: {completed} jobs completed over the socket");
    }

    println!("\nstage latency quantiles:");
    print!("{}", render_latency_table(&latency));

    fastmon_obs::flush();
    let report = fastmon_obs::profile::snapshot();
    println!("\nper-phase self time:");
    print!("{}", fastmon_obs::profile::render_table(&report));

    // Sampled after every run so the high-water mark covers the hungriest
    // thread count, not just the last one.
    let peak_rss = fastmon_bench::rss::peak_rss_self_bytes();
    match peak_rss {
        Some(bytes) => println!("peak RSS: {}", fastmon_bench::rss::format_mib(bytes)),
        None => println!("peak RSS: unavailable on this platform"),
    }

    let json = render_json(
        &name,
        &profile.name,
        profile.gates,
        scale,
        patterns.len(),
        &atpg,
        &runs,
        &robustness,
        &latency,
        peak_rss,
        &fastmon_obs::profile::report_json(&report),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("perf_snapshot: cannot write snapshot {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    fastmon_obs::finish();
}

/// The ATPG stage's wall clock, per-phase seconds and grading counters.
struct AtpgReport {
    atpg_secs: f64,
    /// `(phase name, seconds)` for the `atpg_*` spans, pipeline order.
    phases: Vec<(String, f64)>,
    /// Grading + PODEM counters from the scoped registry.
    counters: Vec<(&'static str, u64)>,
}

impl AtpgReport {
    /// Cone BFS traversals the cached arena avoided vs what the uncached
    /// path would have performed: `(performed, would_be, percent_fewer)`.
    fn bfs_saved(&self) -> (u64, u64, f64) {
        let get = |name: &str| {
            self.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        let performed = get("cone_bfs");
        let would_be = performed + get("cone_bfs_avoided");
        let fewer = if would_be > 0 {
            100.0 * (would_be - performed) as f64 / would_be as f64
        } else {
            0.0
        };
        (performed, would_be, fewer)
    }

    /// Before/after-style summary of the grading engine.
    fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "  atpg phases:");
        for (phase, secs) in &self.phases {
            let _ = writeln!(s, "    {phase:<14} {secs:>9.3} s");
        }
        let (performed, would_be, fewer) = self.bfs_saved();
        let _ = writeln!(
            s,
            "  cone BFS traversals: {would_be} (uncached) -> {performed} (cached arena), \
             {fewer:.1}% fewer"
        );
        let get = |name: &str| {
            self.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        let _ = writeln!(
            s,
            "  grading scratch: {} reuses / {} allocs; matrix: {} build(s), {} rebuild(s) avoided",
            get("grade_scratch_reuses"),
            get("grade_scratch_allocs"),
            get("matrix_builds"),
            get("matrix_rebuilds_avoided"),
        );
        s
    }
}

/// Collects the ATPG report right after pattern generation (the `atpg_*`
/// spans are not touched by the later analyze runs, so the phase totals
/// are exact).
fn atpg_report(atpg_secs: f64, metrics: &fastmon_obs::AtpgMetrics) -> AtpgReport {
    fastmon_obs::flush();
    let report = fastmon_obs::profile::snapshot();
    let mut phases = Vec::new();
    for name in ["atpg_cones", "atpg_random", "atpg_podem", "atpg_compact"] {
        if let Some((_, agg)) = report.phases.iter().find(|(n, _)| n == name) {
            phases.push((name.to_owned(), agg.total_ns as f64 / 1e9));
        }
    }
    AtpgReport {
        atpg_secs,
        phases,
        counters: metrics.entries(),
    }
}

/// Hand-rolled JSON (the workspace carries no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    profile: &str,
    scaled_name: &str,
    gates: usize,
    scale: f64,
    patterns: usize,
    atpg: &AtpgReport,
    runs: &[ThreadRun],
    robustness: &RobustnessTotals,
    latency: &fastmon_obs::HistogramSet,
    peak_rss: Option<u64>,
    profile_json: &str,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"profile\": \"{profile}\",");
    let _ = writeln!(s, "  \"circuit\": \"{scaled_name}\",");
    let _ = writeln!(s, "  \"gates\": {gates},");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"patterns\": {patterns},");
    // 0 encodes "probe unavailable" (non-Linux host) — a real campaign
    // always has a nonzero high-water mark.
    let _ = writeln!(s, "  \"peak_rss_bytes\": {},", peak_rss.unwrap_or(0));
    let _ = writeln!(s, "  \"atpg_secs\": {},", atpg.atpg_secs);
    let _ = writeln!(s, "  \"atpg\": {{");
    let _ = writeln!(s, "    \"phases\": {{");
    for (i, (phase, secs)) in atpg.phases.iter().enumerate() {
        let sep = if i + 1 < atpg.phases.len() { "," } else { "" };
        let _ = writeln!(s, "      \"{phase}\": {secs}{sep}");
    }
    let _ = writeln!(s, "    }},");
    let (performed, would_be, fewer) = atpg.bfs_saved();
    let _ = writeln!(s, "    \"cone_bfs_uncached_equivalent\": {would_be},");
    let _ = writeln!(s, "    \"cone_bfs_performed\": {performed},");
    let _ = writeln!(s, "    \"cone_bfs_percent_fewer\": {fewer},");
    let _ = writeln!(s, "    \"counters\": {{");
    for (i, (name, value)) in atpg.counters.iter().enumerate() {
        let sep = if i + 1 < atpg.counters.len() { "," } else { "" };
        let _ = writeln!(s, "      \"{name}\": {value}{sep}");
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let st = r.stats;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"analyze_secs\": {},", r.analyze_secs);
        let _ = writeln!(s, "      \"cones_simulated\": {},", st.cones_simulated);
        let _ = writeln!(s, "      \"cones_masked\": {},", st.cones_masked);
        let _ = writeln!(s, "      \"nodes_evaluated\": {},", st.nodes_evaluated);
        let _ = writeln!(s, "      \"nodes_converged\": {},", st.nodes_converged);
        let _ = writeln!(
            s,
            "      \"nodes_pruned_unobserved\": {},",
            st.nodes_pruned_unobserved
        );
        let _ = writeln!(s, "      \"cone_plans_built\": {},", st.cone_plans_built);
        let _ = writeln!(s, "      \"waveform_allocs\": {},", st.waveform_allocs);
        let _ = writeln!(s, "      \"waveform_reuses\": {},", st.waveform_reuses);
        let _ = writeln!(s, "      \"screen_walks\": {},", st.screen_walks);
        let _ = writeln!(
            s,
            "      \"screen_nodes_visited\": {},",
            st.screen_nodes_visited
        );
        let _ = writeln!(
            s,
            "      \"faults_screened_out\": {}",
            st.faults_screened_out
        );
        let _ = writeln!(s, "    }}{sep}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"robustness\": {{");
    for (name, value) in &robustness.entries {
        let _ = writeln!(s, "    \"{name}\": {value},");
    }
    let _ = writeln!(s, "    \"daemon\": {{");
    for (i, (name, value)) in robustness.daemon.iter().enumerate() {
        let sep = if i + 1 < robustness.daemon.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "      \"{name}\": {value}{sep}");
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"latency\": {},", latency.to_json());
    let _ = writeln!(s, "  \"phase_profile\": {profile_json}");
    let _ = writeln!(s, "}}");
    s
}
