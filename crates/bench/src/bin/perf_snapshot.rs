//! Performance snapshot of the ATPG stage and the fault-simulation
//! campaign: runs pattern generation plus `analyze()` on a paper-suite
//! stand-in at several worker-thread counts and writes the wall-clock
//! numbers plus the campaign counters (cones simulated, nodes
//! pruned/converged, waveform allocations) and the ATPG grading counters
//! (cones cached, cone BFS traversals avoided, scratch reuses, matrix
//! rebuilds avoided, per-phase seconds) to `BENCH_analysis.json`.
//!
//! Counters come from each run's own scoped registry
//! ([`HdfTestFlow::metrics`]) — runs never bleed into one another. The
//! binary also keeps span profiling on and appends a per-phase self-time
//! table (plus the flamegraph collapsed stacks in the JSON) covering the
//! whole process.
//!
//! Knobs (on top of the usual `FASTMON_*` variables from
//! [`fastmon_bench::ExperimentConfig`]):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FASTMON_SNAPSHOT_CIRCUIT` | paper-suite profile name | `p89k` |
//! | `FASTMON_SNAPSHOT_THREADS` | comma-separated thread counts | `1,4,8` |
//! | `FASTMON_SNAPSHOT_OUT` | output path | `BENCH_analysis.json` |
//! | `FASTMON_SNAPSHOT_SCALE` (or `--scale=S`) | profile scale override in `(0, 1]` | derived from `FASTMON_TARGET_GATES` |
//! | `FASTMON_SHARDS` (or `--shards=N`) | shard count for the merge-parity run | `2` |
//! | `FASTMON_SHARD_PROCS=1` (or `--shard-procs`) | also run the campaign as supervised child processes | unset |
//! | `FASTMON_SNAPSHOT_SWEEP` | comma-separated scale-sweep factors | `S/4, S/2, S` |
//! | `FASTMON_RSS_CEILING_BYTES` | fail the run if peak RSS exceeds this | unset |
//!
//! The sweep runs ascending (the Linux `VmHWM` probe is a process-wide
//! high-water mark, so each entry's `peak_rss_bytes` is dominated by the
//! largest circuit simulated so far — ascending order keeps the numbers
//! attributable). The shard run re-analyzes the full campaign split into
//! `N` fault shards and hard-fails unless the merged result fingerprint
//! is bit-identical to the serial run.

use std::fmt::Write as _;
use std::time::Instant;

use fastmon_bench::ExperimentConfig;
use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_netlist::generate::CircuitProfile;
use fastmon_sim::stats::CampaignStats;

struct ThreadRun {
    threads: usize,
    analyze_secs: f64,
    stats: CampaignStats,
}

/// One scale-sweep point: the same profile regenerated at a different
/// scale and analyzed once (1 thread), with the collapse ratio and the
/// RSS high-water mark after the run.
struct SweepEntry {
    scale: f64,
    gates: usize,
    patterns: usize,
    netlist_bytes: usize,
    faults_pre_collapse: usize,
    faults_post_collapse: u64,
    analyze_secs: f64,
    peak_rss_bytes: u64,
}

/// The shard-merge parity run: the full campaign re-analyzed as `shards`
/// fault slices and merged; `matches_serial` is the bit-identity proof.
struct ShardReport {
    shards: usize,
    analyze_secs: f64,
    merged_fingerprint: u64,
    matches_serial: bool,
}

/// The multi-process supervised run (`--shard-procs`): the same campaign
/// executed as one child OS process per shard under the
/// [`fastmon_bench::shardsup`] supervisor, merged from the landed result
/// files and compared against the serial fingerprint.
struct ShardProcsReport {
    shards: usize,
    jobs: usize,
    wall_secs: f64,
    merged_fingerprint: u64,
    matches_serial: bool,
    report: fastmon_core::SupervisorReport,
    /// This (supervisor) process's `VmHWM` after the supervised run.
    supervisor_peak_rss_bytes: u64,
    /// Largest `ru_maxrss` over the reaped worker children.
    children_peak_rss_bytes: u64,
}

/// `--flag=value` command-line override with an environment fallback.
fn arg_or_env(flag: &str, env: &str) -> Option<String> {
    let prefix = format!("--{flag}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_owned))
        .or_else(|| std::env::var(env).ok())
}

/// Robustness counters summed over every flow of the snapshot (ATPG + one
/// analyze per thread count): failpoints fired, checkpoint retries,
/// cancel latency and contained worker panics. All zero in a healthy
/// uninjected run — the JSON records that explicitly. The nested
/// `daemon` object comes from a short in-process `fastmond` exercise
/// (see [`daemon_exercise`]).
#[derive(Default)]
struct RobustnessTotals {
    entries: Vec<(&'static str, u64)>,
    daemon: Vec<(&'static str, u64)>,
}

impl RobustnessTotals {
    fn absorb(&mut self, section: &fastmon_obs::RobustnessMetrics) {
        for (name, value) in section.entries() {
            match self.entries.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += value,
                None => self.entries.push((name, value)),
            }
        }
    }
}

/// Exercises the campaign daemon in-process — two tiny `s27` jobs and
/// one admission-path ping over a real socket, then a graceful drain —
/// and returns its `robustness.daemon.*` counters for the snapshot. The
/// daemon's latency histograms (queue-wait, job-run, protocol) merge
/// into `latency` alongside the flow-side stage timings.
fn daemon_exercise(latency: &fastmon_obs::HistogramSet) -> Vec<(&'static str, u64)> {
    use std::io::{BufRead, BufReader, Write};

    let root = std::env::temp_dir().join(format!("fastmon-snapshot-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let handle = match fastmon_daemon::Daemon::start(fastmon_daemon::DaemonConfig::at(&root)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("perf_snapshot: daemon exercise skipped: {e}");
            return Vec::new();
        }
    };
    if let Ok(stream) = std::net::TcpStream::connect(handle.addr()) {
        if let Ok(mut writer) = stream.try_clone() {
            let mut reader = BufReader::new(stream);
            let mut recv = || -> Option<String> {
                let mut buf = String::new();
                match reader.read_line(&mut buf) {
                    Ok(n) if n > 0 => Some(buf),
                    _ => None,
                }
            };
            for seed in [1u64, 2] {
                let line = format!(
                    r#"{{"op":"submit","name":"snapshot-{seed}","circuit":{{"kind":"library","name":"s27"}},"seed":{seed}}}"#
                );
                if writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .is_err()
                {
                    break;
                }
                // stream progress records until the job's terminal line
                while let Some(record) = recv() {
                    if record.contains("\"event\":\"terminal\"")
                        || record.contains("\"event\":\"reject\"")
                    {
                        break;
                    }
                }
            }
        }
    }
    handle.drain();
    let metrics = handle.metrics();
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
    latency.merge_from(&metrics.latency);
    metrics.daemon.entries()
}

/// The merged latency quantiles as a p50/p90/p99/max table (nanosecond
/// histograms rendered in milliseconds).
fn render_latency_table(latency: &fastmon_obs::HistogramSet) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"
    );
    for (name, h) in latency.entries() {
        let q = h.quantiles();
        if q.count == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            q.count,
            ms(q.p50),
            ms(q.p90),
            ms(q.p99),
            ms(q.max)
        );
    }
    s
}

fn main() {
    // A process exec'd as `--shard-worker i/n` is a campaign shard, not a
    // snapshot run: it never returns from here.
    fastmon_bench::shardsup::maybe_run_worker();
    // Keep at least profile-mode spans on so the self-time table below has
    // data; a FASTMON_TRACE=1 environment still gets the full event log.
    if !fastmon_obs::enabled() {
        fastmon_obs::force_enable(fastmon_obs::TraceMode::Profile, None);
    }
    let config = ExperimentConfig::from_env();
    let name = std::env::var("FASTMON_SNAPSHOT_CIRCUIT").unwrap_or_else(|_| "p89k".to_owned());
    let thread_counts: Vec<usize> = std::env::var("FASTMON_SNAPSHOT_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let out_path =
        std::env::var("FASTMON_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_analysis.json".to_owned());

    let Some(base_profile) = CircuitProfile::named(&name) else {
        eprintln!("perf_snapshot: unknown paper-suite profile '{name}'");
        std::process::exit(1);
    };
    let auto_scale = (config.target_gates as f64 / base_profile.gates as f64).min(1.0);
    let scale = match arg_or_env("scale", "FASTMON_SNAPSHOT_SCALE").map(|v| v.parse::<f64>()) {
        None => auto_scale,
        Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
        Some(other) => {
            eprintln!("perf_snapshot: --scale must be a factor in (0, 1], got {other:?}");
            std::process::exit(1);
        }
    };
    let shards = match arg_or_env("shards", "FASTMON_SHARDS").map(|v| v.parse::<usize>()) {
        None => 2,
        Some(Ok(n)) if n >= 1 => n,
        Some(other) => {
            eprintln!("perf_snapshot: --shards must be a positive integer, got {other:?}");
            std::process::exit(1);
        }
    };
    let shard_procs = config.shard_procs || std::env::args().any(|a| a == "--shard-procs");
    let profile = base_profile.scaled(scale);
    let circuit = match profile.generate(config.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_snapshot: cannot generate the {name} stand-in: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "perf_snapshot: {name} stand-in scaled to {} gates (scale {scale:.4})",
        profile.gates
    );

    let mut robustness = RobustnessTotals::default();
    // Stage-latency histograms merged across every flow in the snapshot
    // (and, later, the daemon exercise) — the `"latency"` section of the
    // JSON and the quantile table below.
    let latency = fastmon_obs::HistogramSet::new();

    // Scale sweep, ascending, and FIRST in the process: the Linux
    // `VmHWM` probe is a process-wide high-water mark, so each entry's
    // `peak_rss_bytes` is attributable only while no larger circuit has
    // run yet. Each factor regenerates the profile and analyzes once
    // (1 thread) to chart memory and collapse behaviour against size.
    let mut sweep_scales: Vec<f64> = std::env::var("FASTMON_SNAPSHOT_SWEEP")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<f64>().ok())
                .collect()
        })
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![scale * 0.25, scale * 0.5, scale]);
    sweep_scales.retain(|&s| s > 0.0 && s <= 1.0);
    sweep_scales.sort_by(|a, b| a.total_cmp(b));
    sweep_scales.dedup();
    let mut sweep: Vec<SweepEntry> = Vec::new();
    for &s in &sweep_scales {
        let swept = base_profile.scaled(s);
        let swept_circuit = match swept.generate(config.seed) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("perf_snapshot: sweep scale {s:.4} skipped: {e}");
                continue;
            }
        };
        let flow = HdfTestFlow::prepare(&swept_circuit, &config.flow_config());
        let swept_patterns = flow.generate_patterns(Some(swept.pattern_budget));
        let t = Instant::now();
        let analysis = flow.analyze(&swept_patterns);
        let analyze_secs = t.elapsed().as_secs_f64();
        let snap = CampaignStats::from_metrics(&flow.metrics().sim);
        let entry = SweepEntry {
            scale: s,
            gates: swept.gates,
            patterns: swept_patterns.len(),
            netlist_bytes: swept_circuit.storage_bytes(),
            faults_pre_collapse: analysis.faults.len(),
            faults_post_collapse: snap.fault_classes,
            analyze_secs,
            peak_rss_bytes: fastmon_bench::rss::peak_rss_self_bytes().unwrap_or(0),
        };
        println!(
            "  sweep scale={:.4}: {} gates, {} -> {} faults after collapse, \
             analyze {:.3} s, peak RSS {}",
            entry.scale,
            entry.gates,
            entry.faults_pre_collapse,
            entry.faults_post_collapse,
            entry.analyze_secs,
            fastmon_bench::rss::format_mib(entry.peak_rss_bytes),
        );
        robustness.absorb(&flow.metrics().robustness);
        latency.merge_from(&flow.metrics().latency);
        sweep.push(entry);
    }

    // shared pattern set so every thread count simulates identical work
    let base_flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
    let t = Instant::now();
    let patterns = base_flow.generate_patterns(Some(profile.pattern_budget));
    let atpg_secs = t.elapsed().as_secs_f64();
    println!("  atpg: {} patterns in {atpg_secs:.2} s", patterns.len());
    let atpg = atpg_report(atpg_secs, &base_flow.metrics().atpg);
    print!("{}", atpg.render_table());
    robustness.absorb(&base_flow.metrics().robustness);
    latency.merge_from(&base_flow.metrics().latency);

    let mut runs: Vec<ThreadRun> = Vec::new();
    let mut serial_fingerprint: Option<u64> = None;
    let mut faults_pre_collapse = 0usize;
    for &threads in &thread_counts {
        let flow_config = FlowConfig {
            threads,
            ..config.flow_config()
        };
        let flow = HdfTestFlow::prepare(&circuit, &flow_config);
        let t = Instant::now();
        let analysis = flow.analyze(&patterns);
        let analyze_secs = t.elapsed().as_secs_f64();
        let snap = CampaignStats::from_metrics(&flow.metrics().sim);
        println!(
            "  threads={threads}: analyze {analyze_secs:.3} s, {} targets, \
             {} cones simulated, {} masked, {} screened out, {} nodes evaluated, \
             {} converged-skipped, {} screen-visited, {} pruned, {} allocs / {} reuses",
            analysis.targets.len(),
            snap.cones_simulated,
            snap.cones_masked,
            snap.faults_screened_out,
            snap.nodes_evaluated,
            snap.nodes_converged,
            snap.screen_nodes_visited,
            snap.nodes_pruned_unobserved,
            snap.waveform_allocs,
            snap.waveform_reuses,
        );
        if serial_fingerprint.is_none() {
            serial_fingerprint = Some(analysis.result_fingerprint());
            faults_pre_collapse = analysis.faults.len();
            println!(
                "  fault collapsing: {} candidate faults -> {} classes ({} collapsed away)",
                faults_pre_collapse, snap.fault_classes, snap.faults_collapsed
            );
        }
        robustness.absorb(&flow.metrics().robustness);
        latency.merge_from(&flow.metrics().latency);
        runs.push(ThreadRun {
            threads,
            analyze_secs,
            stats: snap,
        });
    }

    if let Some(t1) = runs.iter().find(|r| r.threads == 1) {
        for r in runs.iter().filter(|r| r.threads > 1) {
            println!(
                "  speedup t{} vs t1: {:.2}x",
                r.threads,
                t1.analyze_secs / r.analyze_secs
            );
        }
    }

    // Shard-merge parity: the same campaign partitioned into fault
    // shards must merge to the bit-identical result. A mismatch is a
    // determinism regression and fails the snapshot.
    let shard_report = if shards > 1 {
        let flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
        let t = Instant::now();
        match flow.try_analyze_sharded(&patterns, shards) {
            Ok(merged) => {
                let analyze_secs = t.elapsed().as_secs_f64();
                let merged_fingerprint = merged.result_fingerprint();
                let matches_serial = serial_fingerprint == Some(merged_fingerprint);
                println!(
                    "  shards={shards}: analyze {analyze_secs:.3} s, merged fingerprint \
                     {merged_fingerprint:016x} ({})",
                    if matches_serial {
                        "bit-identical to serial"
                    } else {
                        "MISMATCH vs serial"
                    }
                );
                if !matches_serial {
                    eprintln!(
                        "perf_snapshot: sharded merge diverged from the serial campaign \
                         (serial {serial_fingerprint:?}, merged {merged_fingerprint:016x})"
                    );
                    std::process::exit(1);
                }
                robustness.absorb(&flow.metrics().robustness);
                latency.merge_from(&flow.metrics().latency);
                Some(ShardReport {
                    shards,
                    analyze_secs,
                    merged_fingerprint,
                    matches_serial,
                })
            }
            Err(e) => {
                eprintln!("perf_snapshot: sharded analyze failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    // Supervised multi-process run (`--shard-procs`): one child OS
    // process per shard, merged from landed result files. Bit-identity
    // with the serial fingerprint is a hard gate, like the in-process
    // shard merge above.
    let shard_procs_report = if shard_procs && shards > 1 {
        let dir =
            std::env::temp_dir().join(format!("fastmon-snapshot-shardsup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("perf_snapshot: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
        let mut sp_config = config.clone();
        sp_config.shards = shards;
        let jobs = match fastmon_core::SupervisorConfig::from_env(shards) {
            Ok(c) => c.jobs,
            Err(e) => {
                eprintln!("perf_snapshot: {e}");
                std::process::exit(2);
            }
        };
        let t = Instant::now();
        match fastmon_bench::shardsup::supervise(
            &flow,
            &patterns,
            &sp_config,
            &name,
            scale,
            &dir,
            None,
            &mut |_| {},
        ) {
            Ok(run) => {
                let wall_secs = t.elapsed().as_secs_f64();
                let merged_fingerprint = run.analysis.result_fingerprint();
                let matches_serial = serial_fingerprint == Some(merged_fingerprint);
                let supervisor_peak_rss_bytes =
                    fastmon_bench::rss::peak_rss_self_bytes().unwrap_or(0);
                let children_peak_rss_bytes =
                    fastmon_bench::rss::peak_rss_children_bytes().unwrap_or(0);
                println!(
                    "  shard-procs: {shards} shards x {jobs} jobs in {wall_secs:.3} s, \
                     {} workers ({} respawns, {} evictions), merged fingerprint \
                     {merged_fingerprint:016x} ({}), worker peak RSS {}",
                    run.report.workers_spawned,
                    run.report.respawns,
                    run.report.rss_evictions,
                    if matches_serial {
                        "bit-identical to serial"
                    } else {
                        "MISMATCH vs serial"
                    },
                    fastmon_bench::rss::format_mib(children_peak_rss_bytes),
                );
                if !matches_serial {
                    eprintln!(
                        "perf_snapshot: supervised shard merge diverged from the serial \
                         campaign (serial {serial_fingerprint:?}, merged {merged_fingerprint:016x})"
                    );
                    std::process::exit(1);
                }
                robustness.absorb(&flow.metrics().robustness);
                latency.merge_from(&flow.metrics().latency);
                let _ = std::fs::remove_dir_all(&dir);
                Some(ShardProcsReport {
                    shards,
                    jobs,
                    wall_secs,
                    merged_fingerprint,
                    matches_serial,
                    report: run.report,
                    supervisor_peak_rss_bytes,
                    children_peak_rss_bytes,
                })
            }
            Err(e) => {
                eprintln!("perf_snapshot: supervised shard run failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    robustness.daemon = daemon_exercise(&latency);
    if let Some((_, completed)) = robustness
        .daemon
        .iter()
        .find(|(n, _)| *n == "jobs_completed")
    {
        println!("  daemon exercise: {completed} jobs completed over the socket");
    }

    println!("\nstage latency quantiles:");
    print!("{}", render_latency_table(&latency));

    fastmon_obs::flush();
    let report = fastmon_obs::profile::snapshot();
    println!("\nper-phase self time:");
    print!("{}", fastmon_obs::profile::render_table(&report));

    // Sampled after every run so the high-water mark covers the hungriest
    // thread count, not just the last one.
    let peak_rss = fastmon_bench::rss::peak_rss_self_bytes();
    match peak_rss {
        Some(bytes) => println!("peak RSS: {}", fastmon_bench::rss::format_mib(bytes)),
        None => println!("peak RSS: unavailable on this platform"),
    }

    let extras = SnapshotExtras {
        netlist_bytes: circuit.storage_bytes(),
        faults_pre_collapse,
        faults_post_collapse: runs.first().map_or(0, |r| r.stats.fault_classes),
        shard_report: shard_report.as_ref(),
        shard_procs: shard_procs_report.as_ref(),
        sweep: &sweep,
    };
    println!(
        "netlist arena: {} bytes for {} gates ({:.1} bytes/gate)",
        extras.netlist_bytes,
        profile.gates,
        extras.netlist_bytes as f64 / profile.gates.max(1) as f64
    );
    let json = render_json(
        &name,
        &profile.name,
        profile.gates,
        scale,
        patterns.len(),
        &atpg,
        &runs,
        &robustness,
        &latency,
        peak_rss,
        &extras,
        &fastmon_obs::profile::report_json(&report),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("perf_snapshot: cannot write snapshot {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // CI memory gate: the snapshot is written first so the artifact
    // survives for diagnosis, then the ceiling is enforced.
    if let Some(ceiling) = std::env::var("FASTMON_RSS_CEILING_BYTES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        match peak_rss {
            Some(bytes) if bytes > ceiling => {
                eprintln!(
                    "perf_snapshot: peak RSS {} exceeds the {} ceiling",
                    fastmon_bench::rss::format_mib(bytes),
                    fastmon_bench::rss::format_mib(ceiling),
                );
                std::process::exit(1);
            }
            Some(bytes) => println!(
                "peak RSS {} within the {} ceiling",
                fastmon_bench::rss::format_mib(bytes),
                fastmon_bench::rss::format_mib(ceiling),
            ),
            None => println!("peak RSS probe unavailable; ceiling not enforced"),
        }
    }
    fastmon_obs::finish();
}

/// Memory, collapse and sharding facts threaded into the JSON snapshot.
struct SnapshotExtras<'a> {
    netlist_bytes: usize,
    faults_pre_collapse: usize,
    faults_post_collapse: u64,
    shard_report: Option<&'a ShardReport>,
    shard_procs: Option<&'a ShardProcsReport>,
    sweep: &'a [SweepEntry],
}

/// The ATPG stage's wall clock, per-phase seconds and grading counters.
struct AtpgReport {
    atpg_secs: f64,
    /// `(phase name, seconds)` for the `atpg_*` spans, pipeline order.
    phases: Vec<(String, f64)>,
    /// Grading + PODEM counters from the scoped registry.
    counters: Vec<(&'static str, u64)>,
}

impl AtpgReport {
    /// Cone BFS traversals the cached arena avoided vs what the uncached
    /// path would have performed: `(performed, would_be, percent_fewer)`.
    fn bfs_saved(&self) -> (u64, u64, f64) {
        let get = |name: &str| {
            self.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        let performed = get("cone_bfs");
        let would_be = performed + get("cone_bfs_avoided");
        let fewer = if would_be > 0 {
            100.0 * (would_be - performed) as f64 / would_be as f64
        } else {
            0.0
        };
        (performed, would_be, fewer)
    }

    /// Before/after-style summary of the grading engine.
    fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "  atpg phases:");
        for (phase, secs) in &self.phases {
            let _ = writeln!(s, "    {phase:<14} {secs:>9.3} s");
        }
        let (performed, would_be, fewer) = self.bfs_saved();
        let _ = writeln!(
            s,
            "  cone BFS traversals: {would_be} (uncached) -> {performed} (cached arena), \
             {fewer:.1}% fewer"
        );
        let get = |name: &str| {
            self.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        let _ = writeln!(
            s,
            "  grading scratch: {} reuses / {} allocs; matrix: {} build(s), {} rebuild(s) avoided",
            get("grade_scratch_reuses"),
            get("grade_scratch_allocs"),
            get("matrix_builds"),
            get("matrix_rebuilds_avoided"),
        );
        s
    }
}

/// Collects the ATPG report right after pattern generation (the `atpg_*`
/// spans are not touched by the later analyze runs, so the phase totals
/// are exact).
fn atpg_report(atpg_secs: f64, metrics: &fastmon_obs::AtpgMetrics) -> AtpgReport {
    fastmon_obs::flush();
    let report = fastmon_obs::profile::snapshot();
    let mut phases = Vec::new();
    for name in ["atpg_cones", "atpg_random", "atpg_podem", "atpg_compact"] {
        if let Some((_, agg)) = report.phases.iter().find(|(n, _)| n == name) {
            phases.push((name.to_owned(), agg.total_ns as f64 / 1e9));
        }
    }
    AtpgReport {
        atpg_secs,
        phases,
        counters: metrics.entries(),
    }
}

/// Hand-rolled JSON (the workspace carries no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    profile: &str,
    scaled_name: &str,
    gates: usize,
    scale: f64,
    patterns: usize,
    atpg: &AtpgReport,
    runs: &[ThreadRun],
    robustness: &RobustnessTotals,
    latency: &fastmon_obs::HistogramSet,
    peak_rss: Option<u64>,
    extras: &SnapshotExtras<'_>,
    profile_json: &str,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"profile\": \"{profile}\",");
    let _ = writeln!(s, "  \"circuit\": \"{scaled_name}\",");
    let _ = writeln!(s, "  \"gates\": {gates},");
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"patterns\": {patterns},");
    let _ = writeln!(s, "  \"netlist_bytes\": {},", extras.netlist_bytes);
    let _ = writeln!(
        s,
        "  \"bytes_per_gate\": {},",
        extras.netlist_bytes as f64 / gates.max(1) as f64
    );
    let _ = writeln!(
        s,
        "  \"faults_pre_collapse\": {},",
        extras.faults_pre_collapse
    );
    let _ = writeln!(
        s,
        "  \"faults_post_collapse\": {},",
        extras.faults_post_collapse
    );
    // 0 encodes "probe unavailable" (non-Linux host) — a real campaign
    // always has a nonzero high-water mark.
    let _ = writeln!(s, "  \"peak_rss_bytes\": {},", peak_rss.unwrap_or(0));
    let _ = writeln!(s, "  \"atpg_secs\": {},", atpg.atpg_secs);
    let _ = writeln!(s, "  \"atpg\": {{");
    let _ = writeln!(s, "    \"phases\": {{");
    for (i, (phase, secs)) in atpg.phases.iter().enumerate() {
        let sep = if i + 1 < atpg.phases.len() { "," } else { "" };
        let _ = writeln!(s, "      \"{phase}\": {secs}{sep}");
    }
    let _ = writeln!(s, "    }},");
    let (performed, would_be, fewer) = atpg.bfs_saved();
    let _ = writeln!(s, "    \"cone_bfs_uncached_equivalent\": {would_be},");
    let _ = writeln!(s, "    \"cone_bfs_performed\": {performed},");
    let _ = writeln!(s, "    \"cone_bfs_percent_fewer\": {fewer},");
    let _ = writeln!(s, "    \"counters\": {{");
    for (i, (name, value)) in atpg.counters.iter().enumerate() {
        let sep = if i + 1 < atpg.counters.len() { "," } else { "" };
        let _ = writeln!(s, "      \"{name}\": {value}{sep}");
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let st = r.stats;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"threads\": {},", r.threads);
        let _ = writeln!(s, "      \"analyze_secs\": {},", r.analyze_secs);
        let _ = writeln!(s, "      \"cones_simulated\": {},", st.cones_simulated);
        let _ = writeln!(s, "      \"cones_masked\": {},", st.cones_masked);
        let _ = writeln!(s, "      \"nodes_evaluated\": {},", st.nodes_evaluated);
        let _ = writeln!(s, "      \"nodes_converged\": {},", st.nodes_converged);
        let _ = writeln!(
            s,
            "      \"nodes_pruned_unobserved\": {},",
            st.nodes_pruned_unobserved
        );
        let _ = writeln!(s, "      \"cone_plans_built\": {},", st.cone_plans_built);
        let _ = writeln!(s, "      \"waveform_allocs\": {},", st.waveform_allocs);
        let _ = writeln!(s, "      \"waveform_reuses\": {},", st.waveform_reuses);
        let _ = writeln!(s, "      \"screen_walks\": {},", st.screen_walks);
        let _ = writeln!(
            s,
            "      \"screen_nodes_visited\": {},",
            st.screen_nodes_visited
        );
        let _ = writeln!(
            s,
            "      \"faults_screened_out\": {},",
            st.faults_screened_out
        );
        let _ = writeln!(s, "      \"fault_classes\": {},", st.fault_classes);
        let _ = writeln!(s, "      \"faults_collapsed\": {}", st.faults_collapsed);
        let _ = writeln!(s, "    }}{sep}");
    }
    let _ = writeln!(s, "  ],");
    match extras.shard_report {
        Some(r) => {
            let _ = writeln!(s, "  \"shard_merge\": {{");
            let _ = writeln!(s, "    \"shards\": {},", r.shards);
            let _ = writeln!(s, "    \"analyze_secs\": {},", r.analyze_secs);
            let _ = writeln!(
                s,
                "    \"merged_fingerprint\": \"{:016x}\",",
                r.merged_fingerprint
            );
            let _ = writeln!(s, "    \"matches_serial\": {}", r.matches_serial);
            let _ = writeln!(s, "  }},");
        }
        None => {
            let _ = writeln!(s, "  \"shard_merge\": null,");
        }
    }
    match extras.shard_procs {
        Some(r) => {
            let _ = writeln!(s, "  \"shard_procs\": {{");
            let _ = writeln!(s, "    \"shards\": {},", r.shards);
            let _ = writeln!(s, "    \"jobs\": {},", r.jobs);
            let _ = writeln!(s, "    \"wall_secs\": {},", r.wall_secs);
            let _ = writeln!(
                s,
                "    \"merged_fingerprint\": \"{:016x}\",",
                r.merged_fingerprint
            );
            let _ = writeln!(s, "    \"matches_serial\": {},", r.matches_serial);
            let _ = writeln!(s, "    \"workers_spawned\": {},", r.report.workers_spawned);
            let _ = writeln!(s, "    \"respawns\": {},", r.report.respawns);
            let _ = writeln!(s, "    \"stalls_detected\": {},", r.report.stalls_detected);
            let _ = writeln!(s, "    \"rss_evictions\": {},", r.report.rss_evictions);
            let _ = writeln!(s, "    \"readmissions\": {},", r.report.readmissions);
            let _ = writeln!(
                s,
                "    \"stragglers_redispatched\": {},",
                r.report.stragglers_redispatched
            );
            let _ = writeln!(
                s,
                "    \"supervisor_peak_rss_bytes\": {},",
                r.supervisor_peak_rss_bytes
            );
            let _ = writeln!(
                s,
                "    \"children_peak_rss_bytes\": {}",
                r.children_peak_rss_bytes
            );
            let _ = writeln!(s, "  }},");
        }
        None => {
            let _ = writeln!(s, "  \"shard_procs\": null,");
        }
    }
    let _ = writeln!(s, "  \"scale_sweep\": [");
    for (i, e) in extras.sweep.iter().enumerate() {
        let sep = if i + 1 < extras.sweep.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"scale\": {},", e.scale);
        let _ = writeln!(s, "      \"gates\": {},", e.gates);
        let _ = writeln!(s, "      \"patterns\": {},", e.patterns);
        let _ = writeln!(s, "      \"netlist_bytes\": {},", e.netlist_bytes);
        let _ = writeln!(
            s,
            "      \"faults_pre_collapse\": {},",
            e.faults_pre_collapse
        );
        let _ = writeln!(
            s,
            "      \"faults_post_collapse\": {},",
            e.faults_post_collapse
        );
        let _ = writeln!(s, "      \"analyze_secs\": {},", e.analyze_secs);
        let _ = writeln!(s, "      \"peak_rss_bytes\": {}", e.peak_rss_bytes);
        let _ = writeln!(s, "    }}{sep}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"robustness\": {{");
    for (name, value) in &robustness.entries {
        let _ = writeln!(s, "    \"{name}\": {value},");
    }
    let _ = writeln!(s, "    \"daemon\": {{");
    for (i, (name, value)) in robustness.daemon.iter().enumerate() {
        let sep = if i + 1 < robustness.daemon.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "      \"{name}\": {value}{sep}");
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"latency\": {},", latency.to_json());
    let _ = writeln!(s, "  \"phase_profile\": {profile_json}");
    let _ = writeln!(s, "}}");
    s
}
