//! Ablation studies on the design choices of the monitor-reuse flow:
//!
//! 1. **Monitor fraction** — the paper fixes 25 % of observation points;
//!    sweep it and watch HDF coverage and |Φ_tar|.
//! 2. **Delay-element set** — all four elements vs only the largest vs a
//!    dense 8-element ladder.
//! 3. **Glitch threshold** — pessimism of the pulse filter vs detected
//!    faults.
//! 4. **Shared vs per-monitor configuration** — the paper assumes all
//!    monitors share one setting; per-monitor programming is a natural
//!    extension and this bound shows what it would buy in test time.
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin ablation
//! ```

use fastmon_bench::{print_table, ExperimentConfig};
use fastmon_core::{FlowConfig, HdfTestFlow, Solver};
use fastmon_ilp::{greedy, SetCover};
use fastmon_monitor::shifted_detection;
use fastmon_netlist::generate::CircuitProfile;

fn main() {
    let base = ExperimentConfig::from_env();
    // one register-dominated stand-in, mid size
    let Some(profile) = CircuitProfile::named("s13207") else {
        eprintln!("[ablation] paper-suite profile 's13207' is missing from the generator");
        std::process::exit(1);
    };
    let scale = (base.target_gates as f64 / profile.gates as f64).min(1.0);
    let profile = profile.scaled(scale);
    let circuit = match profile.generate(base.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "[ablation] cannot generate the {} stand-in: {e}",
                profile.name
            );
            std::process::exit(1);
        }
    };
    println!(
        "# Ablations on the {} stand-in (scale {:.3}, seed {})\n",
        profile.name, scale, base.seed
    );

    // --- 1. monitor fraction ------------------------------------------------
    println!("## monitor fraction (paper default: 0.25)\n");
    let mut rows = Vec::new();
    for fraction in [0.0, 0.1, 0.25, 0.5, 1.0] {
        let config = FlowConfig {
            monitor_fraction: fraction,
            seed: base.seed,
            max_faults: Some(base.max_faults),
            ilp_deadline: base.ilp_deadline,
            ..FlowConfig::default()
        };
        let flow = HdfTestFlow::prepare(&circuit, &config);
        let patterns = flow.generate_patterns(Some(profile.pattern_budget));
        let analysis = flow.analyze(&patterns);
        rows.push(vec![
            format!("{fraction:.2}"),
            flow.placement().count().to_string(),
            analysis.detected_conv().to_string(),
            analysis.detected_prop().to_string(),
            format!(
                "{:+.1}%",
                (analysis.detected_prop() as f64 / analysis.detected_conv().max(1) as f64 - 1.0)
                    * 100.0
            ),
            analysis.targets.len().to_string(),
        ]);
    }
    print_table(
        &["fraction", "|M|", "conv.", "prop.", "gain", "|Φ_tar|"],
        &rows,
    );
    println!(
        "\n(note: the candidate population itself depends on the placement —\n\
         faults unreachable by any monitor are pruned as timing-redundant\n\
         before simulation — so the conv. column shifts with the sampled set)"
    );

    // --- 2. delay element sets ----------------------------------------------
    println!("\n## delay-element set (paper default: {{0.05, 0.10, 0.15, 1/3}}·t_nom)\n");
    let mut rows = Vec::new();
    for (name, delays) in [
        ("none", vec![]),
        ("only 1/3", vec![1.0 / 3.0]),
        ("paper 4", vec![0.05, 0.10, 0.15, 1.0 / 3.0]),
        (
            "dense 8",
            vec![0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28, 1.0 / 3.0],
        ),
    ] {
        let config = FlowConfig {
            monitor_delays_rel: delays.clone(),
            seed: base.seed,
            max_faults: Some(base.max_faults),
            ilp_deadline: base.ilp_deadline,
            ..FlowConfig::default()
        };
        let flow = HdfTestFlow::prepare(&circuit, &config);
        let patterns = flow.generate_patterns(Some(profile.pattern_budget));
        let analysis = flow.analyze(&patterns);
        let schedule = flow.schedule(&analysis, Solver::Ilp);
        rows.push(vec![
            name.to_owned(),
            (delays.len() + 1).to_string(),
            analysis.detected_prop().to_string(),
            analysis.targets.len().to_string(),
            schedule.num_frequencies().to_string(),
            schedule.num_applications().to_string(),
        ]);
    }
    print_table(
        &["elements", "|C|", "prop.", "|Φ_tar|", "|F|", "|S|"],
        &rows,
    );

    // --- 3. glitch threshold ------------------------------------------------
    println!("\n## glitch-filter threshold (paper: pessimistic pulse filtering)\n");
    let mut rows = Vec::new();
    for threshold in [0.0, 2.0, 4.0, 8.0, 16.0] {
        let config = FlowConfig {
            glitch_threshold: threshold,
            seed: base.seed,
            max_faults: Some(base.max_faults),
            ilp_deadline: base.ilp_deadline,
            ..FlowConfig::default()
        };
        let flow = HdfTestFlow::prepare(&circuit, &config);
        let patterns = flow.generate_patterns(Some(profile.pattern_budget));
        let analysis = flow.analyze(&patterns);
        rows.push(vec![
            format!("{threshold:.0} ps"),
            analysis.detected_conv().to_string(),
            analysis.detected_prop().to_string(),
            analysis.targets.len().to_string(),
        ]);
    }
    print_table(&["threshold", "conv.", "prop.", "|Φ_tar|"], &rows);

    // --- 4. shared vs per-monitor configuration ------------------------------
    println!("\n## shared (paper) vs per-monitor configuration — test-time bound\n");
    let config = FlowConfig {
        seed: base.seed,
        max_faults: Some(base.max_faults),
        ilp_deadline: base.ilp_deadline,
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&circuit, &config);
    let patterns = flow.generate_patterns(Some(profile.pattern_budget));
    let analysis = flow.analyze(&patterns);
    let shared = flow.schedule(&analysis, Solver::Ilp);

    // per-monitor bound: with independently programmable monitors one
    // application of pattern p covers everything any configuration covers;
    // re-run step 2 with per-pattern "any config" sets
    let mut per_monitor_apps = 0usize;
    for entry in &shared.entries {
        let faults = &entry.faults;
        let mut combos: Vec<Vec<u32>> = Vec::new();
        let mut pattern_of: Vec<u32> = Vec::new();
        let mut index: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (k, &f) in faults.iter().enumerate() {
            for (p, dr) in &analysis.per_pattern[f] {
                let mut any = false;
                for c in flow.configs().configs() {
                    if shifted_detection(dr, flow.placement(), flow.configs(), c, flow.clock())
                        .contains(entry.period)
                    {
                        any = true;
                        break;
                    }
                }
                if any {
                    let idx = *index.entry(*p).or_insert_with(|| {
                        combos.push(Vec::new());
                        pattern_of.push(*p);
                        combos.len() - 1
                    });
                    combos[idx].push(u32::try_from(k).unwrap_or_else(|_| {
                        eprintln!("[ablation] fault index {k} exceeds u32 set-cover capacity");
                        std::process::exit(1);
                    }));
                }
            }
        }
        let instance = SetCover::new(faults.len(), combos);
        per_monitor_apps += greedy(&instance).chosen.len();
    }
    println!(
        "shared configuration (paper): |F| = {}, |S| = {}",
        shared.num_frequencies(),
        shared.num_applications()
    );
    println!(
        "per-monitor configuration bound: |F| = {}, |S| ≥ {} ({:.1}% fewer applications)",
        shared.num_frequencies(),
        per_monitor_apps,
        (1.0 - per_monitor_apps as f64 / shared.num_applications().max(1) as f64) * 100.0
    );
    fastmon_obs::finish();
}
